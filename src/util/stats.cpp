#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace presp {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  PRESP_REQUIRE(!values.empty(), "percentile of empty sample");
  PRESP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  PRESP_REQUIRE(xs.size() == ys.size(), "fit_linear: size mismatch");
  PRESP_REQUIRE(xs.size() >= 2, "fit_linear: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

double mape(const std::vector<double>& reference,
            const std::vector<double>& model) {
  PRESP_REQUIRE(reference.size() == model.size(), "mape: size mismatch");
  PRESP_REQUIRE(!reference.empty(), "mape: empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    PRESP_REQUIRE(reference[i] != 0.0, "mape: zero reference value");
    acc += std::abs((model[i] - reference[i]) / reference[i]);
  }
  return acc / static_cast<double>(reference.size());
}

}  // namespace presp
