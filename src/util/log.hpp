// Minimal leveled logger. Thread-safe; level settable globally. Benches and
// examples default to Info; tests silence to Warn so gtest output stays
// readable.
#pragma once

#include <sstream>
#include <string>

namespace presp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] tag: message") to stderr.
/// Thread-safe (single atomic write per line).
void log_line(LogLevel level, const std::string& tag,
              const std::string& message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string tag)
      : level_(level), tag_(std::move(tag)) {}
  ~LogStream() { log_line(level_, tag_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace presp

#define PRESP_LOG(level, tag)                       \
  if (::presp::log_level() <= (level))              \
  ::presp::detail::LogStream((level), (tag))

#define PRESP_DEBUG(tag) PRESP_LOG(::presp::LogLevel::kDebug, (tag))
#define PRESP_INFO(tag) PRESP_LOG(::presp::LogLevel::kInfo, (tag))
#define PRESP_WARN(tag) PRESP_LOG(::presp::LogLevel::kWarn, (tag))
#define PRESP_ERROR(tag) PRESP_LOG(::presp::LogLevel::kError, (tag))
