#include "util/string_utils.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace presp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

long long parse_int(std::string_view text) {
  text = trim(text);
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ConfigError("malformed integer: '" + std::string(text) + "'");
  return value;
}

double parse_double(std::string_view text) {
  text = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ConfigError("malformed number: '" + std::string(text) + "'");
  return value;
}

}  // namespace presp
