// Error types and invariant-checking macros shared across all PR-ESP
// libraries. All recoverable failures are reported via exceptions derived
// from presp::Error; programming-logic violations use PRESP_ASSERT, which
// throws LogicError so tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace presp {

/// Base class of every exception thrown by PR-ESP libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Input that violates a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violation (a bug in PR-ESP itself).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// A design that cannot be implemented on the selected device
/// (over-utilization, infeasible floorplan, unroutable net, ...).
class InfeasibleDesign : public Error {
 public:
  explicit InfeasibleDesign(const std::string& what) : Error(what) {}
};

/// Malformed configuration input (SoC grid description, kernel spec, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw LogicError(std::string("assertion failed: ") + expr + " at " + file +
                   ":" + std::to_string(line) + (msg.empty() ? "" : ": ") +
                   msg);
}
}  // namespace detail

}  // namespace presp

#define PRESP_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::presp::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define PRESP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::presp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#define PRESP_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) throw ::presp::InvalidArgument(msg);                   \
  } while (0)
