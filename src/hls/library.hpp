// Built-in kernel specifications for the accelerators the paper uses in
// its Vivado characterization (Section IV): the Vivado-HLS MAC and the
// Stratus-HLS Conv2d / GEMM / FFT / Sort. PE counts and operator mixes are
// calibrated so the estimator reproduces Table II's LUT figures to within
// ~3% (asserted in tests/hls_test).
#pragma once

#include <vector>

#include "hls/kernel_spec.hpp"
#include "netlist/components.hpp"

namespace presp::hls {

KernelSpec mac_kernel();       // Table II: 2,450 LUTs
KernelSpec conv2d_kernel();    // Table II: 36,741 LUTs
KernelSpec gemm_kernel();      // Table II: 30,617 LUTs
KernelSpec fft_kernel();       // Table II: 33,690 LUTs
KernelSpec sort_kernel();      // Table II: 20,468 LUTs

/// All five characterization kernels.
std::vector<KernelSpec> characterization_kernels();

/// Registers the five characterization kernels into a component library.
void register_characterization_kernels(netlist::ComponentLibrary& lib);

}  // namespace presp::hls
