#include "hls/estimator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace presp::hls {

long long LatencyModel::compute_cycles(long long items) const {
  PRESP_REQUIRE(items >= 0, "negative item count");
  if (items == 0) return startup_cycles;
  const long long beats =
      (items + items_per_beat - 1) / items_per_beat;
  return startup_cycles + beats * ii + drain_cycles;
}

SynthesizedKernel estimate(const KernelSpec& spec) {
  PRESP_REQUIRE(!spec.name.empty(), "kernel needs a name");
  PRESP_REQUIRE(spec.num_pes >= 1, "kernel needs at least one PE");
  PRESP_REQUIRE(spec.pipeline_ii >= 1, "initiation interval must be >= 1");

  fabric::ResourceVec r;

  // Datapath: PE array.
  int pe_luts = 0;
  int pe_ffs = 0;
  int pe_dsp = 0;
  for (const OpCount& op : spec.pe_ops) {
    PRESP_REQUIRE(op.count >= 1, "operator count must be positive");
    const OpCost cost = op_cost(op.kind);
    pe_luts += cost.luts * op.count;
    pe_ffs += cost.ffs * op.count;
    pe_dsp += cost.dsp * op.count;
  }
  r.luts += static_cast<std::int64_t>(pe_luts) * spec.num_pes;
  r.ffs += static_cast<std::int64_t>(pe_ffs) * spec.num_pes;
  r.dsp += static_cast<std::int64_t>(pe_dsp) * spec.num_pes;

  // Distribution/collection muxing grows with the PE count.
  r.luts += 24LL * spec.num_pes;
  r.ffs += 16LL * spec.num_pes;

  // Address generators (burst counters + strides).
  r.luts += 450LL * spec.address_generators;
  r.ffs += 380LL * spec.address_generators;

  // Controller: base + per-state decode.
  r.luts += 300 + 60LL * spec.fsm_states;
  r.ffs += 200 + 24LL * spec.fsm_states;

  // ESP load/store + config-register interface logic.
  r.luts += 550;
  r.ffs += 700;

  // Buffering glue and scratchpad.
  r.luts += spec.buffer_luts;
  r.bram36 += (spec.scratchpad_bytes + 4095) / 4096;

  LatencyModel lat;
  lat.startup_cycles = 20 + 4LL * spec.fsm_states;
  lat.items_per_beat = spec.num_pes;
  lat.ii = spec.pipeline_ii;
  lat.drain_cycles = spec.pipeline_depth;
  lat.words_in_per_item = spec.words_in_per_item;
  lat.words_out_per_item = spec.words_out_per_item;

  return SynthesizedKernel{spec.name, r, lat};
}

SynthesizedKernel register_kernel(netlist::ComponentLibrary& lib,
                                  const KernelSpec& spec) {
  SynthesizedKernel kernel = estimate(spec);
  netlist::BlockModel block;
  block.name = kernel.name;
  block.resources = kernel.resources;
  block.reconfigurable = true;
  block.interface_bits = 96;
  lib.register_block(std::move(block));
  return kernel;
}

}  // namespace presp::hls
