// KernelSpec <-> configuration text. Lets users define custom
// accelerators next to their SoC description and push them through the
// whole flow without writing C++:
//
//   [accelerator my_filter]
//   flow = vivado_hls
//   ops = mac16:4, add32:2
//   pes = 16
//   address_generators = 2
//   fsm_states = 10
//   buffer_luts = 500
//   scratchpad_kb = 16
//   words_in_per_item = 1.0
//   words_out_per_item = 0.5
#pragma once

#include <string>
#include <vector>

#include "hls/kernel_spec.hpp"
#include "netlist/components.hpp"
#include "util/config.hpp"

namespace presp::hls {

/// Parses one operator token ("mac16:4" or bare "fadd" = count 1).
OpCount parse_op(const std::string& token);
OpKind op_kind_from_string(const std::string& name);

/// Reads the `[accelerator <name>]` section `section_name` from `cfg`.
/// Throws ConfigError on unknown keys/operators or missing fields.
KernelSpec kernel_spec_from_config(const Config& cfg,
                                   const std::string& section_name);

/// Finds every `[accelerator ...]` section, synthesizes each spec with
/// the estimator and registers it in `lib`. Returns the parsed specs.
std::vector<KernelSpec> register_kernels_from_config(
    const Config& cfg, netlist::ComponentLibrary& lib);

/// Serializes a spec back to a section (inverse of
/// kernel_spec_from_config).
void kernel_spec_to_config(const KernelSpec& spec, Config& cfg);

}  // namespace presp::hls
