#include "hls/spec_io.hpp"

#include <cstring>

#include "hls/estimator.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace presp::hls {

OpKind op_kind_from_string(const std::string& name) {
  static const std::pair<const char*, OpKind> kTable[] = {
      {"add16", OpKind::kAdd16},   {"add32", OpKind::kAdd32},
      {"mul16", OpKind::kMul16},   {"mul32", OpKind::kMul32},
      {"mac16", OpKind::kMac16},   {"mac32", OpKind::kMac32},
      {"div32", OpKind::kDiv32},   {"sqrt32", OpKind::kSqrt32},
      {"cmp", OpKind::kCmp},       {"shift", OpKind::kShift},
      {"fadd", OpKind::kFAdd},     {"fmul", OpKind::kFMul},
      {"fmac", OpKind::kFMac},     {"fdiv", OpKind::kFDiv},
      {"fsqrt", OpKind::kFSqrt},   {"lut_func", OpKind::kLutFunc},
  };
  const std::string lowered = to_lower(name);
  for (const auto& [text, kind] : kTable)
    if (lowered == text) return kind;
  throw ConfigError("unknown operator '" + name + "'");
}

OpCount parse_op(const std::string& token) {
  const auto trimmed = std::string(trim(token));
  PRESP_REQUIRE(!trimmed.empty(), "empty operator token");
  const std::size_t colon = trimmed.find(':');
  OpCount op;
  if (colon == std::string::npos) {
    op.kind = op_kind_from_string(trimmed);
    op.count = 1;
  } else {
    op.kind = op_kind_from_string(trimmed.substr(0, colon));
    op.count = static_cast<int>(parse_int(trimmed.substr(colon + 1)));
    if (op.count < 1)
      throw ConfigError("operator count must be positive in '" + token +
                        "'");
  }
  return op;
}

namespace {
constexpr const char* kSectionPrefix = "accelerator ";
}  // namespace

KernelSpec kernel_spec_from_config(const Config& cfg,
                                   const std::string& section_name) {
  PRESP_REQUIRE(starts_with(section_name, kSectionPrefix),
                "not an accelerator section: [" + section_name + "]");
  KernelSpec spec;
  spec.name = std::string(trim(
      std::string_view(section_name).substr(strlen(kSectionPrefix))));
  if (spec.name.empty())
    throw ConfigError("accelerator section without a name");

  const std::string flow = to_lower(cfg.get_or(section_name, "flow",
                                               "stratus_hls"));
  if (flow == "vivado_hls") {
    spec.flow = HlsFlow::kVivadoHls;
  } else if (flow == "stratus_hls" || flow == "stratus") {
    spec.flow = HlsFlow::kStratusHls;
  } else {
    throw ConfigError("unknown HLS flow '" + flow + "'");
  }

  for (const std::string& token : split(cfg.get(section_name, "ops"), ','))
    if (!trim(token).empty()) spec.pe_ops.push_back(parse_op(token));
  if (spec.pe_ops.empty())
    throw ConfigError("accelerator '" + spec.name + "' lists no ops");

  spec.num_pes = static_cast<int>(cfg.get_int(section_name, "pes"));
  spec.address_generators = static_cast<int>(
      cfg.get_int_or(section_name, "address_generators", 1));
  spec.fsm_states =
      static_cast<int>(cfg.get_int_or(section_name, "fsm_states", 8));
  spec.buffer_luts =
      static_cast<int>(cfg.get_int_or(section_name, "buffer_luts", 0));
  spec.scratchpad_bytes =
      cfg.get_int_or(section_name, "scratchpad_kb", 0) * 1024;
  spec.pipeline_ii =
      static_cast<int>(cfg.get_int_or(section_name, "pipeline_ii", 1));
  spec.pipeline_depth =
      static_cast<int>(cfg.get_int_or(section_name, "pipeline_depth", 8));
  if (cfg.has(section_name, "words_in_per_item"))
    spec.words_in_per_item =
        cfg.get_double(section_name, "words_in_per_item");
  if (cfg.has(section_name, "words_out_per_item"))
    spec.words_out_per_item =
        cfg.get_double(section_name, "words_out_per_item");
  return spec;
}

std::vector<KernelSpec> register_kernels_from_config(
    const Config& cfg, netlist::ComponentLibrary& lib) {
  std::vector<KernelSpec> specs;
  for (const std::string& section : cfg.sections()) {
    if (!starts_with(section, kSectionPrefix)) continue;
    KernelSpec spec = kernel_spec_from_config(cfg, section);
    register_kernel(lib, spec);
    specs.push_back(std::move(spec));
  }
  return specs;
}

void kernel_spec_to_config(const KernelSpec& spec, Config& cfg) {
  const std::string section = std::string(kSectionPrefix) + spec.name;
  cfg.set(section, "flow",
          spec.flow == HlsFlow::kVivadoHls ? "vivado_hls" : "stratus_hls");
  std::vector<std::string> ops;
  for (const OpCount& op : spec.pe_ops)
    ops.push_back(std::string(to_string(op.kind)) + ":" +
                  std::to_string(op.count));
  cfg.set(section, "ops", join(ops, ", "));
  cfg.set(section, "pes", std::to_string(spec.num_pes));
  cfg.set(section, "address_generators",
          std::to_string(spec.address_generators));
  cfg.set(section, "fsm_states", std::to_string(spec.fsm_states));
  cfg.set(section, "buffer_luts", std::to_string(spec.buffer_luts));
  cfg.set(section, "scratchpad_kb",
          std::to_string(spec.scratchpad_bytes / 1024));
  cfg.set(section, "pipeline_ii", std::to_string(spec.pipeline_ii));
  cfg.set(section, "pipeline_depth", std::to_string(spec.pipeline_depth));
  cfg.set(section, "words_in_per_item",
          std::to_string(spec.words_in_per_item));
  cfg.set(section, "words_out_per_item",
          std::to_string(spec.words_out_per_item));
}

}  // namespace presp::hls
