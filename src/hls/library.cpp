#include "hls/library.hpp"

#include "hls/estimator.hpp"

namespace presp::hls {

KernelSpec mac_kernel() {
  KernelSpec spec;
  spec.name = "mac";
  spec.flow = HlsFlow::kVivadoHls;
  spec.pe_ops = {{OpKind::kMac16, 1}};
  spec.num_pes = 12;
  spec.address_generators = 1;
  spec.fsm_states = 6;
  spec.scratchpad_bytes = 8 * 1024;
  spec.pipeline_depth = 4;
  spec.words_in_per_item = 0.5;   // two 16-bit operands per item
  spec.words_out_per_item = 1.0 / 64.0;  // one accumulated result per burst
  return spec;
}

KernelSpec conv2d_kernel() {
  KernelSpec spec;
  spec.name = "conv2d";
  spec.pe_ops = {{OpKind::kFMul, 1}, {OpKind::kFAdd, 1}};
  spec.num_pes = 54;  // 6 parallel 3x3 windows
  spec.address_generators = 8;
  spec.fsm_states = 24;
  spec.buffer_luts = 2'000;  // line buffers + window shifter
  spec.scratchpad_bytes = 64 * 1024;
  spec.pipeline_depth = 12;
  spec.words_in_per_item = 0.5;
  spec.words_out_per_item = 0.5;
  return spec;
}

KernelSpec gemm_kernel() {
  KernelSpec spec;
  spec.name = "gemm";
  spec.pe_ops = {{OpKind::kMac32, 1}};
  spec.num_pes = 256;  // 16x16 systolic array
  spec.address_generators = 6;
  spec.fsm_states = 12;
  spec.scratchpad_bytes = 128 * 1024;
  spec.pipeline_depth = 32;
  spec.words_in_per_item = 1.0;
  spec.words_out_per_item = 0.5;
  return spec;
}

KernelSpec fft_kernel() {
  KernelSpec spec;
  spec.name = "fft";
  // Radix-2 butterfly: 4 multiplies + 6 add/subs in float.
  spec.pe_ops = {{OpKind::kFMul, 4}, {OpKind::kFAdd, 6}};
  spec.num_pes = 10;
  spec.address_generators = 4;
  spec.fsm_states = 18;
  spec.buffer_luts = 1'500;  // twiddle ROM addressing + stage swap
  spec.scratchpad_bytes = 64 * 1024;
  spec.pipeline_depth = 16;
  spec.words_in_per_item = 1.0;
  spec.words_out_per_item = 1.0;
  return spec;
}

KernelSpec sort_kernel() {
  KernelSpec spec;
  spec.name = "sort";
  // Bitonic compare-exchange network.
  spec.pe_ops = {{OpKind::kCmp, 1}};
  spec.num_pes = 400;
  spec.address_generators = 2;
  spec.fsm_states = 10;
  spec.buffer_luts = 500;
  spec.scratchpad_bytes = 32 * 1024;
  spec.pipeline_depth = 20;
  spec.words_in_per_item = 0.5;
  spec.words_out_per_item = 0.5;
  return spec;
}

std::vector<KernelSpec> characterization_kernels() {
  return {mac_kernel(), conv2d_kernel(), gemm_kernel(), fft_kernel(),
          sort_kernel()};
}

void register_characterization_kernels(netlist::ComponentLibrary& lib) {
  for (const KernelSpec& spec : characterization_kernels())
    register_kernel(lib, spec);
}

}  // namespace presp::hls
