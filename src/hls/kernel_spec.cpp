#include "hls/kernel_spec.hpp"

namespace presp::hls {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd16: return "add16";
    case OpKind::kAdd32: return "add32";
    case OpKind::kMul16: return "mul16";
    case OpKind::kMul32: return "mul32";
    case OpKind::kMac16: return "mac16";
    case OpKind::kMac32: return "mac32";
    case OpKind::kDiv32: return "div32";
    case OpKind::kSqrt32: return "sqrt32";
    case OpKind::kCmp: return "cmp";
    case OpKind::kShift: return "shift";
    case OpKind::kFAdd: return "fadd";
    case OpKind::kFMul: return "fmul";
    case OpKind::kFMac: return "fmac";
    case OpKind::kFDiv: return "fdiv";
    case OpKind::kFSqrt: return "fsqrt";
    case OpKind::kLutFunc: return "lut_func";
  }
  return "?";
}

OpCost op_cost(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd16: return {16, 16, 0};
    case OpKind::kAdd32: return {32, 32, 0};
    case OpKind::kMul16: return {20, 34, 1};
    case OpKind::kMul32: return {60, 70, 2};
    case OpKind::kMac16: return {36, 50, 1};
    case OpKind::kMac32: return {80, 96, 1};
    case OpKind::kDiv32: return {1'050, 1'100, 0};
    case OpKind::kSqrt32: return {850, 900, 0};
    case OpKind::kCmp: return {20, 8, 0};
    case OpKind::kShift: return {8, 32, 0};
    case OpKind::kFAdd: return {380, 420, 2};
    case OpKind::kFMul: return {130, 150, 2};
    case OpKind::kFMac: return {500, 560, 2};
    case OpKind::kFDiv: return {2'200, 1'700, 0};
    case OpKind::kFSqrt: return {1'800, 1'500, 0};
    case OpKind::kLutFunc: return {1'400, 600, 0};
  }
  return {};
}

}  // namespace presp::hls
