// Kernel dataflow specifications consumed by the HLS estimator.
//
// The paper's accelerators come from two HLS flows (ESP's Vivado HLS flow
// for the MAC; Cadence Stratus for Conv2d/GEMM/FFT/Sort) plus the WAMI
// pipeline. We model an accelerator as an array of identical processing
// elements (PEs), each built from a mix of arithmetic operators, fed by
// address generators and on-chip buffers under an FSM controller — the
// standard loosely-coupled ESP accelerator shape (load / compute / store).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace presp::hls {

enum class OpKind : std::uint8_t {
  kAdd16,
  kAdd32,
  kMul16,
  kMul32,
  kMac16,
  kMac32,
  kDiv32,
  kSqrt32,
  kCmp,
  kShift,
  kFAdd,   // float32 add/sub
  kFMul,   // float32 multiply
  kFMac,   // fused float32 multiply-add
  kFDiv,
  kFSqrt,
  kLutFunc,  // table-based transcendental (exp/log) evaluator
};

const char* to_string(OpKind kind);

/// Post-synthesis footprint of one operator instance. Values follow common
/// Xilinx 7-series mapping results (DSP48-based multipliers, LUT-based
/// dividers, fabric-based float add).
struct OpCost {
  int luts = 0;
  int ffs = 0;
  int dsp = 0;
};
OpCost op_cost(OpKind kind);

struct OpCount {
  OpKind kind;
  int count = 1;
};

enum class HlsFlow : std::uint8_t { kVivadoHls, kStratusHls };

struct KernelSpec {
  std::string name;
  HlsFlow flow = HlsFlow::kStratusHls;

  /// Operator mix of one processing element.
  std::vector<OpCount> pe_ops;
  /// Number of parallel PEs (the HLS unroll factor).
  int num_pes = 1;

  int address_generators = 1;
  int fsm_states = 8;
  /// Extra datapath glue (line buffers, window shifters) in LUTs.
  int buffer_luts = 0;
  /// Private scratchpad, in bytes (maps to BRAM36).
  long long scratchpad_bytes = 0;

  /// Pipeline initiation interval of the PE array (items accepted per
  /// `pipeline_ii` cycles across all PEs).
  int pipeline_ii = 1;
  /// Pipeline fill/flush depth in cycles.
  int pipeline_depth = 8;

  /// DMA traffic per processed item, in 64-bit words (reads, writes).
  double words_in_per_item = 1.0;
  double words_out_per_item = 1.0;
};

}  // namespace presp::hls
