// HLS synthesis estimator: turns a KernelSpec into (a) a post-synthesis
// resource footprint compatible with the component library, and (b) a
// cycle-level latency/throughput model used by the SoC simulator's
// accelerator datapaths.
#pragma once

#include <string>

#include "fabric/resources.hpp"
#include "hls/kernel_spec.hpp"
#include "netlist/components.hpp"

namespace presp::hls {

/// Throughput/latency model of a synthesized accelerator.
struct LatencyModel {
  /// Configuration + FSM startup cycles per invocation.
  long long startup_cycles = 0;
  /// Items accepted per `ii` cycles across the whole PE array.
  int items_per_beat = 1;
  int ii = 1;
  /// Pipeline drain at the end of an invocation.
  long long drain_cycles = 0;
  /// DMA words (64-bit) moved per item.
  double words_in_per_item = 1.0;
  double words_out_per_item = 1.0;

  /// Pure compute cycles to process `items` (excludes DMA, which the SoC
  /// model accounts for separately on the NoC).
  long long compute_cycles(long long items) const;
};

struct SynthesizedKernel {
  std::string name;
  fabric::ResourceVec resources;
  LatencyModel latency;
};

/// Runs the estimator. Deterministic: identical specs yield identical
/// results (the flow relies on this to reuse checkpoints).
SynthesizedKernel estimate(const KernelSpec& spec);

/// Convenience: estimate + register the kernel as a reconfigurable block
/// in a component library. Returns the synthesized record.
SynthesizedKernel register_kernel(netlist::ComponentLibrary& lib,
                                  const KernelSpec& spec);

}  // namespace presp::hls
