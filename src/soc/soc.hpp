// SoC assembly: instantiates the kernel, NoC, memory, energy meter and all
// tiles from a SocConfig, and exposes the handles the software stack
// (runtime module) programs against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/soc_config.hpp"
#include "soc/tiles.hpp"

namespace presp::soc {

class Soc {
 public:
  /// `registry` must outlive the Soc and contain a model for every
  /// accelerator named in the configuration.
  Soc(const netlist::SocConfig& config, const AcceleratorRegistry& registry,
      SocOptions options = {});
  ~Soc();
  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  const netlist::SocConfig& config() const { return config_; }
  sim::Kernel& kernel() { return kernel_; }
  noc::Noc& noc() { return *noc_; }
  MainMemory& memory() { return *memory_; }
  EnergyMeter& energy() { return *energy_; }
  const SocOptions& options() const { return options_; }

  CpuTile& cpu() { return *cpu_; }
  AuxTile& aux() { return *aux_; }
  int aux_tile_index() const { return aux_index_; }

  /// Reconfigurable tile living at grid index `tile`.
  ReconfTile& reconf_tile(int tile);
  const std::vector<std::unique_ptr<MemTile>>& mem_tiles() const {
    return mem_tiles_;
  }
  const std::vector<std::unique_ptr<ReconfTile>>& reconf_tiles() const {
    return reconf_tiles_;
  }

  /// Fabric-side module swap (invoked by the DFX controller model).
  void load_module(int tile, const std::string& module);

  /// Attaches a fault injector to every hardware hook (tiles and NoC).
  /// Null detaches. The injector must outlive the SoC or be detached
  /// before destruction.
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() const {
    return services_->injector;
  }

  /// Simulated seconds elapsed at the kernel's current time.
  double seconds() const;

  /// Energy including NoC transport (folds the routers' flit counters
  /// into the meter before reading it).
  double total_joules();
  EnergyMeter::Breakdown energy_breakdown();

 private:
  netlist::SocConfig config_;
  SocOptions options_;
  sim::Kernel kernel_;
  std::unique_ptr<noc::Noc> noc_;
  std::unique_ptr<MainMemory> memory_;
  std::unique_ptr<EnergyMeter> energy_;
  std::unique_ptr<SocServices> services_;
  std::unique_ptr<CpuTile> cpu_;
  std::unique_ptr<AuxTile> aux_;
  std::vector<std::unique_ptr<MemTile>> mem_tiles_;
  std::vector<std::unique_ptr<ReconfTile>> reconf_tiles_;
  int aux_index_ = -1;
  std::uint64_t accounted_noc_flits_ = 0;
};

}  // namespace presp::soc
