#include "soc/soc.hpp"

#include "util/error.hpp"

namespace presp::soc {

Soc::Soc(const netlist::SocConfig& config,
         const AcceleratorRegistry& registry, SocOptions options)
    : config_(config), options_(options) {
  config_.validate();
  noc_ = std::make_unique<noc::Noc>(kernel_, config_.rows, config_.cols,
                                    options_.noc);
  memory_ = std::make_unique<MainMemory>(options_.memory);
  options_.power.clock_mhz = config_.clock_mhz;
  energy_ = std::make_unique<EnergyMeter>(kernel_, options_.power);

  const int cpu_index = config_.tiles_of(netlist::TileType::kCpu).front();
  aux_index_ = config_.tiles_of(netlist::TileType::kAux).front();

  services_ = std::make_unique<SocServices>(SocServices{
      kernel_, *noc_, *memory_, *energy_, options_, registry, cpu_index,
      config_.tiles_of(netlist::TileType::kMem)});

  cpu_ = std::make_unique<CpuTile>(*services_, cpu_index);
  aux_ = std::make_unique<AuxTile>(*services_, *this, aux_index_);
  for (const int idx : config_.tiles_of(netlist::TileType::kMem))
    mem_tiles_.push_back(std::make_unique<MemTile>(*services_, idx));

  int partition = 1;
  for (int idx = 0; idx < static_cast<int>(config_.tiles.size()); ++idx) {
    const auto& spec = config_.tiles[static_cast<std::size_t>(idx)];
    const bool reconf =
        spec.type == netlist::TileType::kReconf ||
        (spec.type == netlist::TileType::kCpu &&
         spec.cpu_in_reconfigurable_partition);
    if (!reconf) continue;
    // Validate that every member has a behavioral model.
    for (const std::string& acc : spec.accelerators)
      PRESP_REQUIRE(registry.has(acc),
                    "no accelerator model registered for '" + acc + "'");
    reconf_tiles_.push_back(std::make_unique<ReconfTile>(
        *services_, idx, "RT_" + std::to_string(partition++)));
  }
}

Soc::~Soc() = default;

ReconfTile& Soc::reconf_tile(int tile) {
  for (const auto& rt : reconf_tiles_)
    if (rt->index() == tile) return *rt;
  throw InvalidArgument("tile " + std::to_string(tile) +
                        " is not a reconfigurable tile");
}

void Soc::load_module(int tile, const std::string& module) {
  reconf_tile(tile).load_module(module);
}

void Soc::set_fault_injector(fault::FaultInjector* injector) {
  services_->injector = injector;
  noc_->set_fault_injector(injector);
}

double Soc::seconds() const {
  return static_cast<double>(kernel_.now()) / (config_.clock_mhz * 1e6);
}

double Soc::total_joules() {
  (void)energy_breakdown();  // fold pending NoC flits into the meter
  return energy_->total_joules();
}

EnergyMeter::Breakdown Soc::energy_breakdown() {
  std::uint64_t flits = 0;
  for (int p = 0; p < noc::kNumPlanes; ++p)
    flits += noc_->stats(static_cast<noc::Plane>(p)).flits;
  if (flits > accounted_noc_flits_) {
    energy_->on_noc_flits(flits - accounted_noc_flits_);
    accounted_noc_flits_ = flits;
  }
  return energy_->breakdown();
}

}  // namespace presp::soc
