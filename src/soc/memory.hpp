// Shared DRAM model.
//
// The paper's VC707 system uses a 1 GB shared DDR reachable through the
// MEM tile. The model provides (a) a real byte-addressed backing store so
// accelerator functional models and the runtime manager move actual data
// (frames, partial bitstreams), and (b) the latency parameters the MEM
// tile uses to time DMA service. Partial bitstreams are stored as blobs
// with attached identity metadata — the DFX controller resolves the module
// a bitstream configures from the blob it was pointed at, standing in for
// the fabric decoding the configuration frames themselves.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace presp::soc {

struct MemoryOptions {
  std::size_t size_bytes = 64u << 20;  // modeled slice of the 1 GB DDR
  /// First-word access latency in SoC cycles (row activate + CAS).
  int access_latency = 28;
  /// 64-bit words transferred per cycle once streaming.
  int words_per_cycle = 8;
};

/// Identity of a partial bitstream blob living in DRAM.
struct BitstreamBlob {
  std::string module;          // empty = blanking bitstream
  int target_tile = -1;        // grid index of the reconfigurable tile
  std::size_t bytes = 0;       // compressed transport size
  std::uint32_t crc = 0;
  /// Transient corruption injected by corrupt_blob(); the configuration
  /// engine's CRC check trips once, then the flag clears (models a
  /// transfer error that a re-fetch repairs).
  bool corrupted = false;
};

class MainMemory {
 public:
  explicit MainMemory(MemoryOptions options = {});

  const MemoryOptions& options() const { return options_; }
  std::size_t size() const { return data_.size(); }

  /// Bump allocation of a named region; 64-byte aligned.
  std::uint64_t allocate(const std::string& name, std::size_t bytes);
  /// Base address of a previously allocated region.
  std::uint64_t region(const std::string& name) const;
  std::size_t region_size(const std::string& name) const;

  std::span<std::uint8_t> bytes(std::uint64_t addr, std::size_t len);
  std::span<const std::uint8_t> bytes(std::uint64_t addr,
                                      std::size_t len) const;

  void write_u32(std::uint64_t addr, std::uint32_t value);
  std::uint32_t read_u32(std::uint64_t addr) const;

  /// Registers bitstream identity metadata at `addr` (the runtime manager
  /// does this when it copies a partial bitstream into kernel memory).
  void attach_blob(std::uint64_t addr, BitstreamBlob blob);
  /// Blob lookup used by the DFX controller when triggered.
  const BitstreamBlob& blob_at(std::uint64_t addr) const;

  /// Failure injection: marks the blob at `addr` as corrupted; the next
  /// CRC check fails and clears the flag.
  void corrupt_blob(std::uint64_t addr);
  /// Consumes the corruption flag (returns the pre-clear value).
  bool consume_corruption(std::uint64_t addr);

  /// Cycles to stream `words` 64-bit words (excluding NoC transport).
  long long stream_cycles(long long words) const;

 private:
  MemoryOptions options_;
  std::vector<std::uint8_t> data_;
  std::uint64_t next_free_ = 64;
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> regions_;
  std::map<std::uint64_t, BitstreamBlob> blobs_;
};

}  // namespace presp::soc
