#include "soc/memory.hpp"

namespace presp::soc {

MainMemory::MainMemory(MemoryOptions options)
    : options_(options), data_(options.size_bytes, 0) {
  PRESP_REQUIRE(options_.size_bytes >= 1024, "memory too small");
  PRESP_REQUIRE(options_.words_per_cycle >= 1 && options_.access_latency >= 0,
                "bad memory timing");
}

std::uint64_t MainMemory::allocate(const std::string& name,
                                   std::size_t bytes) {
  PRESP_REQUIRE(regions_.find(name) == regions_.end(),
                "region '" + name + "' already allocated");
  const std::uint64_t base = (next_free_ + 63) & ~std::uint64_t{63};
  if (base + bytes > data_.size())
    throw InvalidArgument("out of modeled DRAM allocating '" + name + "'");
  next_free_ = base + bytes;
  regions_[name] = {base, bytes};
  return base;
}

std::uint64_t MainMemory::region(const std::string& name) const {
  const auto it = regions_.find(name);
  PRESP_REQUIRE(it != regions_.end(), "unknown region '" + name + "'");
  return it->second.first;
}

std::size_t MainMemory::region_size(const std::string& name) const {
  const auto it = regions_.find(name);
  PRESP_REQUIRE(it != regions_.end(), "unknown region '" + name + "'");
  return it->second.second;
}

std::span<std::uint8_t> MainMemory::bytes(std::uint64_t addr,
                                          std::size_t len) {
  PRESP_REQUIRE(addr + len <= data_.size(), "memory access out of range");
  return {data_.data() + addr, len};
}

std::span<const std::uint8_t> MainMemory::bytes(std::uint64_t addr,
                                                std::size_t len) const {
  PRESP_REQUIRE(addr + len <= data_.size(), "memory access out of range");
  return {data_.data() + addr, len};
}

void MainMemory::write_u32(std::uint64_t addr, std::uint32_t value) {
  auto span = bytes(addr, 4);
  for (int i = 0; i < 4; ++i)
    span[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint32_t MainMemory::read_u32(std::uint64_t addr) const {
  const auto span = bytes(addr, 4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(span[static_cast<std::size_t>(i)])
             << (8 * i);
  return value;
}

void MainMemory::attach_blob(std::uint64_t addr, BitstreamBlob blob) {
  blobs_[addr] = std::move(blob);
}

const BitstreamBlob& MainMemory::blob_at(std::uint64_t addr) const {
  const auto it = blobs_.find(addr);
  PRESP_REQUIRE(it != blobs_.end(),
                "no bitstream registered at address " + std::to_string(addr));
  return it->second;
}

void MainMemory::corrupt_blob(std::uint64_t addr) {
  const auto it = blobs_.find(addr);
  PRESP_REQUIRE(it != blobs_.end(),
                "no bitstream registered at address " + std::to_string(addr));
  it->second.corrupted = true;
}

bool MainMemory::consume_corruption(std::uint64_t addr) {
  const auto it = blobs_.find(addr);
  if (it == blobs_.end()) return false;
  const bool was = it->second.corrupted;
  it->second.corrupted = false;
  return was;
}

long long MainMemory::stream_cycles(long long words) const {
  if (words <= 0) return 0;
  return options_.access_latency +
         (words + options_.words_per_cycle - 1) / options_.words_per_cycle;
}

}  // namespace presp::soc
