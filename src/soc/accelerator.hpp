// Accelerator behavioral models hosted by (reconfigurable) tiles.
//
// A spec combines the HLS latency/throughput model (timing), the LUT
// footprint (power), and an optional *functional* model that transforms
// the task's memory buffers when the invocation completes — so end-to-end
// SoC simulations produce bit-exact outputs against the software golden
// pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "hls/estimator.hpp"
#include "soc/memory.hpp"

namespace presp::soc {

/// Task written into the tile's memory-mapped registers by the driver.
struct AccelTask {
  std::uint64_t src = 0;    // input buffer address
  std::uint64_t dst = 0;    // output buffer address
  long long items = 0;      // work items (pixels, rows, ...)
  std::uint64_t aux = 0;    // kernel-specific extra argument
};

struct AcceleratorSpec {
  std::string name;
  hls::LatencyModel latency;
  long long luts = 0;
  /// Functional model, applied to memory when the run completes. May be
  /// empty for timing-only experiments.
  std::function<void(MainMemory&, const AccelTask&)> compute;
};

/// Registry mapping module names (as used in SoC configurations and
/// partial bitstreams) to behavioral models.
class AcceleratorRegistry {
 public:
  void add(AcceleratorSpec spec) {
    PRESP_REQUIRE(!spec.name.empty(), "accelerator needs a name");
    specs_[spec.name] = std::move(spec);
  }
  bool has(const std::string& name) const {
    return specs_.find(name) != specs_.end();
  }
  const AcceleratorSpec& get(const std::string& name) const {
    const auto it = specs_.find(name);
    PRESP_REQUIRE(it != specs_.end(),
                  "unknown accelerator model '" + name + "'");
    return it->second;
  }

 private:
  std::map<std::string, AcceleratorSpec> specs_;
};

}  // namespace presp::soc
