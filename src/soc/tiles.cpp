#include "soc/tiles.hpp"

#include <algorithm>

#include "soc/soc.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::soc {

namespace {

// Config-plane tag encoding: op(8) | reg(16) | txn(32).
constexpr std::uint64_t kOpWrite = 1;
constexpr std::uint64_t kOpRead = 2;
constexpr std::uint64_t kOpAck = 3;
constexpr std::uint64_t kOpReadRsp = 4;

std::uint64_t make_tag(std::uint64_t op, std::uint32_t reg,
                       std::uint64_t txn) {
  return (op << 56) | (static_cast<std::uint64_t>(reg) << 32) |
         (txn & 0xFFFFFFFFu);
}
std::uint64_t tag_op(std::uint64_t tag) { return tag >> 56; }
std::uint32_t tag_reg(std::uint64_t tag) {
  return static_cast<std::uint32_t>((tag >> 32) & 0xFFFFFFu);
}
std::uint64_t tag_txn(std::uint64_t tag) { return tag & 0xFFFFFFFFu; }

// DMA tag encoding: op(8) | last(8) | txn(32); payload: addr(40) | words(24).
constexpr std::uint64_t kDmaRead = 1;
constexpr std::uint64_t kDmaWriteChunk = 2;

std::uint64_t dma_tag(std::uint64_t op, bool last, std::uint64_t txn) {
  return (op << 56) | (static_cast<std::uint64_t>(last ? 1 : 0) << 48) |
         (txn & 0xFFFFFFFFu);
}
std::uint64_t dma_payload(std::uint64_t addr, long long words) {
  PRESP_ASSERT(words >= 0 && words < (1 << 24));
  return (addr << 24) | static_cast<std::uint64_t>(words);
}
long long payload_words(std::uint64_t payload) {
  return static_cast<long long>(payload & 0xFFFFFFu);
}

}  // namespace

// ------------------------------------------------------------------ DMA

sim::Process DmaPort::read(std::uint64_t addr, long long words,
                           sim::SimEvent& done) {
  PRESP_REQUIRE(words > 0, "DMA read of zero words");
  const std::uint64_t txn = next_txn_++;
  services_.noc.send({noc::Plane::kDmaReq, tile_, services_.mem_for(addr),
                      1, dma_tag(kDmaRead, true, txn),
                      dma_payload(addr, words)});
  long long received = 0;
  auto& box = services_.noc.rx(tile_, noc::Plane::kDmaRsp);
  while (received < words) {
    const noc::Packet pkt = co_await box.receive();
    if (pkt.poisoned) poisoned_ = true;
    received += pkt.flits;
  }
  services_.energy.on_dram_words(words);
  done.trigger();
}

sim::Process DmaPort::write(std::uint64_t addr, long long words,
                            sim::SimEvent& done) {
  PRESP_REQUIRE(words > 0, "DMA write of zero words");
  const std::uint64_t txn = next_txn_++;
  const int burst = services_.options.dma_burst_flits;
  long long sent = 0;
  while (sent < words) {
    const long long chunk = std::min<long long>(burst, words - sent);
    const bool last = sent + chunk >= words;
    const std::uint64_t chunk_addr =
        addr + static_cast<std::uint64_t>(sent) * 8;
    services_.noc.send({noc::Plane::kDmaReq, tile_,
                        services_.mem_for(addr),
                        static_cast<int>(chunk) + 1,
                        dma_tag(kDmaWriteChunk, last, txn),
                        dma_payload(chunk_addr, chunk)});
    sent += chunk;
  }
  auto& box = services_.noc.rx(tile_, noc::Plane::kDmaRsp);
  const noc::Packet ack = co_await box.receive();
  if (ack.poisoned) poisoned_ = true;
  services_.energy.on_dram_words(words);
  done.trigger();
}

// ------------------------------------------------------------------ CPU

CpuTile::CpuTile(SocServices& services, int index)
    : services_(services), index_(index) {
  response_server();
  irq_server();
}

void CpuTile::RegAccess::await_suspend(std::coroutine_handle<> handle) {
  const std::uint64_t txn = cpu.next_txn_++;
  cpu.pending_[txn] = Pending{handle, &result};
  ++cpu.reg_ops_;
  cpu.services_.energy.on_cpu_busy(40);  // driver-side cost per MMIO access
  cpu.services_.noc.send(
      {noc::Plane::kConfig, cpu.index_, tile, 2,
       make_tag(is_write ? kOpWrite : kOpRead, reg, txn), value});
}

sim::Process CpuTile::response_server() {
  auto& box = services_.noc.rx(index_, noc::Plane::kConfig);
  while (true) {
    const noc::Packet pkt = co_await box.receive();
    const std::uint64_t op = tag_op(pkt.tag);
    if (op != kOpAck && op != kOpReadRsp) continue;  // not a response
    // The config plane carries link-level ECC (losing a register ack
    // would wedge the driver): poisoned responses are corrected in place
    // and counted, never dropped.
    if (pkt.poisoned) ++corrected_responses_;
    const auto it = pending_.find(tag_txn(pkt.tag));
    PRESP_ASSERT_MSG(it != pending_.end(), "response for unknown txn");
    *it->second.result = pkt.payload;
    const auto handle = it->second.handle;
    pending_.erase(it);
    services_.kernel.schedule(0, [handle] { handle.resume(); });
  }
}

sim::Process CpuTile::irq_server() {
  auto& box = services_.noc.rx(index_, noc::Plane::kInterrupt);
  while (true) {
    const noc::Packet pkt = co_await box.receive();
    if (pkt.poisoned) {
      // A corrupted interrupt packet fails its parity check and is
      // dropped; the runtime's watchdogs recover the lost completion.
      ++dropped_irqs_;
      continue;
    }
    irq_from(static_cast<int>(pkt.tag)).send(pkt.payload);
  }
}

sim::Mailbox<std::uint64_t>& CpuTile::irq_from(int source_tile) {
  auto it = irqs_.find(source_tile);
  if (it == irqs_.end()) {
    it = irqs_
             .emplace(source_tile, std::make_unique<sim::Mailbox<
                                       std::uint64_t>>(services_.kernel))
             .first;
  }
  return *it->second;
}

// ------------------------------------------------------------------ MEM

MemTile::MemTile(SocServices& services, int index)
    : services_(services), index_(index) {
  dma_server();
  config_server();
}

sim::Process MemTile::dma_server() {
  auto& box = services_.noc.rx(index_, noc::Plane::kDmaReq);
  while (true) {
    const noc::Packet pkt = co_await box.receive();
    const std::uint64_t op = tag_op(pkt.tag);
    const long long words = payload_words(pkt.payload);
    ++requests_;
    if (op == kDmaRead) {
      co_await sim::Delay(services_.kernel,
                          static_cast<sim::Time>(
                              services_.memory.options().access_latency));
      long long sent = 0;
      const int burst = services_.options.dma_burst_flits;
      while (sent < words) {
        const long long chunk = std::min<long long>(burst, words - sent);
        co_await sim::Delay(
            services_.kernel,
            static_cast<sim::Time>(
                chunk / services_.memory.options().words_per_cycle + 1));
        services_.noc.send({noc::Plane::kDmaRsp, index_, pkt.src,
                            static_cast<int>(chunk), pkt.tag, 0});
        sent += chunk;
      }
    } else if (op == kDmaWriteChunk) {
      co_await sim::Delay(
          services_.kernel,
          static_cast<sim::Time>(
              services_.memory.options().access_latency / 4 +
              words / services_.memory.options().words_per_cycle + 1));
      const bool last = ((pkt.tag >> 48) & 0xFF) != 0;
      if (last)
        services_.noc.send(
            {noc::Plane::kDmaRsp, index_, pkt.src, 1, pkt.tag, 0});
    }
  }
}

sim::Process MemTile::config_server() {
  auto& box = services_.noc.rx(index_, noc::Plane::kConfig);
  while (true) {
    const noc::Packet pkt = co_await box.receive();
    // The MEM tile exposes no software-visible registers beyond an
    // identification word; acknowledge everything.
    const std::uint64_t op = tag_op(pkt.tag);
    services_.noc.send({noc::Plane::kConfig, index_, pkt.src, 1,
                        make_tag(op == kOpRead ? kOpReadRsp : kOpAck,
                                 tag_reg(pkt.tag), tag_txn(pkt.tag)),
                        0xE5BEEF});
  }
}

// ------------------------------------------------------------------ AUX

AuxTile::AuxTile(SocServices& services, Soc& soc, int index)
    : services_(services),
      soc_(soc),
      index_(index),
      dma_(services, index),
      dma_lock_(services.kernel, 1),
      reset_box_(std::make_unique<sim::Mailbox<int>>(services.kernel)) {
  config_server();
}

sim::Process AuxTile::config_server() {
  auto& box = services_.noc.rx(index_, noc::Plane::kConfig);
  while (true) {
    const noc::Packet pkt = co_await box.receive();
    const std::uint64_t op = tag_op(pkt.tag);
    const std::uint32_t reg = tag_reg(pkt.tag);
    // Ack payload: reads return the register; trigger/readback writes
    // return 1 when the controller was busy and the request was dropped.
    std::uint64_t response = 0;
    if (reg < regs_.size()) {
      if (op == kOpWrite) {
        regs_[reg] = pkt.payload;
        if (reg == kRegDfxcTrigger || reg == kRegDfxcReadback) {
          if (regs_[kRegDfxcStatus] == 1) {
            // Busy: the request is dropped, not queued. Report the drop
            // in the ack so software can treat it as retryable.
            ++dropped_triggers_;
            response = 1;
          } else {
            regs_[kRegDfxcStatus] = 1;
            if (reg == kRegDfxcTrigger) {
              reconfigure(regs_[kRegDfxcBsAddr], regs_[kRegDfxcBsBytes],
                          static_cast<int>(regs_[kRegDfxcTarget]));
            } else {
              readback(regs_[kRegDfxcBsAddr],
                       static_cast<int>(regs_[kRegDfxcTarget]));
            }
          }
        } else if (reg == kRegDfxcFetch) {
          const int target = static_cast<int>(regs_[kRegDfxcTarget]);
          const auto slots =
              static_cast<std::size_t>(services_.options.dfxc_staging_slots);
          if (regs_[kRegDfxcFetchStatus] == 1 ||
              (staged_.size() >= slots && staged_.count(target) == 0)) {
            // Fetch engine busy or staging buffer full: dropped, not
            // queued, exactly like the combined trigger.
            ++dropped_triggers_;
            response = 1;
          } else {
            regs_[kRegDfxcFetchStatus] = 1;
            fetch(regs_[kRegDfxcBsAddr], regs_[kRegDfxcBsBytes], target);
          }
        } else if (reg == kRegDfxcReset) {
          // Abort any in-flight transfer and return to idle: bump the
          // epoch (resumed transfers observe it and die) and wake a
          // wedged ICAP stream immediately. Staged fetches and the fetch
          // engine survive — the stages fail independently.
          ++resets_;
          ++epoch_;
          regs_[kRegDfxcStatus] = 0;
          reset_box_->send(1);
        } else if (reg == kRegDfxcFetchReset) {
          // Abort the in-flight fetch only; the program engine and the
          // already-staged bitstreams are untouched.
          ++resets_;
          ++fetch_epoch_;
          regs_[kRegDfxcFetchStatus] = 0;
        }
      } else {
        response = regs_[reg];
      }
    }
    services_.noc.send({noc::Plane::kConfig, index_, pkt.src, 1,
                        make_tag(op == kOpRead ? kOpReadRsp : kOpAck, reg,
                                 tag_txn(pkt.tag)),
                        response});
  }
}

sim::Process AuxTile::reconfigure(std::uint64_t bs_addr,
                                  std::uint64_t bs_bytes, int target) {
  // A DFXC reset bumps epoch_; every resumption below re-checks it so an
  // aborted transfer dies without touching the fabric or the registers.
  const std::uint64_t epoch = epoch_;
  const BitstreamBlob& blob = services_.memory.blob_at(bs_addr);
  PRESP_ASSERT_MSG(blob.bytes == bs_bytes,
                   "DFXC: BS_BYTES does not match the registered blob");

  // Split-transaction fast path: the bitstream was already fetched and
  // CRC-checked into the staging buffer, go straight to the ICAP.
  const auto staged_it = staged_.find(target);
  const bool staged = staged_it != staged_.end() &&
                      staged_it->second.addr == bs_addr &&
                      staged_it->second.bytes == bs_bytes;
  if (staged) {
    ++staged_hits_;
  } else {
    // Fetch the partial bitstream from DRAM through the NoC. The DMA
    // lock serializes against the fetch engine (one transaction
    // outstanding per tile).
    co_await dma_lock_.acquire();
    if (epoch != epoch_) {
      dma_lock_.release();
      co_return;
    }
    const long long words =
        static_cast<long long>((bs_bytes + 7) / 8);
    sim::SimEvent fetched(services_.kernel);
    dma_.read(bs_addr, words, fetched);
    co_await fetched.wait();
    // CRC check before anything touches the fabric: a corrupted transfer
    // must never partially configure the partition. A poisoned NoC
    // response burst fails the same check as a corrupted DRAM blob.
    const bool crc_failed = dma_.consume_poisoned() ||
                            services_.memory.consume_corruption(bs_addr);
    dma_lock_.release();
    if (epoch != epoch_) co_return;
    if (crc_failed) {
      ++crc_errors_;
      regs_[kRegDfxcStatus] = 2;  // error
      services_.noc.send({noc::Plane::kInterrupt, index_,
                          services_.cpu_tile, 1,
                          static_cast<std::uint64_t>(index_),
                          kIrqReconfError |
                              (static_cast<std::uint64_t>(target) << 8)});
      co_return;
    }
  }

  // Injected ICAP stall: the write stream wedges before the first word.
  // A DFXC reset wakes it immediately (and aborts via the epoch check);
  // otherwise the stall clears on its own after the configured window and
  // the transfer resumes.
  if (services_.injector != nullptr &&
      services_.injector->on_icap_transfer(target)) {
    ++icap_stalls_;
    while (reset_box_->try_receive().has_value()) {
    }
    co_await reset_box_->receive_for(
        static_cast<sim::Time>(services_.options.fault_icap_stall_cycles));
    if (epoch != epoch_) co_return;
  }

  // ...and stream it into the ICAP.
  const auto icap_cycles = static_cast<sim::Time>(
      static_cast<double>(bs_bytes) /
      services_.options.icap_bytes_per_cycle);
  co_await sim::Delay(services_.kernel, icap_cycles);
  if (epoch != epoch_) co_return;
  services_.energy.on_icap(static_cast<long long>(icap_cycles));

  // Injected DFXC hang: the stream finished but the controller never
  // signals completion — the fabric keeps the old module, DFXC_STATUS
  // stays busy until software resets the controller and retries.
  if (services_.injector != nullptr &&
      services_.injector->on_dfxc_completion(target)) {
    co_return;
  }

  // The fabric now holds the new module (empty name = blanking image).
  soc_.load_module(target, blob.module);
  if (staged) staged_.erase(target);
  ++reconfigurations_;
  icap_bytes_ += bs_bytes;
  regs_[kRegDfxcStatus] = 0;

  // Interrupt the processor: software re-enables the decoupler and starts
  // the new accelerator.
  services_.noc.send({noc::Plane::kInterrupt, index_, services_.cpu_tile, 1,
                      static_cast<std::uint64_t>(index_),
                      kIrqReconfDone |
                          (static_cast<std::uint64_t>(target) << 8)});
}

sim::Process AuxTile::fetch(std::uint64_t bs_addr, std::uint64_t bs_bytes,
                            int target) {
  // Same abort discipline as reconfigure(), but against the fetch
  // engine's own epoch: a program-engine reset never kills a fetch and
  // vice versa.
  const std::uint64_t epoch = fetch_epoch_;
  const BitstreamBlob& blob = services_.memory.blob_at(bs_addr);
  PRESP_ASSERT_MSG(blob.bytes == bs_bytes,
                   "DFXC: BS_BYTES does not match the registered blob");

  co_await dma_lock_.acquire();
  if (epoch != fetch_epoch_) {
    dma_lock_.release();
    co_return;
  }
  const long long words = static_cast<long long>((bs_bytes + 7) / 8);
  sim::SimEvent fetched(services_.kernel);
  dma_.read(bs_addr, words, fetched);
  co_await fetched.wait();
  const bool crc_failed = dma_.consume_poisoned() ||
                          services_.memory.consume_corruption(bs_addr);
  dma_lock_.release();
  if (epoch != fetch_epoch_) co_return;

  if (crc_failed) {
    // The staging slot is never written from a failed transfer: an
    // in-flight program of the previous request keeps streaming its own
    // (already checked) bitstream untouched.
    ++crc_errors_;
    regs_[kRegDfxcFetchStatus] = 2;  // error
    services_.noc.send({noc::Plane::kInterrupt, index_, services_.cpu_tile,
                        1, static_cast<std::uint64_t>(index_),
                        kIrqReconfError |
                            (static_cast<std::uint64_t>(target) << 8)});
    co_return;
  }

  staged_[target] = StagedBitstream{bs_addr, bs_bytes};
  ++fetches_;
  regs_[kRegDfxcFetchStatus] = 0;
  services_.noc.send({noc::Plane::kInterrupt, index_, services_.cpu_tile, 1,
                      static_cast<std::uint64_t>(index_),
                      kIrqFetchDone |
                          (static_cast<std::uint64_t>(target) << 8)});
}

sim::Process AuxTile::readback(std::uint64_t bs_addr, int target) {
  const BitstreamBlob& blob = services_.memory.blob_at(bs_addr);
  // Stream the partition frames back out of the ICAP (same bandwidth as
  // configuration) and compare word-by-word against the golden image.
  const auto icap_cycles = static_cast<sim::Time>(
      static_cast<double>(blob.bytes) /
      services_.options.icap_bytes_per_cycle);
  co_await sim::Delay(services_.kernel, icap_cycles);
  services_.energy.on_icap(static_cast<long long>(icap_cycles));

  const ReconfTile& tile = soc_.reconf_tile(target);
  const bool match = tile.module() == blob.module && !tile.config_upset();
  regs_[kRegDfxcVerify] = match ? 1 : 2;
  regs_[kRegDfxcStatus] = 0;
  services_.noc.send({noc::Plane::kInterrupt, index_, services_.cpu_tile, 1,
                      static_cast<std::uint64_t>(index_),
                      kIrqReadbackDone |
                          (static_cast<std::uint64_t>(target) << 8)});
}

// --------------------------------------------------------------- Reconf

ReconfTile::ReconfTile(SocServices& services, int index,
                       std::string partition)
    : services_(services),
      index_(index),
      partition_(std::move(partition)),
      dma_(services, index),
      abort_box_(std::make_unique<sim::Mailbox<int>>(services.kernel)) {
  config_server();
}

void ReconfTile::load_module(const std::string& name) {
  PRESP_ASSERT_MSG(regs_[kRegDecouple] != 0,
                   "module swap while the tile is not decoupled");
  if (spec_ != nullptr)
    services_.energy.on_configured_change(-spec_->luts);
  module_ = name;
  spec_ = name.empty() ? nullptr : &services_.accelerators.get(name);
  if (spec_ != nullptr)
    services_.energy.on_configured_change(spec_->luts);
  regs_[kRegStatus] = kStatusIdle;
  regs_[kRegModuleId] = spec_ == nullptr ? 0 : 1;
  // Rewriting the frames clears any configuration upset and supersedes a
  // hung run (which observes the generation bump when woken).
  config_upset_ = false;
  ++generation_;
  abort_box_->send(1);
}

void ReconfTile::inject_seu() {
  config_upset_ = true;
  ++seu_upsets_;
}

sim::Process ReconfTile::config_server() {
  auto& box = services_.noc.rx(index_, noc::Plane::kConfig);
  while (true) {
    const noc::Packet pkt = co_await box.receive();
    const std::uint64_t op = tag_op(pkt.tag);
    const std::uint32_t reg = tag_reg(pkt.tag);
    // Ack payload: reads return the register; CMD / DECOUPLE writes nack
    // with 1 when the wrapper refused the operation.
    std::uint64_t response = 0;
    if (reg < regs_.size()) {
      if (op == kOpWrite) {
        if (reg == kRegDecouple && pkt.payload != 0 &&
            regs_[kRegStatus] == kStatusRunning) {
          ++unsafe_decouples_;
        }
        if (reg == kRegCmd) {
          // An SEU strike surfaces at the next start attempt: the
          // wrapper's frame-level parity refuses to launch on upset
          // frames, so the fault is detected before it can corrupt data.
          if (pkt.payload == 1 && services_.injector != nullptr &&
              services_.injector->on_seu_check(index_)) {
            inject_seu();
          }
          if (pkt.payload == 1 && spec_ != nullptr && !decoupled() &&
              !config_upset_ && regs_[kRegStatus] != kStatusRunning) {
            regs_[kRegStatus] = kStatusRunning;
            run_accelerator();
          } else {
            ++rejected_commands_;
            response = 1;
          }
        } else if (reg == kRegDecouple && pkt.payload == 0 &&
                   regs_[kRegDecouple] != 0 &&
                   services_.injector != nullptr &&
                   services_.injector->on_decoupler_release(index_)) {
          // Injected stuck-at fault: the release is dropped and nacked;
          // the partition stays decoupled until a later release lands.
          ++stuck_decouples_;
          response = 1;
        } else {
          regs_[reg] = pkt.payload;
        }
      } else {
        response = regs_[reg];
      }
    }
    services_.noc.send({noc::Plane::kConfig, index_, pkt.src, 1,
                        make_tag(op == kOpRead ? kOpReadRsp : kOpAck, reg,
                                 tag_txn(pkt.tag)),
                        response});
  }
}

sim::Process ReconfTile::run_accelerator() {
  // A partition rewrite (load_module) bumps generation_; the run aborts
  // at the next resumption so it never touches memory or raises an
  // interrupt on behalf of a module that is no longer configured.
  const std::uint64_t generation = generation_;

  // Injected hang: the datapath wedges before any DMA or compute — no
  // side effects, no done interrupt, STATUS stuck at running. Recovery is
  // a forced partition rewrite (which wakes and supersedes the run) or,
  // failing that, the wedge window expiring.
  if (services_.injector != nullptr &&
      services_.injector->on_accelerator_start(index_)) {
    ++hung_runs_;
    while (abort_box_->try_receive().has_value()) {
    }
    co_await abort_box_->receive_for(
        static_cast<sim::Time>(services_.options.fault_accel_hang_cycles));
    if (generation != generation_) co_return;
    // Wedge cleared on its own with the module still in place: the run is
    // abandoned, the wrapper returns to idle without side effects.
    regs_[kRegStatus] = kStatusIdle;
    co_return;
  }

  const AcceleratorSpec& spec = *spec_;
  const AccelTask task{regs_[kRegSrc], regs_[kRegDst],
                       static_cast<long long>(regs_[kRegItems]),
                       regs_[kRegAuxArg]};
  const sim::Time start = services_.kernel.now();

  const long long total_in = static_cast<long long>(
      static_cast<double>(task.items) * spec.latency.words_in_per_item);
  const long long total_out = static_cast<long long>(
      static_cast<double>(task.items) * spec.latency.words_out_per_item);
  const long long total_compute = spec.latency.compute_cycles(task.items);

  // Burst pipeline: stream input, compute, stream output per slice.
  constexpr long long kBurstItems = 4096;
  long long done_items = 0;
  sim::SimEvent dma_done(services_.kernel);
  while (done_items < task.items) {
    const long long slice =
        std::min<long long>(kBurstItems, task.items - done_items);
    const double frac = static_cast<double>(slice) /
                        static_cast<double>(task.items);
    const long long in_words = std::max<long long>(
        1, static_cast<long long>(frac * static_cast<double>(total_in)));
    const long long out_words = static_cast<long long>(
        frac * static_cast<double>(total_out));

    dma_done.reset();
    dma_.read(task.src + static_cast<std::uint64_t>(done_items) * 8,
              in_words, dma_done);
    co_await dma_done.wait();
    if (generation != generation_) co_return;
    while (dma_.consume_poisoned()) {
      // Link-level CRC failure on a response burst: re-issue the slice.
      ++dma_retries_;
      dma_done.reset();
      dma_.read(task.src + static_cast<std::uint64_t>(done_items) * 8,
                in_words, dma_done);
      co_await dma_done.wait();
      if (generation != generation_) co_return;
    }

    co_await sim::Delay(
        services_.kernel,
        static_cast<sim::Time>(
            frac * static_cast<double>(total_compute)));
    if (generation != generation_) co_return;

    if (out_words > 0) {
      dma_done.reset();
      dma_.write(task.dst + static_cast<std::uint64_t>(done_items) * 8,
                 out_words, dma_done);
      co_await dma_done.wait();
      if (generation != generation_) co_return;
      while (dma_.consume_poisoned()) {
        ++dma_retries_;
        dma_done.reset();
        dma_.write(task.dst + static_cast<std::uint64_t>(done_items) * 8,
                   out_words, dma_done);
        co_await dma_done.wait();
        if (generation != generation_) co_return;
      }
    }
    done_items += slice;
  }

  // Functional model: transform the actual buffers.
  if (spec.compute) spec.compute(services_.memory, task);

  services_.energy.on_active(spec.luts, total_compute);
  busy_cycles_ += static_cast<long long>(services_.kernel.now() - start);
  ++invocations_;
  regs_[kRegStatus] = kStatusDone;
  services_.noc.send({noc::Plane::kInterrupt, index_, services_.cpu_tile, 1,
                      static_cast<std::uint64_t>(index_), kIrqAccelDone});
}

}  // namespace presp::soc
