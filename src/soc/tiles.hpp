// Tile models: the architectural support of Section III.
//
//   CpuTile    — issues memory-mapped register accesses over the config
//                plane and receives interrupts; the software stack
//                (runtime module) runs as coroutines against its API.
//   MemTile    — services DMA read/write requests against MainMemory.
//   AuxTile    — the augmented ESP auxiliary tile: hosts the DFX
//                controller + ICAP. Triggered via registers, it fetches a
//                partial bitstream from DRAM over the NoC, streams it into
//                the ICAP, swaps the target tile's module, and interrupts
//                the CPU.
//   ReconfTile — the new reconfigurable tile: common accelerator wrapper
//                (load/store + config registers + done interrupt) behind
//                reconfiguration decoupling logic.
//
// Register map (config plane, per tile):
//   0 CMD (write 1 = start)      4 ITEMS          16 DFXC_BS_ADDR
//   1 STATUS (0/1/2 idle/run/    5 AUX_ARG        17 DFXC_BS_BYTES
//     done; read clears done)    6 DECOUPLE       18 DFXC_TARGET
//   2 SRC                        7 MODULE_ID      19 DFXC_TRIGGER
//   3 DST                                         20 DFXC_STATUS
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "noc/noc.hpp"
#include "soc/accelerator.hpp"
#include "soc/energy.hpp"
#include "soc/memory.hpp"

namespace presp::soc {

// Register indices.
inline constexpr std::uint32_t kRegCmd = 0;
inline constexpr std::uint32_t kRegStatus = 1;
inline constexpr std::uint32_t kRegSrc = 2;
inline constexpr std::uint32_t kRegDst = 3;
inline constexpr std::uint32_t kRegItems = 4;
inline constexpr std::uint32_t kRegAuxArg = 5;
inline constexpr std::uint32_t kRegDecouple = 6;
inline constexpr std::uint32_t kRegModuleId = 7;
inline constexpr std::uint32_t kRegDfxcBsAddr = 16;
inline constexpr std::uint32_t kRegDfxcBsBytes = 17;
inline constexpr std::uint32_t kRegDfxcTarget = 18;
inline constexpr std::uint32_t kRegDfxcTrigger = 19;
inline constexpr std::uint32_t kRegDfxcStatus = 20;
inline constexpr std::uint32_t kRegDfxcReadback = 21;
inline constexpr std::uint32_t kRegDfxcVerify = 22;  // 1 pass, 2 fail
/// Write 1: abort any in-flight transfer and return the DFXC to idle —
/// the recovery handle the runtime watchdog uses on ICAP stalls / hangs.
/// Resets the combined/program engine only; staged fetches and the fetch
/// engine (below) are untouched, so recovering one stage never corrupts
/// the other's in-flight work.
inline constexpr std::uint32_t kRegDfxcReset = 23;
/// Split-transaction support: write 1 to fetch the bitstream at
/// BS_ADDR/BS_BYTES into an internal staging slot keyed by TARGET (DMA +
/// CRC only, nothing touches the fabric). A later DFXC_TRIGGER for the
/// same TARGET/BS_ADDR then skips the DMA and streams straight into the
/// ICAP — the hardware half of the runtime's fetch/program pipeline.
/// Nacked (ack payload 1) while a fetch is in flight or the staging
/// buffer is full.
inline constexpr std::uint32_t kRegDfxcFetch = 24;
/// Fetch-engine status: 0 idle/done, 1 busy, 2 CRC error.
inline constexpr std::uint32_t kRegDfxcFetchStatus = 25;
/// Write 1: abort the in-flight fetch and return the fetch engine to
/// idle. Independent of kRegDfxcReset for the same isolation reason.
inline constexpr std::uint32_t kRegDfxcFetchReset = 26;

// STATUS values.
inline constexpr std::uint64_t kStatusIdle = 0;
inline constexpr std::uint64_t kStatusRunning = 1;
inline constexpr std::uint64_t kStatusDone = 2;

// Interrupt payload codes (packet.payload low byte).
inline constexpr std::uint64_t kIrqAccelDone = 1;
inline constexpr std::uint64_t kIrqReconfDone = 2;
/// CRC check on the fetched bitstream failed; the partition is left
/// blank and decoupled, software must retry or recover.
inline constexpr std::uint64_t kIrqReconfError = 3;
/// Readback verification finished; result in DFXC_VERIFY.
inline constexpr std::uint64_t kIrqReadbackDone = 4;
/// A split-transaction fetch (kRegDfxcFetch) staged its bitstream; the
/// payload carries the target tile like the reconfiguration interrupts.
inline constexpr std::uint64_t kIrqFetchDone = 5;

struct SocOptions {
  MemoryOptions memory;
  noc::NocOptions noc;
  PowerConstants power;
  /// Max flits per DMA response burst packet.
  int dma_burst_flits = 128;
  /// ICAP throughput in bytes per SoC cycle (ICAPE2 at 78 MHz).
  double icap_bytes_per_cycle = 8.0;
  /// Cycles an injected ICAP stall wedges the transfer before clearing on
  /// its own (a DFXC reset aborts it immediately).
  long long fault_icap_stall_cycles = 1'000'000'000;
  /// Cycles an injected accelerator hang wedges the datapath before the
  /// frame is abandoned (a partition rewrite aborts it immediately).
  long long fault_accel_hang_cycles = 1'000'000'000;
  /// Staging slots in the DFX controller's split-transaction fetch buffer
  /// (2 = double buffer: one bitstream programming, one fetching).
  int dfxc_staging_slots = 2;
};

class Soc;  // forward

/// Shared plumbing handed to every tile.
struct SocServices {
  sim::Kernel& kernel;
  noc::Noc& noc;
  MainMemory& memory;
  EnergyMeter& energy;
  const SocOptions& options;
  const AcceleratorRegistry& accelerators;
  int cpu_tile = -1;
  /// All MEM tiles; DMA interleaves across them by address (4 KB
  /// granularity), the ESP multi-memory-tile scheme.
  std::vector<int> mem_tiles;
  /// Optional fault injector; tiles consult its hooks when non-null.
  fault::FaultInjector* injector = nullptr;

  int mem_for(std::uint64_t addr) const {
    return mem_tiles[static_cast<std::size_t>((addr >> 12) %
                                              mem_tiles.size())];
  }
};

/// Awaitable DMA helper: issues one read/write transaction to the MEM tile
/// and suspends the calling process until it completes. One transaction
/// outstanding per requesting tile (matching ESP's per-tile DMA proxy).
class DmaPort {
 public:
  DmaPort(SocServices& services, int tile)
      : services_(services), tile_(tile) {}

  /// Reads `words` 64-bit words starting at addr; resumes when the last
  /// response flit arrives.
  sim::Process read(std::uint64_t addr, long long words,
                    sim::SimEvent& done);
  /// Writes `words` words; resumes on the MEM tile's ack.
  sim::Process write(std::uint64_t addr, long long words,
                     sim::SimEvent& done);

  /// True if the last completed transaction saw a poisoned response
  /// packet (clears the flag). Callers treat it as a transfer-level CRC
  /// failure and retry.
  bool consume_poisoned() {
    const bool was = poisoned_;
    poisoned_ = false;
    return was;
  }

 private:
  SocServices& services_;
  int tile_;
  std::uint64_t next_txn_ = 1;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------

class CpuTile {
 public:
  CpuTile(SocServices& services, int index);

  int index() const { return index_; }

  /// Awaitable register access from software coroutines. Writes complete
  /// when the target tile acknowledges (so ordering across tiles holds).
  struct RegAccess {
    CpuTile& cpu;
    int tile;
    std::uint32_t reg;
    std::uint64_t value;
    bool is_write;
    std::uint64_t result = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle);
    std::uint64_t await_resume() const noexcept { return result; }
  };

  RegAccess write_reg(int tile, std::uint32_t reg, std::uint64_t value) {
    return RegAccess{*this, tile, reg, value, true};
  }
  RegAccess read_reg(int tile, std::uint32_t reg) {
    return RegAccess{*this, tile, reg, 0, false};
  }

  /// Interrupt queue from one source tile. Entries are the packet payload.
  sim::Mailbox<std::uint64_t>& irq_from(int source_tile);

  std::uint64_t reg_ops() const { return reg_ops_; }
  /// Interrupt packets dropped because they arrived poisoned (the
  /// runtime's watchdogs recover the lost completion).
  std::uint64_t dropped_irqs() const { return dropped_irqs_; }
  /// Config-plane responses that arrived poisoned and were corrected by
  /// the link-level ECC (delivered, counted).
  std::uint64_t corrected_responses() const { return corrected_responses_; }

 private:
  friend struct RegAccess;
  struct Pending {
    std::coroutine_handle<> handle;
    std::uint64_t* result;
  };
  sim::Process response_server();
  sim::Process irq_server();

  SocServices& services_;
  int index_;
  std::uint64_t next_txn_ = 1;
  std::uint64_t reg_ops_ = 0;
  std::uint64_t dropped_irqs_ = 0;
  std::uint64_t corrected_responses_ = 0;
  std::map<std::uint64_t, Pending> pending_;
  std::map<int, std::unique_ptr<sim::Mailbox<std::uint64_t>>> irqs_;
};

// ---------------------------------------------------------------------------

class MemTile {
 public:
  MemTile(SocServices& services, int index);

  int index() const { return index_; }
  /// DMA transactions serviced by this controller.
  std::uint64_t requests() const { return requests_; }

 private:
  sim::Process dma_server();
  sim::Process config_server();

  SocServices& services_;
  int index_;
  std::uint64_t requests_ = 0;
};

// ---------------------------------------------------------------------------

class AuxTile {
 public:
  AuxTile(SocServices& services, Soc& soc, int index);

  std::uint64_t reconfigurations() const { return reconfigurations_; }
  /// Total bytes streamed through the ICAP.
  std::uint64_t icap_bytes() const { return icap_bytes_; }
  /// Reconfigurations aborted by the CRC check.
  std::uint64_t crc_errors() const { return crc_errors_; }
  /// Trigger writes ignored because the controller was busy. The runtime
  /// manager treats a dropped trigger as a retryable event (the ack
  /// payload reports the drop).
  std::uint64_t dropped_triggers() const { return dropped_triggers_; }
  /// DFXC resets issued by software (watchdog recovery).
  std::uint64_t resets() const { return resets_; }
  /// Injected ICAP stalls observed (wedged transfers).
  std::uint64_t icap_stalls() const { return icap_stalls_; }
  /// Split-transaction fetches staged (kRegDfxcFetch accepted + done).
  std::uint64_t fetches() const { return fetches_; }
  /// Program triggers that found their bitstream staged and skipped the
  /// DMA — the count of pipelined (fetch-overlapped) reconfigurations.
  std::uint64_t staged_hits() const { return staged_hits_; }
  /// Bitstreams currently held in the staging buffer.
  std::size_t staged_count() const { return staged_.size(); }

 private:
  sim::Process config_server();
  sim::Process reconfigure(std::uint64_t bs_addr, std::uint64_t bs_bytes,
                           int target);
  /// Split-transaction fetch: DMA + CRC into the staging buffer.
  sim::Process fetch(std::uint64_t bs_addr, std::uint64_t bs_bytes,
                     int target);
  /// Reads the target partition's frames back through the ICAP and
  /// compares against the golden image registered at bs_addr.
  sim::Process readback(std::uint64_t bs_addr, int target);

  /// A fetched-and-CRC-checked bitstream parked in the controller,
  /// keyed by target tile. Survives program-engine resets (retry reuses
  /// it); consumed by the successful program trigger.
  struct StagedBitstream {
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
  };

  SocServices& services_;
  Soc& soc_;
  int index_;
  DmaPort dma_;
  /// One DMA transaction outstanding per tile (the responses share one
  /// NoC mailbox), so the fetch engine and a legacy combined transfer
  /// serialize their DMA phases here. ICAP streaming happens outside the
  /// lock — that is the overlap the split transaction buys.
  sim::Semaphore dma_lock_;
  std::array<std::uint64_t, 32> regs_{};
  std::map<int, StagedBitstream> staged_;
  std::uint64_t reconfigurations_ = 0;
  std::uint64_t icap_bytes_ = 0;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t dropped_triggers_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t icap_stalls_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t staged_hits_ = 0;
  /// Bumped by kRegDfxcReset; in-flight transfers abort when they observe
  /// a newer epoch after resuming.
  std::uint64_t epoch_ = 0;
  /// Bumped by kRegDfxcFetchReset; independent so aborting one engine
  /// never kills the other's in-flight work.
  std::uint64_t fetch_epoch_ = 0;
  /// Wakes a wedged (stalled) transfer early on reset.
  std::unique_ptr<sim::Mailbox<int>> reset_box_;
};

// ---------------------------------------------------------------------------

class ReconfTile {
 public:
  ReconfTile(SocServices& services, int index, std::string partition);

  int index() const { return index_; }
  const std::string& partition() const { return partition_; }
  const std::string& module() const { return module_; }
  bool decoupled() const { return regs_[kRegDecouple] != 0; }

  /// Fabric-side module swap, invoked by the DFX controller at the end of
  /// a successful reconfiguration. Empty name = blank partition. Clears
  /// any SEU upset (the frames are rewritten) and aborts a hung run.
  void load_module(const std::string& name);

  /// The partition's configuration frames are upset (SEU). The wrapper
  /// rejects commands until the partition is rewritten; readback
  /// verification reports a mismatch. Exposed for tests/scrub drills.
  bool config_upset() const { return config_upset_; }
  void inject_seu();

  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t rejected_commands() const { return rejected_commands_; }
  /// Decouple asserted while the accelerator was running: a software
  /// sequencing hazard in normal operation (the runtime manager's tile
  /// lock prevents it), but also the deliberate first step of a forced
  /// repair of a hung accelerator.
  std::uint64_t unsafe_decouples() const { return unsafe_decouples_; }
  /// Decoupler releases dropped by an injected stuck-at fault.
  std::uint64_t stuck_decouples() const { return stuck_decouples_; }
  /// SEU upsets injected into this partition.
  std::uint64_t seu_upsets() const { return seu_upsets_; }
  /// Accelerator runs that wedged (done interrupt never raised).
  std::uint64_t hung_runs() const { return hung_runs_; }
  /// DMA transactions retried after poisoned response packets.
  std::uint64_t dma_retries() const { return dma_retries_; }
  long long busy_cycles() const { return busy_cycles_; }

 private:
  sim::Process config_server();
  sim::Process run_accelerator();

  SocServices& services_;
  int index_;
  std::string partition_;
  std::string module_;
  const AcceleratorSpec* spec_ = nullptr;
  DmaPort dma_;
  std::array<std::uint64_t, 32> regs_{};
  std::uint64_t invocations_ = 0;
  std::uint64_t rejected_commands_ = 0;
  std::uint64_t unsafe_decouples_ = 0;
  std::uint64_t stuck_decouples_ = 0;
  std::uint64_t seu_upsets_ = 0;
  std::uint64_t hung_runs_ = 0;
  std::uint64_t dma_retries_ = 0;
  long long busy_cycles_ = 0;
  bool config_upset_ = false;
  /// Bumped by load_module; a hung run aborts when its generation is
  /// superseded (the partition was rewritten underneath it).
  std::uint64_t generation_ = 0;
  /// Wakes a wedged datapath early when the partition is rewritten.
  std::unique_ptr<sim::Mailbox<int>> abort_box_;
};

}  // namespace presp::soc
