#include "soc/energy.hpp"

namespace presp::soc {

void EnergyMeter::settle() {
  const sim::Time now = kernel_->now();
  if (now > last_settle_) {
    configured_j_ += static_cast<double>(configured_luts_) *
                     c_.configured_w_per_lut *
                     seconds(static_cast<double>(now - last_settle_));
    last_settle_ = now;
  }
}

void EnergyMeter::on_configured_change(long long delta_luts) {
  settle();
  configured_luts_ += delta_luts;
}

void EnergyMeter::on_active(long long luts, long long cycles) {
  active_j_ += static_cast<double>(luts) * c_.active_w_per_lut *
               seconds(static_cast<double>(cycles));
}

void EnergyMeter::on_icap(long long cycles) {
  icap_j_ += c_.icap_w * seconds(static_cast<double>(cycles));
}

void EnergyMeter::on_noc_flits(std::uint64_t flits) {
  noc_j_ += static_cast<double>(flits) * c_.noc_j_per_flit;
}

void EnergyMeter::on_dram_words(long long words) {
  // One word streamed ~ one active DRAM cycle at words_per_cycle = 1.
  dram_j_ += static_cast<double>(words) *
             c_.dram_active_w_per_word_per_cycle * seconds(1.0);
}

void EnergyMeter::on_cpu_busy(long long cycles) {
  cpu_j_ += c_.cpu_active_w * seconds(static_cast<double>(cycles));
}

EnergyMeter::Breakdown EnergyMeter::breakdown() const {
  // settle() is conceptually const here: fold the pending configured-power
  // integral through a copy.
  EnergyMeter copy = *this;
  copy.settle();
  Breakdown b;
  b.baseline = c_.device_baseline_w *
               copy.seconds(static_cast<double>(kernel_->now()));
  b.configured = copy.configured_j_;
  b.active = copy.active_j_;
  b.icap = copy.icap_j_;
  b.noc = copy.noc_j_;
  b.dram = copy.dram_j_;
  b.cpu = copy.cpu_j_;
  return b;
}

double EnergyMeter::total_joules() const {
  const Breakdown b = breakdown();
  return b.baseline + b.configured + b.active + b.icap + b.noc + b.dram +
         b.cpu;
}

}  // namespace presp::soc
