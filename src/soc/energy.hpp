// SoC power/energy accounting for the Fig. 4 experiment.
//
// Components (all per-cycle, integrated over simulated time):
//   - device baseline: leakage + always-on clocking of the static part;
//   - configured-region clock load: reconfigurable partitions are clocked
//     whenever a (non-blank) module is configured, whether or not it runs
//     (the PR-ESP decoupler detaches interfaces but does not gate the
//     partition clock);
//   - accelerator switching power while a module actively computes;
//   - ICAP power while reconfiguration frames stream;
//   - NoC per-flit transport energy;
//   - CPU + DDR activity.
//
// Constants are calibrated so the three WAMI SoCs reproduce the paper's
// Fig. 4 ordering and ratios (SoC_X best J/frame, worst latency; SoC_Z the
// reverse); absolute watts are representative of a Virtex-7 embedded
// design, not measured silicon.
#pragma once

#include <cstdint>

#include "sim/kernel.hpp"

namespace presp::soc {

struct PowerConstants {
  double clock_mhz = 78.0;
  double device_baseline_w = 0.25;
  /// Per configured partition LUT (clock tree + idle switching).
  double configured_w_per_lut = 90e-6;
  /// Additional per LUT while a module actively computes.
  double active_w_per_lut = 30e-6;
  double icap_w = 0.45;
  double noc_j_per_flit = 0.9e-9;
  double cpu_active_w = 0.3;
  double dram_active_w_per_word_per_cycle = 1.1e-3;
};

class EnergyMeter {
 public:
  EnergyMeter(sim::Kernel& kernel, PowerConstants constants = {})
      : kernel_(&kernel), c_(constants) {}

  const PowerConstants& constants() const { return c_; }

  /// Partition configured-LUT load changes (module loaded/cleared).
  void on_configured_change(long long delta_luts);
  /// An accelerator computed for `cycles` with `luts` active.
  void on_active(long long luts, long long cycles);
  void on_icap(long long cycles);
  void on_noc_flits(std::uint64_t flits);
  void on_dram_words(long long words);
  void on_cpu_busy(long long cycles);

  /// Total energy in joules up to the kernel's current time.
  double total_joules() const;

  struct Breakdown {
    double baseline = 0.0;
    double configured = 0.0;
    double active = 0.0;
    double icap = 0.0;
    double noc = 0.0;
    double dram = 0.0;
    double cpu = 0.0;
  };
  Breakdown breakdown() const;

 private:
  double seconds(double cycles) const {
    return cycles / (c_.clock_mhz * 1e6);
  }
  /// Folds the configured-power integral up to now.
  void settle();

  sim::Kernel* kernel_;
  PowerConstants c_;
  long long configured_luts_ = 0;
  sim::Time last_settle_ = 0;
  double configured_j_ = 0.0;
  double active_j_ = 0.0;
  double icap_j_ = 0.0;
  double noc_j_ = 0.0;
  double dram_j_ = 0.0;
  double cpu_j_ = 0.0;
};

}  // namespace presp::soc
