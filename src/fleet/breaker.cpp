#include "fleet/breaker.hpp"

#include <algorithm>

namespace presp::fleet {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::transition(BreakerState to, sim::Time now) {
  const BreakerState from = state_;
  if (from == to) return;
  state_ = to;
  ++transitions_;
  if (listener_) listener_(from, to, now);
}

long long CircuitBreaker::backoff_cycles() {
  const int shift = std::min(std::max(open_streak_ - 1, 0), 16);
  long long d = options_.open_base_cycles << shift;
  d = std::min(d, options_.open_max_cycles);
  if (options_.jitter <= 0.0 || d <= 0 || rng_ == nullptr) return d;
  const double fraction = std::min(options_.jitter, 1.0);
  const auto span = static_cast<long long>(fraction * static_cast<double>(d));
  if (span <= 0) return d;
  return d - span +
         static_cast<long long>(rng_->next_below(
             static_cast<std::uint64_t>(span) + 1));
}

void CircuitBreaker::open(sim::Time now) {
  ++open_streak_;
  reopen_at_ = now + static_cast<sim::Time>(backoff_cycles());
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  outcome_bits_ = 0;
  outcome_count_ = 0;
  outcome_head_ = 0;
  failures_in_window_ = 0;
  transition(BreakerState::kOpen, now);
}

bool CircuitBreaker::allow(sim::Time now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < reopen_at_) return false;
      transition(BreakerState::kHalfOpen, now);
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success(sim::Time now) {
  if (state_ == BreakerState::kHalfOpen) {
    probes_in_flight_ = std::max(probes_in_flight_ - 1, 0);
    if (++probe_successes_ >= options_.half_open_probes) {
      open_streak_ = 0;
      transition(BreakerState::kClosed, now);
    }
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // stale completion
  // Closed: slide the window.
  const std::uint64_t mask = 1ull << outcome_head_;
  if (outcome_count_ == options_.window && (outcome_bits_ & mask))
    --failures_in_window_;
  outcome_bits_ &= ~mask;
  outcome_head_ = (outcome_head_ + 1) % options_.window;
  outcome_count_ = std::min(outcome_count_ + 1, options_.window);
}

void CircuitBreaker::record_failure(sim::Time now) {
  if (state_ == BreakerState::kHalfOpen) {
    // A probe failed: the dependency is still sick; back off harder.
    open(now);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // stale completion
  const std::uint64_t mask = 1ull << outcome_head_;
  if (outcome_count_ == options_.window && (outcome_bits_ & mask))
    --failures_in_window_;
  outcome_bits_ |= mask;
  ++failures_in_window_;
  outcome_head_ = (outcome_head_ + 1) % options_.window;
  outcome_count_ = std::min(outcome_count_ + 1, options_.window);
  if (outcome_count_ >= options_.window &&
      static_cast<double>(failures_in_window_) >=
          options_.failure_threshold * static_cast<double>(options_.window)) {
    open(now);
  }
}

void CircuitBreaker::abandon() {
  if (state_ == BreakerState::kHalfOpen)
    probes_in_flight_ = std::max(probes_in_flight_ - 1, 0);
}

void CircuitBreaker::force_open(sim::Time now) {
  if (state_ == BreakerState::kOpen) {
    // Already open: extend the streak so the backoff keeps growing.
    ++open_streak_;
    reopen_at_ = now + static_cast<sim::Time>(backoff_cycles());
    return;
  }
  open(now);
}

}  // namespace presp::fleet
