#include "fleet/load.hpp"

#include "util/error.hpp"

namespace presp::fleet {

SyntheticLoad::SyntheticLoad(LoadOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  PRESP_REQUIRE(!options_.modules.empty(),
                "synthetic load needs at least one module");
  PRESP_REQUIRE(options_.arrivals_per_quantum >= 0.0,
                "negative arrival rate");
  PRESP_REQUIRE(options_.tenants >= 1, "need at least one tenant");
  PRESP_REQUIRE(options_.min_items >= 1 &&
                    options_.max_items >= options_.min_items,
                "bad item range");
}

QosClass SyntheticLoad::pick_class() {
  const double total = options_.mix_realtime + options_.mix_standard +
                       options_.mix_besteffort;
  double pick = rng_.next_double() * total;
  if (pick < options_.mix_realtime) return QosClass::kRealtime;
  pick -= options_.mix_realtime;
  if (pick < options_.mix_standard) return QosClass::kStandard;
  return QosClass::kBestEffort;
}

std::vector<FleetRequest> SyntheticLoad::generate(
    sim::Time now, int burst_multiplier, fault::FaultInjector* injector) {
  if (injector != nullptr && burst_remaining_ == 0 &&
      injector->on_burst_overload(-1)) {
    burst_remaining_ = options_.burst_quanta;
  }
  double expected = options_.arrivals_per_quantum;
  if (burst_remaining_ > 0) {
    expected *= static_cast<double>(burst_multiplier);
    --burst_remaining_;
  }
  // Stochastic rounding: E[floor(x + U)] = x, so the long-run rate is
  // exact while the per-quantum count varies with the seeded draw.
  const auto count = static_cast<int>(expected + rng_.next_double());

  std::vector<FleetRequest> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FleetRequest req;
    req.id = ++next_id_;
    req.tenant = static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(options_.tenants)));
    req.cls = pick_class();
    req.module = options_.modules[static_cast<std::size_t>(
        rng_.next_below(options_.modules.size()))];
    const auto span =
        static_cast<std::uint64_t>(options_.max_items - options_.min_items);
    req.items = options_.min_items +
                static_cast<long long>(rng_.next_below(span + 1));
    req.submitted_at = now;
    batch.push_back(std::move(req));
  }
  return batch;
}

}  // namespace presp::fleet
