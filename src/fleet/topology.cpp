#include "fleet/topology.hpp"

#include <sstream>

#include "util/error.hpp"

namespace presp::fleet {

const char* to_string(QosClass cls) {
  switch (cls) {
    case QosClass::kRealtime: return "realtime";
    case QosClass::kStandard: return "standard";
    case QosClass::kBestEffort: return "besteffort";
  }
  return "?";
}

const char* to_string(FleetError error) {
  switch (error) {
    case FleetError::kNone: return "none";
    case FleetError::kThrottled: return "throttled";
    case FleetError::kTenantThrottled: return "tenant-throttled";
    case FleetError::kQueueFull: return "queue-full";
    case FleetError::kDeadlineShed: return "deadline-shed";
    case FleetError::kSaturated: return "saturated";
    case FleetError::kShardUnavailable: return "shard-unavailable";
    case FleetError::kExecFailed: return "exec-failed";
  }
  return "?";
}

namespace {

/// Parses "w, tokens, burst, bound, deadline"; missing trailing fields
/// keep the defaults already in `params`.
void parse_class(const std::string& text, QosClassParams& params) {
  std::istringstream in(text);
  std::string field;
  int index = 0;
  while (std::getline(in, field, ',') && index < 5) {
    try {
      switch (index) {
        case 0: params.weight = std::stod(field); break;
        case 1: params.tokens_per_quantum = std::stod(field); break;
        case 2: params.burst = std::stod(field); break;
        case 3: params.queue_bound = std::stoi(field); break;
        case 4: params.deadline_quanta = std::stoll(field); break;
      }
    } catch (const std::exception&) {
      throw ConfigError("malformed QoS class field '" + field + "'");
    }
    ++index;
  }
}

}  // namespace

FleetTopology FleetTopology::from_config(const Config& config) {
  FleetTopology topo;
  const std::string s = "fleet";
  topo.shards = static_cast<int>(config.get_int_or(s, "shards", topo.shards));
  topo.quantum_cycles =
      config.get_int_or(s, "quantum_cycles", topo.quantum_cycles);
  topo.coalesce_limit = static_cast<int>(
      config.get_int_or(s, "coalesce_limit", topo.coalesce_limit));
  topo.service_estimate_cycles = config.get_int_or(
      s, "service_estimate_cycles", topo.service_estimate_cycles);
  topo.fallback_latency_cycles = config.get_int_or(
      s, "fallback_latency_cycles", topo.fallback_latency_cycles);
  topo.stall_cycles = config.get_int_or(s, "stall_cycles", topo.stall_cycles);
  topo.burst_multiplier = static_cast<int>(
      config.get_int_or(s, "burst_multiplier", topo.burst_multiplier));
  if (config.has(s, "tenant_tokens_per_quantum"))
    topo.tenant_tokens_per_quantum =
        config.get_double(s, "tenant_tokens_per_quantum");
  if (config.has(s, "tenant_burst"))
    topo.tenant_burst = config.get_double(s, "tenant_burst");
  for (int c = 0; c < kNumQosClasses; ++c) {
    const std::string key =
        std::string("class_") + to_string(static_cast<QosClass>(c));
    if (config.has(s, key)) parse_class(config.get(s, key), topo.classes[c]);
  }
  topo.repack = config.get_int_or(s, "repack", topo.repack ? 1 : 0) != 0;
  topo.repack_interval_cycles = config.get_int_or(
      s, "repack_interval_cycles", topo.repack_interval_cycles);
  if (config.has(s, "repack_frag_threshold"))
    topo.repack_frag_threshold = config.get_double(s, "repack_frag_threshold");
  topo.repack_max_migrations = static_cast<int>(config.get_int_or(
      s, "repack_max_migrations", topo.repack_max_migrations));
  topo.repack_migration_budget = static_cast<int>(config.get_int_or(
      s, "repack_migration_budget", topo.repack_migration_budget));
  if (config.has(s, "breaker_failure_threshold"))
    topo.breaker.failure_threshold =
        config.get_double(s, "breaker_failure_threshold");
  topo.breaker.window = static_cast<int>(
      config.get_int_or(s, "breaker_window", topo.breaker.window));
  topo.breaker.open_base_cycles = config.get_int_or(
      s, "breaker_open_base_cycles", topo.breaker.open_base_cycles);
  topo.breaker.open_max_cycles = config.get_int_or(
      s, "breaker_open_max_cycles", topo.breaker.open_max_cycles);
  topo.breaker.half_open_probes = static_cast<int>(config.get_int_or(
      s, "breaker_half_open_probes", topo.breaker.half_open_probes));
  return topo;
}

void FleetTopology::validate() const {
  PRESP_REQUIRE(shards >= 1, "fleet needs at least one shard");
  PRESP_REQUIRE(quantum_cycles > 0, "fleet quantum must be positive");
  PRESP_REQUIRE(coalesce_limit >= 0, "negative coalesce limit");
  double weight_sum = 0.0;
  for (const QosClassParams& cls : classes) {
    PRESP_REQUIRE(cls.weight >= 0.0, "negative QoS class weight");
    PRESP_REQUIRE(cls.queue_bound > 0, "QoS queue bound must be positive");
    PRESP_REQUIRE(cls.deadline_quanta > 0, "QoS deadline must be positive");
    weight_sum += cls.weight;
  }
  PRESP_REQUIRE(weight_sum > 0.0, "QoS class weights sum to zero");
  PRESP_REQUIRE(tenant_tokens_per_quantum >= 0.0,
                "negative tenant token rate");
  PRESP_REQUIRE(tenant_tokens_per_quantum == 0.0 || tenant_burst >= 1.0,
                "tenant bucket burst must admit at least one request");
  PRESP_REQUIRE(
      breaker.failure_threshold > 0.0 && breaker.failure_threshold <= 1.0,
      "breaker failure threshold must be in (0, 1]");
  PRESP_REQUIRE(breaker.window >= 1 && breaker.window <= 64,
                "breaker window must be in [1, 64]");
  PRESP_REQUIRE(breaker.open_base_cycles > 0 &&
                    breaker.open_max_cycles >= breaker.open_base_cycles,
                "breaker backoff interval is empty");
  PRESP_REQUIRE(breaker.half_open_probes >= 1,
                "breaker needs at least one half-open probe");
  if (repack) {
    PRESP_REQUIRE(repack_interval_cycles > 0,
                  "repack interval must be positive");
    PRESP_REQUIRE(repack_frag_threshold >= 0.0 && repack_frag_threshold < 1.0,
                  "repack fragmentation threshold must be in [0, 1)");
    PRESP_REQUIRE(repack_max_migrations >= 1,
                  "repack needs at least one migration per pass");
    PRESP_REQUIRE(repack_migration_budget >= 1,
                  "repack needs a positive migration budget");
  }
}

}  // namespace presp::fleet
