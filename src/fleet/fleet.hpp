// Fleet-scale DPR service (DESIGN.md §13).
//
// A FleetManager shards tenant reconfiguration requests across N
// independent SoC instances, each driven by its own runtime
// ReconfigurationManager. Every Soc owns its own sim::Kernel, so the
// fleet advances them in lock-step quanta under one fleet clock:
//
//   per quantum:
//     1. arrivals    — the driver submits FleetRequests (open loop);
//     2. admission   — per-class token buckets + bounded queues; typed
//                      sheds (never silent drops); best-effort requests
//                      degrade to the software-fallback path instead;
//     3. dispatch    — deficit-weighted round-robin over the classes;
//                      reject-early deadline shedding; same-module
//                      coalescing; shard/tile routing gated by circuit
//                      breakers;
//     4. advance     — each non-stalled shard's kernel runs to the fleet
//                      clock (a stall-injected shard freezes, modeling a
//                      control-plane wedge the dispatcher cannot see);
//     5. reap        — completed requests are retired, coalesced
//                      followers fan out onto the still-warm tile,
//                      breakers ingest successes/failures/lateness.
//
// Everything outside the shard kernels runs in host code on one thread
// between quanta, and every random draw comes from one seeded stream —
// the whole fleet replays bit-identically (digest() is the proof the
// tests and bench_fleet diff).
//
// The breakers are the overload backpressure path: a stalled or sick
// shard stops completing work, its in-flight requests age past their
// deadlines, the failure window fills, the breaker opens and new traffic
// routes to healthy shards until a jittered-backoff half-open probe
// succeeds. Tile breakers layer on TileHealthRegistry transitions
// (quarantine trips them open; their half-open probe is what re-admits
// the tile via ReconfigurationManager::rehabilitate).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fleet/breaker.hpp"
#include "fleet/topology.hpp"
#include "fleet/types.hpp"
#include "floorplan/dynamic.hpp"
#include "runtime/api.hpp"
#include "runtime/health.hpp"
#include "runtime/repacker.hpp"
#include "soc/soc.hpp"

namespace presp::fleet {

/// Point-in-time copy of everything the ops plane's /health endpoint and
/// SSE pump publish about a fleet: taken under the manager's observer
/// mutex so a server worker can read a consistent state while the driver
/// thread keeps stepping quanta. All time is the fleet's *virtual* clock,
/// so taking a snapshot (an uncontended host-side lock) cannot perturb
/// the simulated run.
struct FleetOpsSnapshot {
  sim::Time now = 0;
  FleetStats stats;
  struct ShardState {
    BreakerState breaker = BreakerState::kClosed;
    int inflight = 0;
    std::map<int, BreakerState> tile_breakers;
    std::map<int, runtime::TileHealth> tile_health;
  };
  std::vector<ShardState> shards;
  /// Requests waiting in each class admission queue.
  std::size_t queued[kNumQosClasses] = {};
  /// Current tenant-bucket fills (empty while tenant throttling is off).
  std::map<int, double> tenant_tokens;
};

class FleetManager {
 public:
  /// Builds `topology.shards` identical SoC instances from `config` and
  /// `registry` (both must outlive the manager; the topology is copied
  /// and validated). `injector` is optional chaos: it is attached to
  /// every shard's hardware hooks and consulted for the fleet-level
  /// sites (kShardStall via step(), kBurstOverload by SyntheticLoad).
  /// `manager_options` seeds every shard's ReconfigurationManager (the
  /// per-shard backoff seed is decorrelated by shard index).
  FleetManager(FleetTopology topology, const netlist::SocConfig& config,
               const soc::AcceleratorRegistry& registry,
               std::uint64_t seed = 1,
               fault::FaultInjector* injector = nullptr,
               runtime::ManagerOptions manager_options = {});
  ~FleetManager();
  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  /// Registers a partial bitstream for `module` on every reconfigurable
  /// tile of every shard.
  void add_module(const std::string& module, std::size_t bytes);

  /// Admits or sheds one request at the current fleet time. Admission is
  /// synchronous: a shed is recorded (typed) before this returns; an
  /// admitted request is queued for dispatch.
  void submit(FleetRequest request);

  /// Load generators report burst-window arrivals here — the fleet
  /// cannot tell an organic spike from an injected one on its own.
  void note_burst_arrivals(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    stats_.burst_arrivals += n;
  }

  /// Advances the fleet by one scheduling quantum.
  void step();
  void run_quanta(int quanta);
  /// Steps without new arrivals until idle() or `max_quanta` is hit;
  /// leftover queued work is shed kSaturated (typed, conserved). Returns
  /// true if fully idle.
  bool drain(int max_quanta);

  /// No queued, in-flight or pending-fallback work.
  bool idle() const;

  sim::Time now() const { return now_; }
  const FleetTopology& topology() const { return topology_; }
  const FleetStats& stats() const { return stats_; }
  /// Terminal outcome of every request, in retirement order.
  const std::vector<FleetOutcome>& outcomes() const { return outcomes_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  runtime::ReconfigurationManager& manager(int shard);
  /// Per-shard defragmentation state; null while `[fleet] repack` is off.
  const runtime::Repacker* repacker(int shard) const;
  const floorplan::DynamicFloorplan* dynamic_floorplan(int shard) const;
  BreakerState shard_breaker(int shard) const;
  BreakerState tile_breaker(int shard, int tile) const;
  /// Requests currently executing on a shard.
  int inflight(int shard) const;

  /// Stable one-line summary for determinism diffs.
  std::string digest() const;

  /// Consistent observer copy for the ops plane. Safe to call from a
  /// server worker while the driver thread steps the fleet; the manager
  /// itself remains single-driver by contract (the observer mutex
  /// serializes readers against the driver, not drivers against each
  /// other). Lock order: ops mutex, then each shard's health mutex.
  FleetOpsSnapshot ops_snapshot() const;

 private:
  struct ClassQueue {
    std::deque<FleetRequest> queue;
    double tokens = 0.0;
    double deficit = 0.0;
  };
  struct Inflight {
    FleetRequest request;
    int shard = -1;
    int tile = -1;
    std::unique_ptr<runtime::Completion> completion;
    /// Same-module requests riding this reconfiguration.
    std::vector<FleetRequest> followers;
    /// Set once the entry ages past its deadline while executing. While
    /// late it feeds the shard breaker one failure per quantum (sustained
    /// no-progress is what opens the breaker under a shard stall) and
    /// stops accepting coalesced followers.
    bool late = false;
    /// Fan-out of a coalesced leader (module already resident).
    bool coalesced = false;
  };
  struct Shard {
    std::unique_ptr<soc::Soc> soc;
    std::unique_ptr<runtime::BitstreamStore> store;
    std::unique_ptr<runtime::ReconfigurationManager> manager;
    std::unique_ptr<CircuitBreaker> breaker;
    std::map<int, std::unique_ptr<CircuitBreaker>> tile_breakers;
    std::vector<int> tiles;  // reconfigurable tile grid indices
    std::uint64_t buffer = 0;
    sim::Time stalled_until = 0;
    int inflight = 0;
    /// Online-defrag state (only with `[fleet] repack`): a live region
    /// map of the shard's fabric plus its background repacker. The
    /// repacker's loop runs inside the shard kernel, so the lock-step
    /// quanta drive defragmentation deterministically.
    std::unique_ptr<floorplan::DynamicFloorplan> plan;
    std::unique_ptr<runtime::Repacker> repacker;
  };
  struct PendingFallback {
    FleetRequest request;
    sim::Time due = 0;
  };

  struct TenantBucket {
    double tokens = 0.0;
    sim::Time last_refill = 0;
  };

  void admit(FleetRequest request);
  /// Takes one token from `tenant`'s bucket (lazily refilled from the
  /// elapsed virtual time). Always true while tenant throttling is off.
  bool take_tenant_token(int tenant);
  void dispatch_pass();
  /// True if the request was dispatched (or coalesced/shed); false if it
  /// should stay queued.
  bool try_dispatch(FleetRequest& request);
  bool try_coalesce(const FleetRequest& request);
  /// Routes to (shard, tile) through the breakers; tile >= 0 pins the
  /// tile (coalesced fan-out). Returns false if nothing allowed it.
  bool route(const std::string& module, int* out_shard, int* out_tile);
  void start_run(int shard, int tile, FleetRequest request, bool coalesced);
  void advance_shards();
  void reap();
  void retire(const Inflight& entry, runtime::RequestStatus status);
  void shed(const FleetRequest& request, FleetError error);
  /// Best-effort graceful degradation; other classes shed hard.
  void shed_or_fallback(const FleetRequest& request, FleetError error);
  void complete(const FleetRequest& request, OutcomeKind kind, int shard);
  sim::Time deadline_for(const FleetRequest& request) const;
  CircuitBreaker& tile_breaker_ref(Shard& shard, int tile);
  void wire_breaker_trace(CircuitBreaker& breaker, int shard, int tile);

  FleetTopology topology_;
  /// Device model the per-shard dynamic floorplans are built over
  /// (resolved from the SoC config's device name).
  fabric::Device device_;
  fault::FaultInjector* injector_;
  Rng rng_;
  sim::Time now_ = 0;
  FleetStats stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ClassQueue classes_[kNumQosClasses];
  std::map<int, TenantBucket> tenants_;
  std::vector<std::unique_ptr<Inflight>> inflight_;
  std::vector<PendingFallback> fallbacks_;
  std::vector<FleetOutcome> outcomes_;
  int next_shard_rr_ = 0;
  /// Serializes ops-plane observers (ops_snapshot) against the driver
  /// thread's mutations. Held across each submit()/step() body, so an
  /// observer only ever sees quantum boundaries.
  mutable std::mutex ops_mutex_;
};

}  // namespace presp::fleet
