// Shared vocabulary of the fleet layer: QoS classes, typed rejection
// errors, the client request record and the fleet-wide stats block.
//
// The invariants the whole layer is built around (asserted by
// FleetManager::check_invariants and the tier-1 fleet stage):
//
//   submitted == completed_ok + completed_fallback + completed_failed
//                + shed_total            (no request is ever silently lost)
//   shed_total == sum of the per-reason shed counters
//                                        (every shed carries a typed error)
#pragma once

#include <cstdint>
#include <string>

#include "sim/kernel.hpp"

namespace presp::fleet {

/// Service classes, strictest first. Indices are dense: used to address
/// per-class queues, buckets and stats.
enum class QosClass : std::uint8_t { kRealtime = 0, kStandard, kBestEffort };
inline constexpr int kNumQosClasses = 3;

const char* to_string(QosClass cls);

/// Typed rejection reasons. Shedding is always explicit: a request that
/// is not completed carries exactly one of these.
enum class FleetError : std::uint8_t {
  kNone = 0,
  /// The class token bucket stayed empty past the request's deadline.
  kThrottled,
  /// The submitting tenant's own token bucket was empty at submit time
  /// (tenant-level throttling, distinct from the class-limit kThrottled).
  kTenantThrottled,
  /// The class admission queue was full at submit time.
  kQueueFull,
  /// Reject-early: the deadline cannot be met even if dispatched now.
  kDeadlineShed,
  /// Every shard was saturated (or the soak drained with work queued).
  kSaturated,
  /// No shard/tile passed its circuit breaker for this request.
  kShardUnavailable,
  /// Dispatched, but the runtime reported a terminal failure.
  kExecFailed,
};
inline constexpr int kNumFleetErrors = 8;

const char* to_string(FleetError error);

/// Per-class admission parameters (one row of FleetTopology::classes).
struct QosClassParams {
  /// Dispatch weight for the deficit round-robin across classes.
  double weight = 1.0;
  /// Token-bucket refill, tokens per scheduling quantum (1 token = 1
  /// request). Fractions accumulate.
  double tokens_per_quantum = 1.0;
  /// Token-bucket capacity (burst allowance).
  double burst = 8.0;
  /// Bounded admission queue depth; submits beyond it shed kQueueFull.
  int queue_bound = 32;
  /// Relative deadline assigned to requests of this class, in quanta.
  long long deadline_quanta = 100;
};

/// One tenant request for an accelerator swap + run.
struct FleetRequest {
  std::uint64_t id = 0;
  int tenant = 0;
  QosClass cls = QosClass::kStandard;
  std::string module;
  long long items = 256;
  /// Absolute fleet-clock deadline (cycles).
  sim::Time deadline = 0;
  /// Fleet-clock submit time (cycles).
  sim::Time submitted_at = 0;
};

/// Terminal disposition of one request.
enum class OutcomeKind : std::uint8_t {
  kOk = 0,          // ran on fabric, completed
  kCoalescedOk,     // completed by fanning out a coalesced leader's work
  kFallback,        // best-effort software path (graceful degradation)
  kFailed,          // dispatched but the runtime failed it (kExecFailed)
  kShed,            // rejected with a typed FleetError before dispatch
};

struct FleetOutcome {
  std::uint64_t request_id = 0;
  QosClass cls = QosClass::kStandard;
  OutcomeKind kind = OutcomeKind::kOk;
  FleetError error = FleetError::kNone;
  /// Shard the request ran on (-1 for shed/fallback outcomes).
  int shard = -1;
  /// Fleet-clock completion time (cycles).
  sim::Time completed_at = 0;
  /// submit -> completion, fleet clock (0 for sheds).
  sim::Time latency = 0;
  bool deadline_met = false;
};

struct FleetStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_fallback = 0;
  std::uint64_t completed_failed = 0;
  std::uint64_t shed_total = 0;
  /// Indexed by FleetError (kNone slot stays 0).
  std::uint64_t shed_by_reason[kNumFleetErrors] = {};
  /// Requests that piggybacked on another tenant's reconfiguration.
  std::uint64_t coalesced = 0;
  /// Coalesced followers whose leader failed and who were re-queued.
  std::uint64_t coalesce_requeues = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  /// Half-open probes that re-opened a breaker.
  std::uint64_t breaker_reopens = 0;
  /// Quanta during which at least one shard was stall-injected.
  std::uint64_t stall_quanta = 0;
  std::uint64_t burst_arrivals = 0;
  /// Tile rehabilitations requested by half-open tile breakers.
  std::uint64_t probe_rehabilitations = 0;

  std::uint64_t completed() const {
    return completed_ok + completed_fallback + completed_failed;
  }
  /// Zero requests lost: every submit has a terminal outcome.
  bool conserved() const {
    return submitted == completed() + shed_total;
  }
  /// Every shed carries a reason.
  bool sheds_explained() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : shed_by_reason) sum += n;
    return sum == shed_total;
  }
};

}  // namespace presp::fleet
