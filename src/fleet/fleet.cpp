#include "fleet/fleet.hpp"

#include <algorithm>
#include <sstream>

#include "racecheck/annot.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace presp::fleet {

namespace {
constexpr std::size_t kShardBufferBytes = 1 << 16;
constexpr std::size_t kBlankBitstreamBytes = 120'000;

trace::Counter& counter(const char* name) {
  return trace::MetricsRegistry::global().counter(name);
}

fabric::Device device_for(const std::string& name) {
  if (name == "vcu118") return fabric::Device::vcu118();
  if (name == "vcu128") return fabric::Device::vcu128();
  return fabric::Device::vc707();
}

/// Starting columns of every non-overlapping CLB column pair: the
/// relocation slots the shard floorplans place (and repack) full-height
/// width-2 regions on. Pair regions keep footprint signatures trivially
/// compatible across slots.
std::vector<int> clb_pair_slots(const fabric::Device& device) {
  std::vector<int> slots;
  int col = 0;
  while (col + 1 < device.num_columns()) {
    if (device.column_type(col) == fabric::ColumnType::kClb &&
        device.column_type(col + 1) == fabric::ColumnType::kClb) {
      slots.push_back(col);
      col += 2;
    } else {
      ++col;
    }
  }
  return slots;
}
}  // namespace

FleetManager::FleetManager(FleetTopology topology,
                           const netlist::SocConfig& config,
                           const soc::AcceleratorRegistry& registry,
                           std::uint64_t seed,
                           fault::FaultInjector* injector,
                           runtime::ManagerOptions manager_options)
    : topology_(std::move(topology)), device_(device_for(config.device)),
      injector_(injector), rng_(seed) {
  topology_.validate();
  shards_.reserve(static_cast<std::size_t>(topology_.shards));
  for (int s = 0; s < topology_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->soc = std::make_unique<soc::Soc>(config, registry);
    shard->store = std::make_unique<runtime::BitstreamStore>(
        shard->soc->memory());
    runtime::ManagerOptions shard_options = manager_options;
    // Decorrelate the shards' retry-jitter streams deterministically.
    shard_options.backoff_seed += static_cast<std::uint64_t>(s);
    shard->manager = std::make_unique<runtime::ReconfigurationManager>(
        *shard->soc, *shard->store, shard_options);
    if (injector_ != nullptr) shard->soc->set_fault_injector(injector_);
    for (const auto& tile : shard->soc->reconf_tiles()) {
      shard->tiles.push_back(tile->index());
      shard->store->add_blank(tile->index(), kBlankBitstreamBytes);
    }
    PRESP_REQUIRE(!shard->tiles.empty(),
                  "fleet shards need at least one reconfigurable tile");
    shard->buffer =
        shard->soc->memory().allocate("fleet_buf", kShardBufferBytes);
    shard->breaker =
        std::make_unique<CircuitBreaker>(topology_.breaker, &rng_);
    wire_breaker_trace(*shard->breaker, s, -1);
    // Quarantine decisions made deep inside the runtime surface here via
    // the health listener and trip the tile breaker open, so routing
    // reacts in the same quantum.
    shard->manager->health().set_listener(
        [this, s](int tile, runtime::TileHealth /*from*/,
                  runtime::TileHealth to) {
          if (to != runtime::TileHealth::kQuarantined) return;
          tile_breaker_ref(*shards_[static_cast<std::size_t>(s)], tile)
              .force_open(now_);
          trace::sim_instant(trace::Category::kFleet, "fleet.quarantine",
                             now_, trace::kTrackFleet,
                             static_cast<double>(tile));
        });
    if (topology_.repack) {
      // Live region map: each reconfigurable tile holds a full-height
      // width-2 CLB region, spread across the die the way a static
      // floorplan scatters pblocks. The repacker compacts them toward
      // the left edge while the fleet keeps serving.
      shard->plan = std::make_unique<floorplan::DynamicFloorplan>(device_);
      const std::vector<int> slots = clb_pair_slots(device_);
      const int tiles = static_cast<int>(shard->tiles.size());
      PRESP_REQUIRE(static_cast<int>(slots.size()) > tiles,
                    "device too small for per-tile relocation slots");
      for (int k = 0; k < tiles; ++k) {
        const auto slot = static_cast<std::size_t>(
            (static_cast<long long>(k + 1) *
             static_cast<long long>(slots.size())) /
            (tiles + 1));
        const int col = slots[std::min(slot, slots.size() - 1)];
        shard->plan->claim(shard->tiles[static_cast<std::size_t>(k)],
                           fabric::Pblock{col, col + 1, 0,
                                          device_.region_rows() - 1});
      }
      runtime::RepackerOptions repack_options;
      repack_options.interval_cycles = topology_.repack_interval_cycles;
      repack_options.frag_threshold = topology_.repack_frag_threshold;
      repack_options.max_migrations_per_pass = topology_.repack_max_migrations;
      repack_options.migration_budget = topology_.repack_migration_budget;
      repack_options.metrics_prefix =
          "fleet.shard" + std::to_string(s) + ".floorplan";
      shard->repacker = std::make_unique<runtime::Repacker>(
          *shard->soc, *shard->manager, *shard->plan, repack_options);
      if (injector_ != nullptr) shard->repacker->set_fault_injector(injector_);
      shard->plan->publish_metrics(repack_options.metrics_prefix);
      // Detached coroutine on the shard kernel: the lock-step advance in
      // step() is what wakes it each interval.
      shard->repacker->process();
    }
    shards_.push_back(std::move(shard));
  }
}

FleetManager::~FleetManager() {
  // In-flight completions must outlive the coroutines parked on them, so
  // drop them before the shard kernels; detach the (caller-owned)
  // injector while we are at it.
  inflight_.clear();
  for (auto& shard : shards_) {
    shard->soc->set_fault_injector(nullptr);
    if (shard->repacker) {
      shard->repacker->stop();
      shard->repacker->set_fault_injector(nullptr);
    }
  }
}

const runtime::Repacker* FleetManager::repacker(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->repacker.get();
}

const floorplan::DynamicFloorplan* FleetManager::dynamic_floorplan(
    int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->plan.get();
}

void FleetManager::wire_breaker_trace(CircuitBreaker& breaker, int shard,
                                      int tile) {
  breaker.set_listener([this, shard, tile](BreakerState from, BreakerState to,
                                           sim::Time at) {
    switch (to) {
      case BreakerState::kOpen:
        if (from == BreakerState::kHalfOpen) {
          ++stats_.breaker_reopens;
        } else {
          ++stats_.breaker_opens;
        }
        break;
      case BreakerState::kHalfOpen:
        ++stats_.breaker_half_opens;
        if (tile >= 0) {
          // The half-open probe is the tile's re-admission path: the
          // runtime reconfigures it from scratch and it must earn
          // healthy status back (or fail the probe and re-open).
          shards_[static_cast<std::size_t>(shard)]->manager->rehabilitate(
              tile);
          ++stats_.probe_rehabilitations;
        }
        break;
      case BreakerState::kClosed:
        ++stats_.breaker_closes;
        break;
    }
    counter("fleet.breaker_transitions").add();
    std::ostringstream name;
    name << "fleet.breaker shard=" << shard;
    if (tile >= 0) name << " tile=" << tile;
    name << ' ' << to_string(from) << "->" << to_string(to);
    trace::sim_instant(trace::Category::kFleet, name.str(), at,
                       trace::kTrackFleet, static_cast<double>(shard));
  });
}

CircuitBreaker& FleetManager::tile_breaker_ref(Shard& shard, int tile) {
  auto it = shard.tile_breakers.find(tile);
  if (it == shard.tile_breakers.end()) {
    auto breaker = std::make_unique<CircuitBreaker>(topology_.breaker, &rng_);
    const auto shard_index = static_cast<int>(
        std::find_if(shards_.begin(), shards_.end(),
                     [&shard](const std::unique_ptr<Shard>& s) {
                       return s.get() == &shard;
                     }) -
        shards_.begin());
    wire_breaker_trace(*breaker, shard_index, tile);
    it = shard.tile_breakers.emplace(tile, std::move(breaker)).first;
  }
  return *it->second;
}

void FleetManager::add_module(const std::string& module, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  for (auto& shard : shards_) {
    for (const int tile : shard->tiles) shard->store->add(tile, module, bytes);
  }
}

sim::Time FleetManager::deadline_for(const FleetRequest& request) const {
  const QosClassParams& cls =
      topology_.classes[static_cast<int>(request.cls)];
  return request.submitted_at +
         static_cast<sim::Time>(cls.deadline_quanta *
                                topology_.quantum_cycles);
}

void FleetManager::submit(FleetRequest request) {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  ++stats_.submitted;
  counter("fleet.submitted").add();
  if (request.submitted_at == 0) request.submitted_at = now_;
  if (request.deadline == 0) request.deadline = deadline_for(request);
  admit(std::move(request));
}

bool FleetManager::take_tenant_token(int tenant) {
  if (topology_.tenant_tokens_per_quantum <= 0.0) return true;
  TenantBucket& bucket = tenants_[tenant];
  // Lazy refill from the elapsed virtual time: tenants appear on first
  // submit with a full burst allowance, and an idle tenant's bucket
  // refills without the step loop ever touching it.
  if (bucket.last_refill == 0 && bucket.tokens == 0.0) {
    bucket.tokens = topology_.tenant_burst;
  } else {
    const double quanta =
        static_cast<double>(now_ - bucket.last_refill) /
        static_cast<double>(topology_.quantum_cycles);
    bucket.tokens =
        std::min(bucket.tokens + quanta * topology_.tenant_tokens_per_quantum,
                 topology_.tenant_burst);
  }
  bucket.last_refill = now_;
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

void FleetManager::admit(FleetRequest request) {
  // Tenant bucket first: it is the per-client admission edge, layered
  // under (checked before) the shared class bucket and queue bound, and
  // its shed reason is distinct so operators can tell "you exceeded your
  // quota" from "the class is saturated".
  if (!take_tenant_token(request.tenant)) {
    counter(("fleet.tenant." + std::to_string(request.tenant) + ".shed")
                .c_str())
        .add();
    // A quota rejection is hard even for best-effort work: routing it to
    // the software fallback would let a tenant tunnel past its budget.
    shed(request, FleetError::kTenantThrottled);
    return;
  }
  ClassQueue& cq = classes_[static_cast<int>(request.cls)];
  const QosClassParams& params =
      topology_.classes[static_cast<int>(request.cls)];
  if (static_cast<int>(cq.queue.size()) >= params.queue_bound) {
    shed_or_fallback(request, FleetError::kQueueFull);
    return;
  }
  // FleetManager is single-driver by contract; the access annotations
  // here exist so racecheck flags a caller that drives one manager from
  // two unsynchronized threads.
  PRESP_RC_WRITE(this, "fleet.state");
  counter(("fleet.tenant." + std::to_string(request.tenant) + ".admitted")
              .c_str())
      .add();
  cq.queue.push_back(std::move(request));
}

void FleetManager::step() {
  const annot::Scope scope("fleet.step");
  std::lock_guard<std::mutex> lock(ops_mutex_);
  PRESP_RC_WRITE(this, "fleet.state");
  now_ += static_cast<sim::Time>(topology_.quantum_cycles);
  for (int c = 0; c < kNumQosClasses; ++c) {
    ClassQueue& cq = classes_[c];
    const QosClassParams& params = topology_.classes[c];
    cq.tokens = std::min(cq.tokens + params.tokens_per_quantum, params.burst);
  }
  dispatch_pass();
  advance_shards();
  reap();
  trace::MetricsRegistry::global().gauge("fleet.inflight").set(
      static_cast<double>(inflight_.size()));
}

void FleetManager::run_quanta(int quanta) {
  for (int i = 0; i < quanta; ++i) step();
}

void FleetManager::dispatch_pass() {
  // Shed expired heads first (FIFO per class, so the head is oldest):
  // a request that aged out waiting for tokens was throttled; one that
  // aged out with tokens available missed its dispatch window.
  for (int c = 0; c < kNumQosClasses; ++c) {
    ClassQueue& cq = classes_[c];
    while (!cq.queue.empty() && now_ > cq.queue.front().deadline) {
      const FleetRequest expired = std::move(cq.queue.front());
      cq.queue.pop_front();
      shed_or_fallback(expired, cq.tokens >= 1.0
                                    ? FleetError::kDeadlineShed
                                    : FleetError::kThrottled);
    }
  }
  // Deficit-weighted round-robin across the classes.
  for (int c = 0; c < kNumQosClasses; ++c) {
    if (!classes_[c].queue.empty())
      classes_[c].deficit += topology_.classes[c].weight;
  }
  bool blocked[kNumQosClasses] = {};
  for (;;) {
    int best = -1;
    for (int c = 0; c < kNumQosClasses; ++c) {
      ClassQueue& cq = classes_[c];
      if (blocked[c] || cq.queue.empty() || cq.tokens < 1.0) continue;
      if (best < 0 || cq.deficit > classes_[best].deficit) best = c;
    }
    if (best < 0) break;
    ClassQueue& cq = classes_[best];
    FleetRequest request = std::move(cq.queue.front());
    cq.queue.pop_front();
    if (try_dispatch(request)) {
      cq.tokens -= 1.0;
      cq.deficit = std::max(cq.deficit - 1.0, 0.0);
    } else {
      // No shard/tile admitted it; keep it queued and do not burn a
      // token, but stop asking for this class this pass.
      cq.queue.push_front(std::move(request));
      blocked[best] = true;
    }
  }
  for (int c = 0; c < kNumQosClasses; ++c) {
    if (classes_[c].queue.empty()) classes_[c].deficit = 0.0;
  }
}

bool FleetManager::try_dispatch(FleetRequest& request) {
  // Reject-early deadline shedding: if the estimate already overshoots
  // the deadline, failing fast beats wasting fabric time.
  if (now_ + static_cast<sim::Time>(topology_.service_estimate_cycles) >
      request.deadline) {
    shed_or_fallback(request, FleetError::kDeadlineShed);
    return true;
  }
  if (try_coalesce(request)) return true;
  int shard = -1;
  int tile = -1;
  if (!route(request.module, &shard, &tile)) {
    // Nothing admitted it right now. If another pass cannot possibly
    // make the deadline either, shed with the precise reason.
    if (now_ + static_cast<sim::Time>(topology_.service_estimate_cycles +
                                      topology_.quantum_cycles) >
        request.deadline) {
      shed_or_fallback(request, FleetError::kShardUnavailable);
      return true;
    }
    return false;
  }
  start_run(shard, tile, std::move(request), false);
  return true;
}

bool FleetManager::try_coalesce(const FleetRequest& request) {
  if (topology_.coalesce_limit <= 0) return false;
  for (auto& entry : inflight_) {
    if (entry->coalesced || entry->late ||
        entry->request.module != request.module)
      continue;
    if (entry->completion->triggered()) continue;
    // An open breaker must divert coalesced traffic too — riding a
    // leader on a tripped shard would tunnel new work past it.
    if (shards_[static_cast<std::size_t>(entry->shard)]->breaker->state() !=
        BreakerState::kClosed)
      continue;
    if (static_cast<int>(entry->followers.size()) >=
        topology_.coalesce_limit)
      continue;
    entry->followers.push_back(request);
    ++stats_.coalesced;
    counter("fleet.coalesced").add();
    trace::sim_instant(trace::Category::kFleet, "fleet.coalesce", now_,
                       trace::kTrackFleet,
                       static_cast<double>(entry->request.id));
    return true;
  }
  return false;
}

bool FleetManager::route(const std::string& module, int* out_shard,
                         int* out_tile) {
  const int n = num_shards();
  // Least-loaded first; round-robin start breaks ties fairly.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order.push_back((next_shard_rr_ + i) % n);
  next_shard_rr_ = (next_shard_rr_ + 1) % std::max(n, 1);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return shards_[static_cast<std::size_t>(a)]->inflight <
           shards_[static_cast<std::size_t>(b)]->inflight;
  });
  for (const int s : order) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    const BreakerState before = shard.breaker->state();
    if (!shard.breaker->allow(now_)) continue;
    const bool shard_probe =
        before != BreakerState::kClosed &&
        shard.breaker->state() == BreakerState::kHalfOpen;
    // Module affinity first (skips the reconfiguration entirely), then
    // any tile the health registry and tile breaker will take.
    int chosen = -1;
    for (const bool affinity_pass : {true, false}) {
      for (const int tile : shard.tiles) {
        if (affinity_pass && shard.manager->driver(tile) != module) continue;
        CircuitBreaker& tb = tile_breaker_ref(shard, tile);
        if (!tb.allow(now_)) continue;
        if (!shard.manager->health().usable(tile)) {
          tb.abandon();
          continue;
        }
        chosen = tile;
        break;
      }
      if (chosen >= 0) break;
    }
    if (chosen < 0) {
      if (shard_probe) shard.breaker->abandon();
      continue;
    }
    *out_shard = s;
    *out_tile = chosen;
    return true;
  }
  return false;
}

void FleetManager::start_run(int shard_index, int tile, FleetRequest request,
                             bool coalesced) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  auto entry = std::make_unique<Inflight>();
  entry->request = std::move(request);
  entry->shard = shard_index;
  entry->tile = tile;
  entry->coalesced = coalesced;
  entry->completion =
      std::make_unique<runtime::Completion>(shard.soc->kernel());
  soc::AccelTask task;
  task.src = shard.buffer;
  task.dst = shard.buffer + kShardBufferBytes / 2;
  task.items = entry->request.items;
  trace::sim_instant(trace::Category::kFleet, "fleet.dispatch", now_,
                     trace::kTrackFleet,
                     static_cast<double>(entry->request.id));
  shard.manager->run(tile, entry->request.module, task, *entry->completion);
  ++shard.inflight;
  inflight_.push_back(std::move(entry));
}

void FleetManager::advance_shards() {
  for (int s = 0; s < num_shards(); ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (now_ >= shard.stalled_until && injector_ != nullptr &&
        injector_->on_shard_stall(s)) {
      shard.stalled_until =
          now_ + static_cast<sim::Time>(topology_.stall_cycles);
      trace::sim_instant(trace::Category::kFleet, "fleet.shard_stall", now_,
                         trace::kTrackFleet, static_cast<double>(s));
    }
    if (now_ < shard.stalled_until) {
      // The shard's kernel freezes: in-flight work stops making
      // progress. The dispatcher is deliberately not told — it must
      // discover the stall through aging requests and the breaker.
      ++stats_.stall_quanta;
      continue;
    }
    shard.soc->kernel().run_until(now_);
  }
}

void FleetManager::reap() {
  std::vector<std::unique_ptr<Inflight>> finished;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    Inflight& entry = **it;
    if (entry.completion->triggered()) {
      finished.push_back(std::move(*it));
      it = inflight_.erase(it);
      continue;
    }
    if (now_ > entry.request.deadline) {
      // Still executing past its deadline: feed the shard breaker every
      // quantum instead of waiting for the (possibly stalled)
      // completion — sustained no-progress is the stall signature the
      // dispatcher can actually observe.
      if (!entry.late) {
        entry.late = true;
        trace::sim_instant(trace::Category::kFleet, "fleet.late", now_,
                           trace::kTrackFleet,
                           static_cast<double>(entry.request.id));
      }
      shards_[static_cast<std::size_t>(entry.shard)]->breaker->record_failure(
          now_);
    }
    ++it;
  }
  for (const auto& entry : finished)
    retire(*entry, entry->completion->status());
  // Software-fallback completions that have reached their modeled
  // latency.
  for (auto it = fallbacks_.begin(); it != fallbacks_.end();) {
    if (it->due <= now_) {
      complete(it->request, OutcomeKind::kFallback, -1);
      it = fallbacks_.erase(it);
    } else {
      ++it;
    }
  }
}

void FleetManager::retire(const Inflight& entry,
                          runtime::RequestStatus status) {
  Shard& shard = *shards_[static_cast<std::size_t>(entry.shard)];
  shard.inflight = std::max(shard.inflight - 1, 0);
  const int ran_tile =
      entry.completion->tile() >= 0 ? entry.completion->tile() : entry.tile;
  const bool ok = status == runtime::RequestStatus::kOk;
  if (ok) {
    if (!entry.late) shard.breaker->record_success(now_);
    // A run that was rescued on a different tile than requested means the
    // requested tile failed mid-flight (quarantine + internal re-route):
    // its breaker must see the failure or a half-open probe would leak.
    if (ran_tile != entry.tile)
      tile_breaker_ref(shard, entry.tile).record_failure(now_);
    tile_breaker_ref(shard, ran_tile).record_success(now_);
    complete(entry.request,
             entry.coalesced ? OutcomeKind::kCoalescedOk : OutcomeKind::kOk,
             entry.shard);
    // Fan the coalesced followers out onto the still-warm tile: the
    // module is resident there, so each follower's run skips the
    // reconfiguration ("program once").
    for (const FleetRequest& follower : entry.followers)
      start_run(entry.shard, ran_tile, follower, true);
    return;
  }
  shard.breaker->record_failure(now_);
  tile_breaker_ref(shard, ran_tile).record_failure(now_);
  complete(entry.request, OutcomeKind::kFailed, entry.shard);
  // The leader failed (e.g. its tile was quarantined mid-program): the
  // followers are NOT lost — they go back to the head of their class
  // queues and re-route, shed with a typed error, or fall back.
  for (auto it = entry.followers.rbegin(); it != entry.followers.rend();
       ++it) {
    ++stats_.coalesce_requeues;
    classes_[static_cast<int>(it->cls)].queue.push_front(*it);
  }
}

void FleetManager::complete(const FleetRequest& request, OutcomeKind kind,
                            int shard) {
  FleetOutcome outcome;
  outcome.request_id = request.id;
  outcome.cls = request.cls;
  outcome.kind = kind;
  outcome.shard = shard;
  outcome.completed_at = now_;
  outcome.latency = now_ - request.submitted_at;
  outcome.deadline_met = now_ <= request.deadline;
  switch (kind) {
    case OutcomeKind::kOk:
    case OutcomeKind::kCoalescedOk:
      ++stats_.completed_ok;
      break;
    case OutcomeKind::kFallback:
      ++stats_.completed_fallback;
      break;
    case OutcomeKind::kFailed:
      ++stats_.completed_failed;
      outcome.error = FleetError::kExecFailed;
      break;
    case OutcomeKind::kShed:
      break;  // recorded via shed()
  }
  if (!outcome.deadline_met) ++stats_.deadline_misses;
  counter("fleet.completed").add();
  trace::MetricsRegistry::global()
      .histogram("fleet.latency_cycles")
      .observe(static_cast<double>(outcome.latency));
  outcomes_.push_back(std::move(outcome));
}

void FleetManager::shed(const FleetRequest& request, FleetError error) {
  ++stats_.shed_total;
  ++stats_.shed_by_reason[static_cast<int>(error)];
  counter("fleet.shed").add();
  FleetOutcome outcome;
  outcome.request_id = request.id;
  outcome.cls = request.cls;
  outcome.kind = OutcomeKind::kShed;
  outcome.error = error;
  outcome.completed_at = now_;
  outcomes_.push_back(std::move(outcome));
  trace::sim_instant(trace::Category::kFleet,
                     std::string("fleet.shed ") + to_string(error), now_,
                     trace::kTrackFleet,
                     static_cast<double>(request.id));
}

void FleetManager::shed_or_fallback(const FleetRequest& request,
                                    FleetError error) {
  if (request.cls == QosClass::kBestEffort) {
    // Graceful degradation: best-effort work takes the modeled software
    // path (the WAMI pipeline's CPU implementation of the kernel)
    // instead of being rejected.
    counter("fleet.fallbacks").add();
    trace::sim_instant(trace::Category::kFleet, "fleet.fallback", now_,
                       trace::kTrackFleet,
                       static_cast<double>(request.id));
    fallbacks_.push_back(
        {request,
         now_ + static_cast<sim::Time>(topology_.fallback_latency_cycles)});
    return;
  }
  shed(request, error);
}

bool FleetManager::idle() const {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  PRESP_RC_READ(this, "fleet.state");
  if (!inflight_.empty() || !fallbacks_.empty()) return false;
  for (const ClassQueue& cq : classes_) {
    if (!cq.queue.empty()) return false;
  }
  return true;
}

bool FleetManager::drain(int max_quanta) {
  for (int i = 0; i < max_quanta && !idle(); ++i) step();
  if (!idle()) {
    // Out of budget: terminate what is left with a typed shed so the
    // conservation invariant still holds (nothing disappears silently).
    std::lock_guard<std::mutex> lock(ops_mutex_);
    for (ClassQueue& cq : classes_) {
      while (!cq.queue.empty()) {
        shed(cq.queue.front(), FleetError::kSaturated);
        cq.queue.pop_front();
      }
    }
    for (const PendingFallback& fb : fallbacks_)
      complete(fb.request, OutcomeKind::kFallback, -1);
    fallbacks_.clear();
  }
  return idle();
}

runtime::ReconfigurationManager& FleetManager::manager(int shard) {
  PRESP_REQUIRE(shard >= 0 && shard < num_shards(), "shard out of range");
  return *shards_[static_cast<std::size_t>(shard)]->manager;
}

BreakerState FleetManager::shard_breaker(int shard) const {
  PRESP_REQUIRE(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->breaker->state();
}

BreakerState FleetManager::tile_breaker(int shard, int tile) const {
  PRESP_REQUIRE(shard >= 0 && shard < num_shards(), "shard out of range");
  const auto& breakers =
      shards_[static_cast<std::size_t>(shard)]->tile_breakers;
  const auto it = breakers.find(tile);
  return it == breakers.end() ? BreakerState::kClosed : it->second->state();
}

int FleetManager::inflight(int shard) const {
  PRESP_REQUIRE(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->inflight;
}

FleetOpsSnapshot FleetManager::ops_snapshot() const {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  FleetOpsSnapshot snap;
  snap.now = now_;
  snap.stats = stats_;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    FleetOpsSnapshot::ShardState state;
    state.breaker = shard->breaker->state();
    state.inflight = shard->inflight;
    for (const auto& [tile, breaker] : shard->tile_breakers)
      state.tile_breakers[tile] = breaker->state();
    state.tile_health = shard->manager->health().snapshot();
    snap.shards.push_back(std::move(state));
  }
  for (int c = 0; c < kNumQosClasses; ++c)
    snap.queued[c] = classes_[c].queue.size();
  for (const auto& [tenant, bucket] : tenants_)
    snap.tenant_tokens[tenant] = bucket.tokens;
  return snap;
}

std::string FleetManager::digest() const {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  std::ostringstream out;
  out << "fleet now=" << now_ << " submitted=" << stats_.submitted
      << " ok=" << stats_.completed_ok
      << " fallback=" << stats_.completed_fallback
      << " failed=" << stats_.completed_failed << " shed=[";
  for (int e = 0; e < kNumFleetErrors; ++e)
    out << (e == 0 ? "" : ",") << stats_.shed_by_reason[e];
  out << "] coalesced=" << stats_.coalesced
      << " requeues=" << stats_.coalesce_requeues
      << " breaker=[" << stats_.breaker_opens << ","
      << stats_.breaker_half_opens << "," << stats_.breaker_closes << ","
      << stats_.breaker_reopens << "]"
      << " stalls=" << stats_.stall_quanta
      << " misses=" << stats_.deadline_misses;
  if (topology_.repack) {
    std::uint64_t migrations = 0, aborts = 0, failures = 0;
    out << " frag=[";
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& shard = *shards_[s];
      migrations += shard.repacker->stats().migrations;
      aborts += shard.repacker->stats().aborts;
      failures += shard.repacker->stats().failures;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f",
                    shard.plan->fragmentation().ratio());
      out << (s == 0 ? "" : ",") << buf;
    }
    out << "] repack=[" << migrations << "," << aborts << "," << failures
        << "]";
  }
  return out.str();
}

}  // namespace presp::fleet
