// Fleet topology & policy, parsed from the `[fleet]` section of an
// .esp_config file:
//
//   [fleet]
//   shards = 2
//   quantum_cycles = 4000
//   coalesce_limit = 4
//   # class_<name> = weight, tokens_per_quantum, burst, queue_bound,
//   #                deadline_quanta
//   class_realtime   = 8, 4.0, 8, 32, 600
//   class_standard   = 4, 2.0, 16, 64, 2000
//   class_besteffort = 1, 1.0, 32, 128, 8000
//   tenant_tokens_per_quantum = 0.5   # 0 (default) disables
//   tenant_burst = 8
//   breaker_failure_threshold = 0.5
//   breaker_window = 8
//   breaker_open_base_cycles = 200000
//   breaker_open_max_cycles = 3200000
//   breaker_half_open_probes = 2
//   repack = 1                        # 0 (default) disables
//   repack_interval_cycles = 2000000
//   repack_frag_threshold = 0.05
//   repack_max_migrations = 4
//   repack_migration_budget = 2
//
// from_config() is deliberately lenient (defaults for every key) — the
// presp-lint `fleet.*` rule pack is where misconfigurations are reported
// with file/line diagnostics; FleetManager re-validates the invariants it
// cannot run without and throws ConfigError.
#pragma once

#include <string>

#include "fleet/breaker.hpp"
#include "fleet/types.hpp"
#include "util/config.hpp"

namespace presp::fleet {

struct FleetTopology {
  /// Independent SoC instances driven in lock-step quanta.
  int shards = 2;
  /// Fleet scheduling quantum: each shard's kernel advances this many
  /// cycles between admission/dispatch/reap passes.
  long long quantum_cycles = 4'000;
  /// Max followers coalesced onto one in-flight reconfiguration.
  int coalesce_limit = 4;
  /// Dispatch estimate used for reject-early deadline shedding.
  long long service_estimate_cycles = 120'000;
  /// Modeled latency of the best-effort software fallback path.
  long long fallback_latency_cycles = 400'000;
  /// Cycles an injected shard stall freezes a shard's kernel.
  long long stall_cycles = 400'000;
  /// Arrival multiplier while an injected burst overload is active.
  int burst_multiplier = 8;
  /// Tenant-level token bucket layered *under* the per-class buckets:
  /// consumed at submit time, before class admission. 0 disables tenant
  /// throttling entirely (the default — class buckets alone govern).
  double tenant_tokens_per_quantum = 0.0;
  /// Tenant bucket capacity (burst allowance). Ignored while disabled.
  double tenant_burst = 8.0;
  /// Online defragmentation: when true every shard runs a background
  /// runtime::Repacker over a dynamic floorplan of its fabric
  /// (`repack = 1` in the config; presp-lint runtime.repacker-bounds
  /// checks the knobs below).
  bool repack = false;
  /// Cycles between repack passes on each shard. Must stay positive.
  long long repack_interval_cycles = 2'000'000;
  /// Fragmentation ratio a pass must exceed before it migrates.
  double repack_frag_threshold = 0.05;
  /// Migrations attempted per pass.
  int repack_max_migrations = 4;
  /// Consecutive aborted/failed migrations tolerated per pass.
  int repack_migration_budget = 2;
  /// Indexed by QosClass.
  QosClassParams classes[kNumQosClasses] = {
      {8.0, 4.0, 8.0, 32, 600},     // realtime
      {4.0, 2.0, 16.0, 64, 2000},   // standard
      {1.0, 1.0, 32.0, 128, 8000},  // besteffort
  };
  BreakerOptions breaker;

  /// Reads the `[fleet]` section (missing keys keep defaults; a missing
  /// section returns the default topology).
  static FleetTopology from_config(const Config& config);

  /// Throws presp::InvalidArgument on values the manager cannot run with
  /// (shards < 1, non-positive quantum/queue bounds, zero class weight
  /// sum, breaker thresholds outside (0,1], window outside [1,64]).
  void validate() const;
};

}  // namespace presp::fleet
