// Open-loop synthetic client population: tenants request accelerator
// swaps at a seeded arrival rate, independent of service completions
// (open loop — the fleet cannot slow arrivals down, which is what makes
// overload shedding necessary). kBurstOverload faults multiply the rate
// for a window, modeling a misbehaving tenant population.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fleet/types.hpp"
#include "util/rng.hpp"

namespace presp::fleet {

struct LoadOptions {
  std::uint64_t seed = 1;
  /// Mean arrivals per scheduling quantum across all classes.
  double arrivals_per_quantum = 2.0;
  /// Class mix weights (need not sum to 1).
  double mix_realtime = 0.25;
  double mix_standard = 0.5;
  double mix_besteffort = 0.25;
  /// Modules drawn uniformly per request; must be non-empty.
  std::vector<std::string> modules;
  int tenants = 16;
  long long min_items = 64;
  long long max_items = 512;
  /// Quanta an injected burst overload lasts.
  int burst_quanta = 4;
};

class SyntheticLoad {
 public:
  explicit SyntheticLoad(LoadOptions options);

  /// One arrival batch (call once per quantum). `burst_multiplier` is
  /// applied while an injected overload window is active; `injector` may
  /// be null. Deadlines are left 0 — the fleet stamps them per class at
  /// submit.
  std::vector<FleetRequest> generate(sim::Time now, int burst_multiplier,
                                     fault::FaultInjector* injector);

  std::uint64_t generated() const { return next_id_; }
  bool burst_active() const { return burst_remaining_ > 0; }

 private:
  QosClass pick_class();

  LoadOptions options_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  int burst_remaining_ = 0;
};

}  // namespace presp::fleet
