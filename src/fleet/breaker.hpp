// Circuit breaker for shards and tiles (DESIGN.md §13).
//
//            failure rate >= threshold over window
//   closed ─────────────────────────────────────────> open
//   open ──(backoff expires; jittered exponential)──> half-open
//   half-open ──(probe successes)──────────────────-> closed
//   half-open ──(any probe failure)────────────────-> open (backoff x2)
//
// The breaker never blocks a caller: allow() is a pure admission check the
// fleet dispatcher consults when routing, so an open breaker diverts
// traffic to healthy shards instead of queueing behind a sick one. All
// time is fleet-clock cycles; the jitter stream is the fleet's seeded Rng,
// so replays are bit-identical.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace presp::fleet {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

struct BreakerOptions {
  /// Open when failures/window >= threshold (with a full window).
  double failure_threshold = 0.5;
  /// Outcomes per evaluation window (also the minimum sample count).
  int window = 8;
  /// First open interval; doubles on every half-open probe failure.
  long long open_base_cycles = 200'000;
  long long open_max_cycles = 3'200'000;
  /// Consecutive probe successes required to close from half-open.
  int half_open_probes = 2;
  /// Jitter fraction on the open interval (decorrelates probe storms).
  double jitter = 0.5;
};

class CircuitBreaker {
 public:
  /// Observer invoked on every state transition. Must not call back into
  /// the breaker.
  using Listener = std::function<void(BreakerState from, BreakerState to,
                                      sim::Time now)>;

  /// `rng` feeds the backoff jitter; not owned, must outlive the breaker.
  CircuitBreaker(BreakerOptions options, Rng* rng)
      : options_(options), rng_(rng) {}

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  BreakerState state() const { return state_; }

  /// True if a request may pass now. Transitions open -> half-open when
  /// the backoff has expired; in half-open, admits at most
  /// half_open_probes concurrent probes.
  bool allow(sim::Time now);

  void record_success(sim::Time now);
  void record_failure(sim::Time now);
  /// Trips the breaker open immediately (tile quarantine, shard pulled).
  void force_open(sim::Time now);
  /// Returns an allow()ed half-open probe slot that was never dispatched
  /// (the router admitted the shard but found no usable tile).
  void abandon();

  int consecutive_open_count() const { return open_streak_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  void transition(BreakerState to, sim::Time now);
  void open(sim::Time now);
  long long backoff_cycles();

  BreakerOptions options_;
  Rng* rng_;
  BreakerState state_ = BreakerState::kClosed;
  Listener listener_;
  /// Ring of the last `window` outcomes (true = failure).
  std::uint64_t outcome_bits_ = 0;
  int outcome_count_ = 0;
  int outcome_head_ = 0;
  int failures_in_window_ = 0;
  sim::Time reopen_at_ = 0;
  /// Consecutive opens without an intervening close (drives backoff).
  int open_streak_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace presp::fleet
