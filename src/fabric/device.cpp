#include "fabric/device.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace presp::fabric {

const char* to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kClb: return "CLB";
    case ColumnType::kBram: return "BRAM";
    case ColumnType::kDsp: return "DSP";
    case ColumnType::kIo: return "IO";
    case ColumnType::kClock: return "CLK";
  }
  return "?";
}

int FrameProfile::frames_for(ColumnType type) const {
  switch (type) {
    case ColumnType::kClb: return clb_frames;
    case ColumnType::kBram: return bram_frames + bram_content_frames;
    case ColumnType::kDsp: return dsp_frames;
    case ColumnType::kIo: return io_frames;
    case ColumnType::kClock: return clock_frames;
  }
  return 0;
}

Device::Device(std::string name, int region_rows,
               std::vector<ColumnType> columns, ResourceVec clb_cell,
               int bram36_per_cell, int dsp_per_cell, FrameProfile frames)
    : name_(std::move(name)),
      region_rows_(region_rows),
      columns_(std::move(columns)),
      clb_cell_(clb_cell),
      bram36_per_cell_(bram36_per_cell),
      dsp_per_cell_(dsp_per_cell),
      frames_(frames) {
  PRESP_REQUIRE(region_rows_ > 0, "device needs at least one region row");
  PRESP_REQUIRE(!columns_.empty(), "device needs at least one column");
  for (int col = 0; col < num_columns(); ++col)
    total_ += cell_resources(col) * region_rows_;
}

ColumnType Device::column_type(int col) const {
  PRESP_REQUIRE(col >= 0 && col < num_columns(), "column index out of range");
  return columns_[static_cast<std::size_t>(col)];
}

ResourceVec Device::cell_resources(ColumnType type) const {
  switch (type) {
    case ColumnType::kClb: return clb_cell_;
    case ColumnType::kBram: return ResourceVec{0, 0, bram36_per_cell_, 0};
    case ColumnType::kDsp: return ResourceVec{0, 0, 0, dsp_per_cell_};
    case ColumnType::kIo:
    case ColumnType::kClock: return ResourceVec{};
  }
  return ResourceVec{};
}

namespace {

/// Builds a realistic column sequence: IO at both edges, one clocking spine
/// in the middle, BRAM/DSP columns distributed evenly among the CLB columns
/// (Xilinx fabrics interleave memory/DSP columns through the logic).
std::vector<ColumnType> make_columns(int clb_cols, int bram_cols,
                                     int dsp_cols) {
  const int special = bram_cols + dsp_cols;
  std::vector<ColumnType> cols;
  cols.push_back(ColumnType::kIo);
  // Positions of BRAM/DSP columns among (clb + special) inner columns,
  // alternating BRAM and DSP as they appear on real parts.
  const int inner = clb_cols + special;
  int placed_bram = 0;
  int placed_dsp = 0;
  int placed_special = 0;
  for (int i = 0; i < inner; ++i) {
    // Even spacing: a special column belongs at position i when the running
    // quota crosses an integer boundary.
    const bool special_here =
        special > 0 &&
        (i + 1) * special / inner > placed_special;
    if (special_here) {
      // Alternate, preferring whichever type is behind its own quota.
      const bool pick_bram =
          placed_dsp * bram_cols >= placed_bram * dsp_cols
              ? placed_bram < bram_cols
              : placed_dsp >= dsp_cols;
      if (pick_bram) {
        cols.push_back(ColumnType::kBram);
        ++placed_bram;
      } else {
        cols.push_back(ColumnType::kDsp);
        ++placed_dsp;
      }
      ++placed_special;
    } else {
      cols.push_back(ColumnType::kClb);
    }
  }
  // Clocking spine in the middle of the die.
  cols.insert(cols.begin() + static_cast<long>(cols.size() / 2),
              ColumnType::kClock);
  cols.push_back(ColumnType::kIo);
  return cols;
}

}  // namespace

Device Device::vc707() {
  // XC7VX485T: 303,600 LUT / 607,200 FF / 1,030 RAMB36 / 2,800 DSP48,
  // modeled as 7 clock-region rows. Cell granularity: 400 LUT per CLB
  // column cell, 10 RAMB36 per BRAM cell, 20 DSP per DSP cell.
  // 108 CLB + 15 BRAM + 20 DSP columns => totals within 2% of the part.
  return Device("xc7vx485t (VC707)", 7, make_columns(108, 15, 20),
                ResourceVec{400, 800, 0, 0}, 10, 20, FrameProfile{});
}

Device Device::vcu118() {
  // XCVU9P: 1,182,240 LUT / 2,364,480 FF / 2,160 RAMB36 / 6,840 DSP48.
  FrameProfile us{.clb_frames = 32,
                  .bram_frames = 26,
                  .bram_content_frames = 256,
                  .dsp_frames = 26,
                  .io_frames = 48,
                  .clock_frames = 28,
                  .frame_bytes = 372};
  return Device("xcvu9p (VCU118)", 15, make_columns(164, 12, 19),
                ResourceVec{480, 960, 0, 0}, 12, 24, us);
}

Device Device::vcu128() {
  // XCVU37P: 1,303,680 LUT / 2,607,360 FF / 2,016 RAMB36 / 9,024 DSP48.
  FrameProfile us{.clb_frames = 32,
                  .bram_frames = 26,
                  .bram_content_frames = 256,
                  .dsp_frames = 26,
                  .io_frames = 48,
                  .clock_frames = 28,
                  .frame_bytes = 372};
  return Device("xcvu37p (VCU128)", 15, make_columns(181, 11, 25),
                ResourceVec{480, 960, 0, 0}, 12, 24, us);
}

std::string Pblock::to_string() const {
  return "pblock[cols " + std::to_string(col_lo) + ".." +
         std::to_string(col_hi) + ", rows " + std::to_string(row_lo) + ".." +
         std::to_string(row_hi) + "]";
}

ResourceVec pblock_resources(const Device& device, const Pblock& pblock) {
  PRESP_REQUIRE(pblock.valid(), "invalid pblock rectangle");
  PRESP_REQUIRE(pblock.col_lo >= 0 && pblock.col_hi < device.num_columns() &&
                    pblock.row_lo >= 0 && pblock.row_hi < device.region_rows(),
                "pblock out of device bounds");
  ResourceVec total;
  for (int col = pblock.col_lo; col <= pblock.col_hi; ++col) {
    if (!Device::reconfigurable_column(device.column_type(col))) continue;
    total += device.cell_resources(col) * pblock.height();
  }
  return total;
}

long long pblock_frames(const Device& device, const Pblock& pblock) {
  PRESP_REQUIRE(pblock.valid(), "invalid pblock rectangle");
  long long frames = 0;
  for (int col = pblock.col_lo; col <= pblock.col_hi; ++col)
    frames += static_cast<long long>(
                  device.frames().frames_for(device.column_type(col))) *
              pblock.height();
  return frames;
}

}  // namespace presp::fabric
