// FPGA resource accounting. All sizing decisions in the PR-ESP flow
// (floorplanning legality, the kappa/alpha/gamma metrics of Section IV,
// the runtime model) are made over these vectors, mirroring how the paper
// reasons in post-synthesis LUT/FF/BRAM/DSP counts.
#pragma once

#include <cstdint>
#include <string>

namespace presp::fabric {

struct ResourceVec {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t bram36 = 0;
  std::int64_t dsp = 0;

  constexpr ResourceVec& operator+=(const ResourceVec& o) {
    luts += o.luts;
    ffs += o.ffs;
    bram36 += o.bram36;
    dsp += o.dsp;
    return *this;
  }
  constexpr ResourceVec& operator-=(const ResourceVec& o) {
    luts -= o.luts;
    ffs -= o.ffs;
    bram36 -= o.bram36;
    dsp -= o.dsp;
    return *this;
  }
  friend constexpr ResourceVec operator+(ResourceVec a, const ResourceVec& b) {
    return a += b;
  }
  friend constexpr ResourceVec operator-(ResourceVec a, const ResourceVec& b) {
    return a -= b;
  }
  friend constexpr ResourceVec operator*(ResourceVec a, std::int64_t k) {
    a.luts *= k;
    a.ffs *= k;
    a.bram36 *= k;
    a.dsp *= k;
    return a;
  }
  friend constexpr bool operator==(const ResourceVec&,
                                   const ResourceVec&) = default;

  /// True when every component of `demand` fits within this vector.
  constexpr bool covers(const ResourceVec& demand) const {
    return luts >= demand.luts && ffs >= demand.ffs &&
           bram36 >= demand.bram36 && dsp >= demand.dsp;
  }

  constexpr bool is_zero() const {
    return luts == 0 && ffs == 0 && bram36 == 0 && dsp == 0;
  }

  /// Component-wise non-negative check (sanity for subtraction results).
  constexpr bool non_negative() const {
    return luts >= 0 && ffs >= 0 && bram36 >= 0 && dsp >= 0;
  }

  std::string to_string() const {
    return "{LUT:" + std::to_string(luts) + " FF:" + std::to_string(ffs) +
           " BRAM:" + std::to_string(bram36) + " DSP:" + std::to_string(dsp) +
           "}";
  }
};

/// LUT utilization of `demand` against `capacity` in [0,1]; the paper's
/// size metrics are defined over LUTs only (Eq. 1).
constexpr double lut_fraction(const ResourceVec& demand,
                              const ResourceVec& capacity) {
  return capacity.luts == 0
             ? 0.0
             : static_cast<double>(demand.luts) /
                   static_cast<double>(capacity.luts);
}

}  // namespace presp::fabric
