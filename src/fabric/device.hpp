// Columnar FPGA device model.
//
// Xilinx fabrics are organized as columns of homogeneous sites crossed by
// horizontal clock-region boundaries. Configuration is frame-based: the
// atomic reconfiguration unit is one column within one clock-region row.
// This is exactly the abstraction DPR floorplanning legality and partial
// bitstream sizing depend on, so the model keeps:
//   - a row of clock regions (row height = one region),
//   - an ordered sequence of columns, each of a resource type,
//   - per-type site capacity and configuration-frame counts per
//     column/region cell.
//
// Devices for the paper's three evaluation boards are provided. Counts are
// derived from the public Xilinx data sheets, rounded to a uniform columnar
// grid; totals match the real parts to within ~1% (see tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/resources.hpp"

namespace presp::fabric {

enum class ColumnType : std::uint8_t {
  kClb,    // logic: LUTs + FFs
  kBram,   // block RAM (RAMB36)
  kDsp,    // DSP48 slices
  kIo,     // I/O banks: not allocatable to reconfigurable partitions
  kClock,  // clocking spine: not allocatable to reconfigurable partitions
};

const char* to_string(ColumnType type);

/// Number of configuration frames occupied by one (column x region) cell.
/// Values follow the 7-series/UltraScale frame organization (logic frames
/// for CLB/DSP columns; BRAM columns add content frames).
struct FrameProfile {
  int clb_frames = 36;
  int bram_frames = 28;
  int bram_content_frames = 128;
  int dsp_frames = 28;
  int io_frames = 42;
  int clock_frames = 30;
  /// Bytes per configuration frame (101 words x 32 bit, 7-series).
  int frame_bytes = 404;

  int frames_for(ColumnType type) const;
};

class Device {
 public:
  /// `columns` lists the column type sequence left-to-right; the same
  /// sequence repeats in each of `region_rows` clock-region rows.
  Device(std::string name, int region_rows, std::vector<ColumnType> columns,
         ResourceVec clb_cell, int bram36_per_cell, int dsp_per_cell,
         FrameProfile frames);

  const std::string& name() const { return name_; }
  int region_rows() const { return region_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  ColumnType column_type(int col) const;

  /// Resources contributed by one (column, region-row) cell.
  ResourceVec cell_resources(ColumnType type) const;
  ResourceVec cell_resources(int col) const {
    return cell_resources(column_type(col));
  }

  /// Whole-device capacity.
  const ResourceVec& total() const { return total_; }

  const FrameProfile& frames() const { return frames_; }

  /// Columns whose type may be included in a reconfigurable partition.
  static bool reconfigurable_column(ColumnType type) {
    return type == ColumnType::kClb || type == ColumnType::kBram ||
           type == ColumnType::kDsp;
  }

  // Factory functions for the paper's evaluation boards.
  static Device vc707();    // Virtex-7 XC7VX485T
  static Device vcu118();   // Virtex UltraScale+ XCVU9P
  static Device vcu128();   // Virtex UltraScale+ XCVU37P

 private:
  std::string name_;
  int region_rows_;
  std::vector<ColumnType> columns_;
  ResourceVec clb_cell_;
  int bram36_per_cell_;
  int dsp_per_cell_;
  FrameProfile frames_;
  ResourceVec total_;
};

/// Axis-aligned rectangle of (column, region-row) cells: the physical
/// placement constraint for one reconfigurable partition ("pblock" in
/// Vivado terminology). Both bounds are inclusive.
struct Pblock {
  int col_lo = 0;
  int col_hi = -1;
  int row_lo = 0;
  int row_hi = -1;

  bool valid() const { return col_lo <= col_hi && row_lo <= row_hi; }
  int width() const { return col_hi - col_lo + 1; }
  int height() const { return row_hi - row_lo + 1; }
  long long cells() const {
    return static_cast<long long>(width()) * height();
  }

  bool contains(int col, int row) const {
    return col >= col_lo && col <= col_hi && row >= row_lo && row <= row_hi;
  }
  bool overlaps(const Pblock& other) const {
    return col_lo <= other.col_hi && other.col_lo <= col_hi &&
           row_lo <= other.row_hi && other.row_lo <= row_hi;
  }

  std::string to_string() const;
};

/// Total resources enclosed by a pblock on a device. Non-reconfigurable
/// columns (IO, clocking) contribute nothing.
ResourceVec pblock_resources(const Device& device, const Pblock& pblock);

/// Number of configuration frames a pblock spans (determines partial
/// bitstream size before compression). Includes non-reconfigurable columns
/// crossed by the rectangle since their frames are still part of the
/// addressed configuration rows.
long long pblock_frames(const Device& device, const Pblock& pblock);

}  // namespace presp::fabric
