// Synthesis simulator.
//
// Stands in for Vivado's synthesis step in the PR-ESP flow (Fig. 1):
//   - the *static* netlist flattens every tile's static blocks into
//     clustered logic cells and replaces each reconfigurable partition
//     with an auto-generated black-box wrapper cell;
//   - each partition member is synthesized *out of context* (OoC) into its
//     own checkpoint, so all syntheses can run in parallel;
//   - the *monolithic-equivalent* netlist (used by the baseline standard
//     DPR flow) contains everything in one netlist, with partitions
//     instantiated rather than black-boxed.
//
// Cells are clusters of `cluster_luts` LUTs; connectivity is generated
// deterministically (seeded by design/module names) with local chains plus
// Rent's-rule-like random edges, and a 2D-mesh of inter-tile socket links
// mirroring the ESP NoC topology.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "netlist/rtl.hpp"

namespace presp::synth {

struct SynthOptions {
  /// Cluster granularity: LUTs per generated logic cell.
  int cluster_luts = 200;
  /// Extra random edges per cell beyond the local chain.
  double rent_edges_per_cell = 0.6;
  std::uint64_t seed = 1;
};

/// A synthesized checkpoint (the flow's unit of hand-off between stages).
struct Checkpoint {
  std::string name;
  netlist::Netlist netlist;
  fabric::ResourceVec utilization;
  bool out_of_context = false;
};

class Synthesizer {
 public:
  Synthesizer(const netlist::ComponentLibrary& lib, SynthOptions options)
      : lib_(lib), options_(options) {}

  /// Static part: all tiles' static blocks + one black-box cell per
  /// reconfigurable partition (named after the partition).
  Checkpoint synthesize_static(const netlist::SocRtl& rtl) const;

  /// One partition member, out of context. The checkpoint is independent
  /// of the hosting tile (ESP's common reconfigurable wrapper interface).
  Checkpoint synthesize_module_ooc(const std::string& module_name) const;

  /// Monolithic-equivalent design: static part plus, for each partition,
  /// its largest member instantiated in place of the black box (what the
  /// standard single-instance DPR flow synthesizes up front).
  Checkpoint synthesize_monolithic(const netlist::SocRtl& rtl) const;

 private:
  Checkpoint synthesize_static_impl(const netlist::SocRtl& rtl,
                                    bool monolithic) const;

  const netlist::ComponentLibrary& lib_;
  SynthOptions options_;
};

}  // namespace presp::synth
