#include "synth/synthesis.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace presp::synth {

namespace {

std::uint64_t name_seed(std::uint64_t base, const std::string& name) {
  // FNV-1a folded with the option seed: stable across runs and platforms.
  std::uint64_t h = 1469598103934665603ULL ^ base;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Emits the clustered logic cells of one block and wires them with a
/// local chain plus random extra edges. Returns the ids of the emitted
/// cells.
std::vector<netlist::CellId> emit_block(netlist::Netlist& nl,
                                        const std::string& prefix,
                                        const fabric::ResourceVec& block,
                                        const SynthOptions& options,
                                        presp::Rng& rng) {
  const int clusters = std::max<int>(
      1, static_cast<int>((block.luts + options.cluster_luts - 1) /
                          options.cluster_luts));
  std::vector<netlist::CellId> ids;
  ids.reserve(static_cast<std::size_t>(clusters));

  fabric::ResourceVec remaining = block;
  for (int i = 0; i < clusters; ++i) {
    const int left = clusters - i;
    fabric::ResourceVec share{remaining.luts / left, remaining.ffs / left,
                              remaining.bram36 / left, remaining.dsp / left};
    if (i == clusters - 1) share = remaining;
    remaining -= share;
    netlist::Cell cell;
    cell.name = prefix + "/c" + std::to_string(i);
    cell.kind = netlist::CellKind::kLogic;
    cell.resources = share;
    ids.push_back(nl.add_cell(std::move(cell)));
  }

  // Local chain: cluster i drives cluster i+1 (datapath locality).
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    netlist::Net net;
    net.name = prefix + "/chain" + std::to_string(i);
    net.driver = ids[i];
    net.sinks = {ids[i + 1]};
    net.width = 64;
    nl.add_net(std::move(net));
  }
  // Rent's-rule-like extra edges within the block.
  if (ids.size() > 2) {
    const auto extra = static_cast<int>(
        options.rent_edges_per_cell * static_cast<double>(ids.size()));
    for (int e = 0; e < extra; ++e) {
      const auto a = static_cast<std::size_t>(rng.next_below(ids.size()));
      auto b = static_cast<std::size_t>(rng.next_below(ids.size()));
      if (a == b) b = (b + 1) % ids.size();
      netlist::Net net;
      net.name = prefix + "/rent" + std::to_string(e);
      net.driver = ids[a];
      net.sinks = {ids[b]};
      net.width = 16;
      nl.add_net(std::move(net));
    }
  }
  return ids;
}

/// Connects representative cells of two groups with a bus net.
void connect_groups(netlist::Netlist& nl, const std::string& name,
                    const std::vector<netlist::CellId>& from,
                    const std::vector<netlist::CellId>& to, int width) {
  if (from.empty() || to.empty()) return;
  if (from.front() == to.front()) return;  // degenerate self-connection
  netlist::Net net;
  net.name = name;
  net.driver = from.front();
  net.sinks = {to.front()};
  if (to.size() > 1 && to.back() != from.front())
    net.sinks.push_back(to.back());
  net.width = width;
  nl.add_net(std::move(net));
}

struct TileCells {
  std::vector<netlist::CellId> socket;  // socket clusters (always present)
  std::vector<netlist::CellId> logic;   // remaining static clusters
};

}  // namespace

Checkpoint Synthesizer::synthesize_static(const netlist::SocRtl& rtl) const {
  return synthesize_static_impl(rtl, /*monolithic=*/false);
}

Checkpoint Synthesizer::synthesize_monolithic(
    const netlist::SocRtl& rtl) const {
  return synthesize_static_impl(rtl, /*monolithic=*/true);
}

Checkpoint Synthesizer::synthesize_static_impl(const netlist::SocRtl& rtl,
                                               bool monolithic) const {
  const auto& config = rtl.config();
  const std::string kind = monolithic ? "monolithic" : "static";
  netlist::Netlist nl(config.name + "." + kind);
  presp::Rng rng(name_seed(options_.seed, nl.name()));

  std::vector<TileCells> tiles(rtl.tiles().size());

  for (const netlist::TileRtl& tile : rtl.tiles()) {
    const std::string tprefix = "tile" + std::to_string(tile.index);
    auto& out = tiles[static_cast<std::size_t>(tile.index)];
    for (const std::string& block : tile.static_blocks) {
      auto ids = emit_block(nl, tprefix + "/" + block,
                            lib_.get(block).resources, options_, rng);
      if (block == netlist::ComponentLibrary::kTileSocket) {
        out.socket = std::move(ids);
      } else {
        connect_groups(nl, tprefix + "/" + block + "_to_socket", ids,
                       out.socket.empty() ? ids : out.socket, 96);
        out.logic.insert(out.logic.end(), ids.begin(), ids.end());
      }
    }
    if (tile.partition >= 0) {
      const auto& partition =
          rtl.partitions()[static_cast<std::size_t>(tile.partition)];
      if (monolithic) {
        // Standard-flow netlist: instantiate the partition's largest
        // member (the sizing-representative module) in place.
        const std::string* largest = nullptr;
        std::int64_t best = -1;
        for (const std::string& module : partition.modules) {
          const std::int64_t module_luts =
              netlist::SocRtl::module_resources(lib_, module).luts;
          if (module_luts > best) {
            best = module_luts;
            largest = &module;
          }
        }
        PRESP_ASSERT(largest != nullptr);
        auto ids = emit_block(
            nl, tprefix + "/" + partition.name + "/" + *largest,
            netlist::SocRtl::module_resources(lib_, *largest), options_, rng);
        connect_groups(nl, tprefix + "/" + partition.name + "_to_socket",
                       ids, out.socket, 96);
        out.logic.insert(out.logic.end(), ids.begin(), ids.end());
      } else {
        netlist::Cell bb;
        bb.name = tprefix + "/" + partition.name;
        bb.kind = netlist::CellKind::kBlackBox;
        bb.partition = partition.name;
        const netlist::CellId id = nl.add_cell(std::move(bb));
        connect_groups(nl, tprefix + "/" + partition.name + "_decouple",
                       out.socket, {id}, 96);
      }
    }
  }

  // Inter-tile mesh links between sockets (the NoC topology).
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const auto here =
          tiles[static_cast<std::size_t>(r * config.cols + c)].socket;
      if (c + 1 < config.cols) {
        const auto& right =
            tiles[static_cast<std::size_t>(r * config.cols + c + 1)].socket;
        connect_groups(nl,
                       "mesh_r" + std::to_string(r) + "c" + std::to_string(c) +
                           "_east",
                       here, right, 128);
      }
      if (r + 1 < config.rows) {
        const auto& down =
            tiles[static_cast<std::size_t>((r + 1) * config.cols + c)].socket;
        connect_groups(nl,
                       "mesh_r" + std::to_string(r) + "c" + std::to_string(c) +
                           "_south",
                       here, down, 128);
      }
    }
  }

  // Top-level I/O anchors on the memory and auxiliary tiles (DDR + UART/
  // ETH pins). Ports are fixed at the die edge during placement.
  int port_index = 0;
  for (const netlist::TileRtl& tile : rtl.tiles()) {
    if (tile.type != netlist::TileType::kMem &&
        tile.type != netlist::TileType::kAux)
      continue;
    const std::string pad_name = "pad" + std::to_string(port_index++);
    netlist::Cell port;
    port.name = pad_name;
    port.kind = netlist::CellKind::kPort;
    const netlist::CellId id = nl.add_cell(std::move(port));
    connect_groups(nl, pad_name + "_net", {id},
                   tiles[static_cast<std::size_t>(tile.index)].socket, 64);
  }

  nl.validate();
  Checkpoint ckpt;
  ckpt.name = nl.name();
  ckpt.utilization = nl.total_resources();
  ckpt.netlist = std::move(nl);
  return ckpt;
}

Checkpoint Synthesizer::synthesize_module_ooc(
    const std::string& module_name) const {
  netlist::Netlist nl(module_name + ".ooc");
  presp::Rng rng(name_seed(options_.seed, nl.name()));

  // The module body plus its reconfigurable wrapper.
  auto wrapper_ids =
      emit_block(nl, "wrapper",
                 lib_.get(netlist::ComponentLibrary::kReconfWrapper).resources,
                 options_, rng);
  auto body_ids = emit_block(nl, module_name,
                             lib_.get(module_name).resources, options_, rng);
  connect_groups(nl, "body_to_wrapper", body_ids, wrapper_ids, 96);

  // OoC boundary: interface anchors standing for the partition pins.
  netlist::Cell pin;
  pin.name = "partition_pins";
  pin.kind = netlist::CellKind::kPort;
  const netlist::CellId pin_id = nl.add_cell(std::move(pin));
  connect_groups(nl, "pins_net", {pin_id}, wrapper_ids, 96);

  nl.validate();
  Checkpoint ckpt;
  ckpt.name = nl.name();
  ckpt.utilization = nl.total_resources();
  ckpt.out_of_context = true;
  ckpt.netlist = std::move(nl);
  return ckpt;
}

}  // namespace presp::synth
