#include <gtest/gtest.h>

#include "netlist/components.hpp"
#include "netlist/netlist.hpp"
#include "netlist/rtl.hpp"
#include "netlist/soc_config.hpp"
#include "util/error.hpp"

namespace presp::netlist {
namespace {

// ------------------------------------------------------------ Netlist

TEST(NetlistTest, AddAndQueryCellsNets) {
  Netlist nl("t");
  const CellId a = nl.add_cell({"a", CellKind::kLogic, {100, 50, 0, 0}, ""});
  const CellId b = nl.add_cell({"b", CellKind::kLogic, {60, 20, 1, 2}, ""});
  nl.add_net({"n", a, {b}, 32});
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.num_nets(), 1u);
  EXPECT_EQ(nl.total_resources(), (fabric::ResourceVec{160, 70, 1, 2}));
  nl.validate();
}

TEST(NetlistTest, BlackBoxCarriesNoResources) {
  Netlist nl("t");
  EXPECT_THROW(
      nl.add_cell({"bb", CellKind::kBlackBox, {10, 0, 0, 0}, "RT_1"}),
      InvalidArgument);
  const CellId bb = nl.add_cell({"bb", CellKind::kBlackBox, {}, "RT_1"});
  EXPECT_EQ(nl.cell(bb).partition, "RT_1");
  EXPECT_TRUE(nl.total_resources().is_zero());
}

TEST(NetlistTest, NetValidationCatchesDanglingRefs) {
  Netlist nl("t");
  nl.add_cell({"a", CellKind::kLogic, {10, 0, 0, 0}, ""});
  EXPECT_THROW(nl.add_net({"n", 5, {0}, 1}), InvalidArgument);
  EXPECT_THROW(nl.add_net({"n", 0, {9}, 1}), InvalidArgument);
}

// ---------------------------------------------------------- SocConfig

const char* kSoc2Text = R"(
[soc]
name = soc_2
device = vc707
rows = 3
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:conv2d,gemm
r1c1 = reconf:fft
r1c2 = reconf:sort
r2c0 = reconf:conv2d
r2c1 = empty
r2c2 = empty
)";

TEST(SocConfigTest, ParsesGridAndPayloads) {
  const SocConfig soc = SocConfig::parse(kSoc2Text);
  EXPECT_EQ(soc.name, "soc_2");
  EXPECT_EQ(soc.rows, 3);
  EXPECT_EQ(soc.tile(0, 0).type, TileType::kCpu);
  EXPECT_EQ(soc.tile(1, 0).type, TileType::kReconf);
  EXPECT_EQ(soc.tile(1, 0).accelerators,
            (std::vector<std::string>{"conv2d", "gemm"}));
  EXPECT_EQ(soc.count(TileType::kReconf), 4);
  EXPECT_EQ(soc.num_reconfigurable_partitions(), 4);
}

TEST(SocConfigTest, CpuReconfFlagParsed) {
  std::string text(kSoc2Text);
  text.replace(text.find("r0c0 = cpu"), 10, "r0c0 = cpu_reconf");
  const SocConfig soc = SocConfig::parse(text);
  EXPECT_EQ(soc.tile(0, 0).type, TileType::kCpu);
  EXPECT_TRUE(soc.tile(0, 0).cpu_in_reconfigurable_partition);
  EXPECT_EQ(soc.num_reconfigurable_partitions(), 5);
}

TEST(SocConfigTest, ValidationRules) {
  // No AUX.
  std::string text(kSoc2Text);
  text.replace(text.find("r0c2 = aux"), 10, "r0c2 = mem");
  EXPECT_THROW(SocConfig::parse(text), ConfigError);

  // Reconfigurable tile without accelerators.
  text = kSoc2Text;
  text.replace(text.find("r1c1 = reconf:fft"), 17, "r1c1 = reconf");
  EXPECT_THROW(SocConfig::parse(text), ConfigError);

  // Tile key outside the grid.
  text = std::string(kSoc2Text) + "r5c5 = empty\n";
  EXPECT_THROW(SocConfig::parse(text), ConfigError);
}

TEST(SocConfigTest, RoundTripThroughConfigText) {
  const SocConfig soc = SocConfig::parse(kSoc2Text);
  const SocConfig again = SocConfig::parse(soc.to_config_text());
  EXPECT_EQ(again.rows, soc.rows);
  EXPECT_EQ(again.tile(1, 0).accelerators, soc.tile(1, 0).accelerators);
  EXPECT_EQ(again.tile(2, 1).type, TileType::kEmpty);
}

// --------------------------------------------------- ComponentLibrary

TEST(ComponentLibraryTest, BuiltinsPresent) {
  const auto lib = ComponentLibrary::with_builtins();
  EXPECT_TRUE(lib.has(ComponentLibrary::kLeon3));
  EXPECT_TRUE(lib.has(ComponentLibrary::kDfxController));
  EXPECT_THROW(lib.get("nonexistent"), InvalidArgument);
}

TEST(ComponentLibraryTest, RegisterAndReplace) {
  auto lib = ComponentLibrary::with_builtins();
  lib.register_block({"acc", {1000, 800, 2, 4}, 96, true});
  EXPECT_EQ(lib.get("acc").resources.luts, 1000);
  lib.register_block({"acc", {2000, 800, 2, 4}, 96, true});
  EXPECT_EQ(lib.get("acc").resources.luts, 2000);
}

// ---------------------------------------------------------- elaborate

ComponentLibrary lib_with_test_accs() {
  auto lib = ComponentLibrary::with_builtins();
  lib.register_block({"conv2d", {36'741, 30'000, 16, 162}, 96, true});
  lib.register_block({"gemm", {30'617, 25'000, 32, 256}, 96, true});
  lib.register_block({"fft", {33'690, 28'000, 16, 70}, 96, true});
  lib.register_block({"sort", {20'468, 17'000, 8, 0}, 96, true});
  return lib;
}

TEST(ElaborateTest, PartitionsNamedInGridOrder) {
  const auto lib = lib_with_test_accs();
  const SocRtl rtl = elaborate(SocConfig::parse(kSoc2Text), lib);
  ASSERT_EQ(rtl.partitions().size(), 4u);
  EXPECT_EQ(rtl.partitions()[0].name, "RT_1");
  EXPECT_EQ(rtl.partitions()[0].tile_index, 3);
  EXPECT_EQ(rtl.partitions()[3].name, "RT_4");
}

TEST(ElaborateTest, StaticResourcesMatchTable2) {
  const auto lib = lib_with_test_accs();
  const SocRtl rtl = elaborate(SocConfig::parse(kSoc2Text), lib);
  const auto static_r = rtl.static_resources(lib);
  // Paper Table II: static part of the 3x3 characterization SoC = 82,267
  // LUTs. Our component calibration should land within 3%.
  EXPECT_NEAR(static_cast<double>(static_r.luts), 82'267, 82'267 * 0.03);
}

TEST(ElaborateTest, CpuTileMatchesTable2) {
  const auto lib = lib_with_test_accs();
  // CPU tile = Leon3 + socket. Paper: 41,544 (core) / 43,013 (tile).
  const auto cpu_tile =
      lib.get(ComponentLibrary::kLeon3).resources.luts +
      lib.get(ComponentLibrary::kTileSocket).resources.luts;
  EXPECT_NEAR(static_cast<double>(cpu_tile), 43'013, 43'013 * 0.03);
}

TEST(ElaborateTest, StaticWithoutCpuMatchesTable2) {
  const auto lib = lib_with_test_accs();
  std::string text(kSoc2Text);
  text.replace(text.find("r0c0 = cpu"), 10, "r0c0 = cpu_reconf");
  const SocRtl rtl = elaborate(SocConfig::parse(text), lib);
  // Paper Table II: static w/o CPU = 39,254 LUTs. Our elaboration keeps
  // the CPU tile's socket and adds its decoupler in the static part, so
  // allow 5%.
  EXPECT_NEAR(static_cast<double>(rtl.static_resources(lib).luts), 39'254,
              39'254 * 0.05);
}

TEST(ElaborateTest, PartitionDemandIsMaxOverMembers) {
  const auto lib = lib_with_test_accs();
  const SocRtl rtl = elaborate(SocConfig::parse(kSoc2Text), lib);
  // RT_1 hosts conv2d + gemm; demand must fit the larger (conv2d) plus the
  // wrapper.
  const auto demand = rtl.partition_demand(lib, 0);
  const auto wrapper =
      lib.get(ComponentLibrary::kReconfWrapper).resources;
  EXPECT_EQ(demand.luts, 36'741 + wrapper.luts);
  EXPECT_EQ(demand.dsp, 256 + wrapper.dsp);  // DSP max comes from gemm
}

TEST(ElaborateTest, UnknownAcceleratorRejected) {
  const auto lib = ComponentLibrary::with_builtins();
  EXPECT_THROW(elaborate(SocConfig::parse(kSoc2Text), lib), InvalidArgument);
}

TEST(ElaborateTest, AuxTileCarriesDfxControllerAndIcap) {
  const auto lib = lib_with_test_accs();
  const SocRtl rtl = elaborate(SocConfig::parse(kSoc2Text), lib);
  const TileRtl& aux = rtl.tiles()[2];  // r0c2
  EXPECT_EQ(aux.type, TileType::kAux);
  const auto& blocks = aux.static_blocks;
  EXPECT_NE(std::find(blocks.begin(), blocks.end(),
                      ComponentLibrary::kDfxController),
            blocks.end());
  EXPECT_NE(std::find(blocks.begin(), blocks.end(),
                      ComponentLibrary::kIcapWrapper),
            blocks.end());
}

}  // namespace
}  // namespace presp::netlist
