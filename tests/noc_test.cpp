#include <gtest/gtest.h>

#include "noc/noc.hpp"
#include "util/error.hpp"

namespace presp::noc {
namespace {

TEST(NocTest, XyRoutingColumnFirst) {
  sim::Kernel k;
  Noc noc(k, 3, 3);
  // Tile indices row-major: 0 1 2 / 3 4 5 / 6 7 8.
  EXPECT_EQ(noc.route(0, 8), (std::vector<int>{0, 1, 2, 5, 8}));
  EXPECT_EQ(noc.route(8, 0), (std::vector<int>{8, 7, 6, 3, 0}));
  EXPECT_EQ(noc.route(4, 4), (std::vector<int>{4}));
}

TEST(NocTest, DeliversPacketToDestinationMailbox) {
  sim::Kernel k;
  Noc noc(k, 2, 2);
  Packet received{};
  bool got = false;
  auto receiver = [&]() -> sim::Process {
    received = co_await noc.rx(3, Plane::kConfig).receive();
    got = true;
  };
  receiver();
  noc.send({Plane::kConfig, 0, 3, 4, 42, 99});
  k.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(received.tag, 42u);
  EXPECT_EQ(received.payload, 99u);
}

TEST(NocTest, ZeroLoadLatencyMatchesModel) {
  sim::Kernel k;
  NocOptions opt;
  opt.router_delay = 4;
  opt.cycles_per_flit = 1;
  Noc noc(k, 3, 3, opt);
  sim::Time arrival = 0;
  auto receiver = [&]() -> sim::Process {
    (void)co_await noc.rx(8, Plane::kDmaReq).receive();
    arrival = k.now();
  };
  receiver();
  noc.send({Plane::kDmaReq, 0, 8, 16, 0, 0});
  k.run();
  // 4 hops * 4 cycles + 16 flits.
  EXPECT_EQ(arrival, noc.zero_load_latency(4, 16));
  EXPECT_EQ(arrival, 32u);
}

TEST(NocTest, LinkContentionSerializesPackets) {
  sim::Kernel k;
  Noc noc(k, 1, 3);
  std::vector<sim::Time> arrivals;
  auto receiver = [&]() -> sim::Process {
    for (int i = 0; i < 2; ++i) {
      (void)co_await noc.rx(2, Plane::kDmaRsp).receive();
      arrivals.push_back(k.now());
    }
  };
  receiver();
  // Two large packets from the same source must serialize on the links.
  noc.send({Plane::kDmaRsp, 0, 2, 100, 1, 0});
  noc.send({Plane::kDmaRsp, 0, 2, 100, 2, 0});
  k.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1], arrivals[0] + 100);  // serialization spacing
}

TEST(NocTest, PlanesAreIndependent) {
  sim::Kernel k;
  Noc noc(k, 1, 3);
  std::vector<sim::Time> arrivals(2);
  auto rcv = [&](Plane plane, int slot) -> sim::Process {
    (void)co_await noc.rx(2, plane).receive();
    arrivals[static_cast<std::size_t>(slot)] = k.now();
  };
  rcv(Plane::kDmaRsp, 0);
  rcv(Plane::kConfig, 1);
  // A huge DMA packet must not delay the config plane.
  noc.send({Plane::kDmaRsp, 0, 2, 1'000, 0, 0});
  noc.send({Plane::kConfig, 0, 2, 1, 0, 0});
  k.run();
  EXPECT_GT(arrivals[0], 1'000u);
  EXPECT_LT(arrivals[1], 20u);
}

TEST(NocTest, CrossTrafficDoesNotBlockDisjointPaths) {
  sim::Kernel k;
  Noc noc(k, 2, 2);
  std::vector<sim::Time> arrivals(2);
  auto rcv = [&](int tile, int slot) -> sim::Process {
    (void)co_await noc.rx(tile, Plane::kDmaReq).receive();
    arrivals[static_cast<std::size_t>(slot)] = k.now();
  };
  rcv(1, 0);
  rcv(2, 1);
  noc.send({Plane::kDmaReq, 0, 1, 500, 0, 0});  // east link of tile 0
  noc.send({Plane::kDmaReq, 3, 2, 500, 0, 0});  // west link of tile 3
  k.run();
  // Disjoint links: both complete in one serialization time.
  EXPECT_LT(arrivals[0], 520u);
  EXPECT_LT(arrivals[1], 520u);
}

TEST(NocTest, StatsAccumulatePerPlane) {
  sim::Kernel k;
  Noc noc(k, 2, 2);
  auto sink = [&](Plane p) -> sim::Process {
    while (true) (void)co_await noc.rx(3, p).receive();
  };
  sink(Plane::kDmaReq);
  noc.send({Plane::kDmaReq, 0, 3, 10, 0, 0});
  noc.send({Plane::kDmaReq, 0, 3, 10, 0, 0});
  k.run();
  EXPECT_EQ(noc.stats(Plane::kDmaReq).packets, 2u);
  EXPECT_EQ(noc.stats(Plane::kDmaReq).flits, 20u);
  EXPECT_GT(noc.stats(Plane::kDmaReq).max_latency, 0u);
  EXPECT_EQ(noc.stats(Plane::kConfig).packets, 0u);
}

TEST(NocTest, RejectsBadArguments) {
  sim::Kernel k;
  Noc noc(k, 2, 2);
  EXPECT_THROW(noc.route(0, 7), InvalidArgument);
  EXPECT_THROW(noc.send({Plane::kConfig, 0, 1, 0, 0, 0}), InvalidArgument);
  EXPECT_THROW(noc.rx(9, Plane::kConfig), InvalidArgument);
}

}  // namespace
}  // namespace presp::noc
