#include <gtest/gtest.h>

#include "soc/soc.hpp"
#include "util/error.hpp"

namespace presp::soc {
namespace {

const char* kSocText = R"(
[soc]
name = soc_sim
device = vc707
rows = 2
cols = 2

[tiles]
r0c0 = cpu
r0c1 = mem
r1c0 = aux
r1c1 = reconf:acc_a,acc_b
)";

AcceleratorRegistry test_registry() {
  AcceleratorRegistry registry;
  AcceleratorSpec a;
  a.name = "acc_a";
  a.luts = 20'000;
  a.latency.items_per_beat = 1;
  a.latency.ii = 4;
  a.latency.startup_cycles = 50;
  a.latency.words_in_per_item = 1.0;
  a.latency.words_out_per_item = 1.0;
  registry.add(a);
  AcceleratorSpec b = a;
  b.name = "acc_b";
  b.luts = 10'000;
  b.latency.ii = 2;
  registry.add(b);
  return registry;
}

class SocFixture : public ::testing::Test {
 protected:
  SocFixture()
      : registry_(test_registry()),
        soc_(netlist::SocConfig::parse(kSocText), registry_) {}

  /// Loads a module into the reconfigurable tile through the proper
  /// decouple / fabric / recouple sequence, bypassing the DFXC.
  void force_load(int tile, const std::string& module) {
    auto proc = [&]() -> sim::Process {
      co_await soc_.cpu().write_reg(tile, kRegDecouple, 1);
      soc_.load_module(tile, module);
      co_await soc_.cpu().write_reg(tile, kRegDecouple, 0);
    };
    proc();
    soc_.kernel().run();
  }

  AcceleratorRegistry registry_;
  Soc soc_;
};

TEST_F(SocFixture, TopologyResolved) {
  EXPECT_EQ(soc_.aux_tile_index(), 2);
  EXPECT_EQ(soc_.cpu().index(), 0);
  ASSERT_EQ(soc_.reconf_tiles().size(), 1u);
  EXPECT_EQ(soc_.reconf_tiles()[0]->index(), 3);
  EXPECT_EQ(soc_.reconf_tiles()[0]->partition(), "RT_1");
  EXPECT_THROW(soc_.reconf_tile(0), InvalidArgument);
}

TEST_F(SocFixture, RegisterWriteReadRoundTrip) {
  std::uint64_t readback = 0;
  auto proc = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, kRegSrc, 0xABCD);
    readback = co_await soc_.cpu().read_reg(3, kRegSrc);
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(readback, 0xABCDu);
}

TEST_F(SocFixture, ModuleSwapRequiresDecoupling) {
  // Swapping while coupled violates the DPR sequence and must trip the
  // decoupler assertion.
  EXPECT_THROW(soc_.load_module(3, "acc_a"), LogicError);
  force_load(3, "acc_a");
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
}

TEST_F(SocFixture, CommandWhileEmptyOrDecoupledRejected) {
  auto& tile = soc_.reconf_tile(3);
  auto proc = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, kRegCmd, 1);  // no module loaded
    co_await soc_.cpu().write_reg(3, kRegDecouple, 1);
    co_await soc_.cpu().write_reg(3, kRegCmd, 1);  // decoupled
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(tile.rejected_commands(), 2u);
  EXPECT_EQ(tile.invocations(), 0u);
}

TEST_F(SocFixture, AcceleratorRunRaisesDoneInterrupt) {
  force_load(3, "acc_a");
  const std::uint64_t buf = soc_.memory().allocate("buf", 1 << 16);
  std::uint64_t irq_payload = 0;
  auto proc = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, kRegSrc, buf);
    co_await soc_.cpu().write_reg(3, kRegDst, buf + 32'768);
    co_await soc_.cpu().write_reg(3, kRegItems, 1'000);
    co_await soc_.cpu().write_reg(3, kRegCmd, 1);
    irq_payload = co_await soc_.cpu().irq_from(3).receive();
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(irq_payload, kIrqAccelDone);
  EXPECT_EQ(soc_.reconf_tile(3).invocations(), 1u);
  EXPECT_GT(soc_.reconf_tile(3).busy_cycles(), 1'000 * 4);  // >= compute
}

TEST_F(SocFixture, FunctionalModelTransformsMemory) {
  AcceleratorRegistry registry = test_registry();
  AcceleratorSpec doubler = registry.get("acc_a");
  doubler.compute = [](MainMemory& mem, const AccelTask& task) {
    for (long long i = 0; i < task.items; ++i) {
      const auto v = mem.read_u32(task.src + static_cast<std::uint64_t>(i) * 4);
      mem.write_u32(task.dst + static_cast<std::uint64_t>(i) * 4, v * 2);
    }
  };
  registry.add(doubler);
  Soc soc(netlist::SocConfig::parse(kSocText), registry);

  const std::uint64_t src = soc.memory().allocate("src", 4096);
  const std::uint64_t dst = soc.memory().allocate("dst", 4096);
  for (int i = 0; i < 64; ++i)
    soc.memory().write_u32(src + static_cast<std::uint64_t>(i) * 4,
                           static_cast<std::uint32_t>(i));
  auto proc = [&]() -> sim::Process {
    co_await soc.cpu().write_reg(3, kRegDecouple, 1);
    soc.load_module(3, "acc_a");
    co_await soc.cpu().write_reg(3, kRegDecouple, 0);
    co_await soc.cpu().write_reg(3, kRegSrc, src);
    co_await soc.cpu().write_reg(3, kRegDst, dst);
    co_await soc.cpu().write_reg(3, kRegItems, 64);
    co_await soc.cpu().write_reg(3, kRegCmd, 1);
    (void)co_await soc.cpu().irq_from(3).receive();
  };
  proc();
  soc.kernel().run();
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(soc.memory().read_u32(dst + static_cast<std::uint64_t>(i) * 4),
              static_cast<std::uint32_t>(i) * 2);
}

TEST_F(SocFixture, DfxControllerReconfiguresViaIcap) {
  // Register a bitstream blob and trigger the DFXC by register writes.
  const std::size_t bytes = 300'000;
  const std::uint64_t addr = soc_.memory().allocate("pbs", bytes);
  soc_.memory().attach_blob(addr, BitstreamBlob{"acc_b", 3, bytes, 0});

  std::uint64_t irq_payload = 0;
  sim::Time start = 0;
  sim::Time end = 0;
  auto proc = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, kRegDecouple, 1);
    start = soc_.kernel().now();
    co_await soc_.cpu().write_reg(2, kRegDfxcBsAddr, addr);
    co_await soc_.cpu().write_reg(2, kRegDfxcBsBytes, bytes);
    co_await soc_.cpu().write_reg(2, kRegDfxcTarget, 3);
    co_await soc_.cpu().write_reg(2, kRegDfxcTrigger, 1);
    irq_payload = co_await soc_.cpu().irq_from(2).receive();
    end = soc_.kernel().now();
    co_await soc_.cpu().write_reg(3, kRegDecouple, 0);
  };
  proc();
  soc_.kernel().run();

  EXPECT_EQ(irq_payload & 0xFF, kIrqReconfDone);
  EXPECT_EQ(irq_payload >> 8, 3u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_b");
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);
  EXPECT_EQ(soc_.aux().icap_bytes(), bytes);
  // Latency at least the ICAP streaming time.
  const auto icap_cycles = static_cast<sim::Time>(
      static_cast<double>(bytes) / soc_.options().icap_bytes_per_cycle);
  EXPECT_GE(end - start, icap_cycles);
}

TEST_F(SocFixture, EnergyAccountsConfiguredAndActivePower) {
  const double idle0 = soc_.energy().total_joules();
  force_load(3, "acc_a");
  auto proc = [&]() -> sim::Process {
    co_await sim::Delay(soc_.kernel(), 1'000'000);
  };
  proc();
  soc_.kernel().run();
  const auto breakdown = soc_.energy().breakdown();
  EXPECT_GT(breakdown.configured, 0.0);
  EXPECT_GT(breakdown.baseline, 0.0);
  EXPECT_GT(soc_.energy().total_joules(), idle0);
}

TEST(SocMultiMemTest, DmaInterleavesAcrossMemTiles) {
  const char* text = R"(
[soc]
name = twomem
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a
r1c1 = mem
r1c2 = empty
)";
  AcceleratorRegistry registry = test_registry();
  Soc soc(netlist::SocConfig::parse(text), registry);
  ASSERT_EQ(soc.mem_tiles().size(), 2u);

  // Issue accelerator runs whose buffers land on different 4 KB pages:
  // both controllers must see traffic.
  const auto buf = soc.memory().allocate("buf", 1 << 20);
  auto proc = [&]() -> sim::Process {
    co_await soc.cpu().write_reg(3, kRegDecouple, 1);
    soc.load_module(3, "acc_a");
    co_await soc.cpu().write_reg(3, kRegDecouple, 0);
    for (int i = 0; i < 4; ++i) {
      co_await soc.cpu().write_reg(3, kRegSrc,
                                   buf + static_cast<std::uint64_t>(i) * 4096);
      co_await soc.cpu().write_reg(3, kRegDst, buf + (1 << 19));
      co_await soc.cpu().write_reg(3, kRegItems, 256);
      co_await soc.cpu().write_reg(3, kRegCmd, 1);
      (void)co_await soc.cpu().irq_from(3).receive();
    }
  };
  proc();
  soc.kernel().run();
  EXPECT_GT(soc.mem_tiles()[0]->requests(), 0u);
  EXPECT_GT(soc.mem_tiles()[1]->requests(), 0u);
}

TEST_F(SocFixture, UnsafeDecoupleWhileRunningCounted) {
  force_load(3, "acc_a");
  const auto buf = soc_.memory().allocate("ubuf", 1 << 16);
  auto proc = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, kRegSrc, buf);
    co_await soc_.cpu().write_reg(3, kRegDst, buf + 32'768);
    co_await soc_.cpu().write_reg(3, kRegItems, 2'000);
    co_await soc_.cpu().write_reg(3, kRegCmd, 1);
    // Violate the sequencing rule: decouple mid-run.
    co_await sim::Delay(soc_.kernel(), 100);
    co_await soc_.cpu().write_reg(3, kRegDecouple, 1);
    co_await soc_.cpu().write_reg(3, kRegDecouple, 0);
    (void)co_await soc_.cpu().irq_from(3).receive();
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(soc_.reconf_tile(3).unsafe_decouples(), 1u);
}

TEST(MemoryTest, RegionAllocationAndBounds) {
  MainMemory mem(MemoryOptions{1 << 20, 28, 8});
  const auto a = mem.allocate("a", 1024);
  const auto b = mem.allocate("b", 1024);
  EXPECT_GE(b, a + 1024);
  EXPECT_EQ(mem.region("a"), a);
  EXPECT_EQ(mem.region_size("b"), 1024u);
  EXPECT_THROW(mem.allocate("a", 16), InvalidArgument);   // duplicate
  EXPECT_THROW(mem.allocate("c", 2 << 20), InvalidArgument);  // too big
  EXPECT_THROW(mem.bytes(1 << 20, 1), InvalidArgument);
  EXPECT_THROW(mem.region("nope"), InvalidArgument);
}

TEST(MemoryTest, WordAccessRoundTrip) {
  MainMemory mem(MemoryOptions{1 << 16, 28, 8});
  const auto a = mem.allocate("a", 64);
  mem.write_u32(a, 0xDEADBEEF);
  EXPECT_EQ(mem.read_u32(a), 0xDEADBEEFu);
}

TEST(MemoryTest, StreamCyclesModel) {
  MainMemory mem(MemoryOptions{1 << 16, 30, 8});
  EXPECT_EQ(mem.stream_cycles(0), 0);
  EXPECT_EQ(mem.stream_cycles(8), 31);
  EXPECT_EQ(mem.stream_cycles(80), 40);
}

}  // namespace
}  // namespace presp::soc
