// Race detector: vector clocks, FastTrack epoch checks, the Eraser-style
// lockset fallback, the lock-order pass, and the seeded corpus sweep
// (every racy workload detected with the right rule and both access
// sites; every clean workload silent across seeds).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "lint/cycle.hpp"
#include "racecheck/annot.hpp"
#include "racecheck/corpus.hpp"
#include "racecheck/detector.hpp"
#include "racecheck/session.hpp"
#include "racecheck/vector_clock.hpp"

namespace presp::racecheck {
namespace {

// ------------------------------------------------------- vector clocks

TEST(VectorClockTest, JoinIsComponentwiseMax) {
  VectorClock a;
  a.set(0, 3);
  a.set(2, 1);
  VectorClock b;
  b.set(0, 1);
  b.set(1, 5);
  a.join(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 5u);
  EXPECT_EQ(a.get(2), 1u);
}

TEST(VectorClockTest, CoversEpochAndVector) {
  VectorClock vc;
  vc.set(1, 4);
  EXPECT_TRUE(vc.covers(Epoch{1, 4}));
  EXPECT_TRUE(vc.covers(Epoch{1, 3}));
  EXPECT_FALSE(vc.covers(Epoch{1, 5}));
  EXPECT_FALSE(vc.covers(Epoch{0, 1}));

  VectorClock other;
  other.set(1, 4);
  EXPECT_TRUE(vc.covers(other));
  other.set(0, 1);
  EXPECT_FALSE(vc.covers(other));
}

TEST(VectorClockTest, EpochValidity) {
  EXPECT_FALSE(Epoch{}.valid());
  EXPECT_TRUE((Epoch{0, 1}).valid());
}

// ----------------------------------------------------- shared cycle DFS

TEST(CycleTest, FindsClosedWalkAndHandlesAcyclic) {
  // 0 -> 1 -> 2 -> 0 plus an acyclic tail.
  const std::vector<std::vector<int>> cyclic{{1}, {2}, {0}, {0}};
  const std::vector<int> cycle = lint::find_cycle(cyclic);
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());

  const std::vector<std::vector<int>> acyclic{{1}, {2}, {}};
  EXPECT_TRUE(lint::find_cycle(acyclic).empty());

  const std::vector<std::vector<int>> self{{0}};
  const std::vector<int> loop = lint::find_cycle(self);
  ASSERT_EQ(loop.size(), 2u);
  EXPECT_EQ(loop[0], loop[1]);
}

// -------------------------------------------------- detector unit tests

// Two sibling tasks on ONE OS thread (frames nest serially) with no edge
// between them: the second task's snapshot predates the first task's
// write, so FastTrack must flag the pair even though the real execution
// was serial. This is the schedule-independence property in miniature.
TEST(DetectorTest, FlagsUnorderedSiblingTasks) {
  Detector detector;
  int x = 0;
  const void* task_a = &x;
  int y = 0;
  const void* task_b = &y;
  detector.task_create(task_a);
  detector.task_create(task_b);
  detector.task_begin(task_a, "a");
  detector.write(&x, "x", "test.cpp", 1);
  detector.task_end(task_a);
  detector.task_begin(task_b, "b");
  detector.write(&x, "x", "test.cpp", 2);
  detector.task_end(task_b);
  const auto diags = detector.finish();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "race.data-race");
  // Both access sites must be quoted in the message.
  EXPECT_NE(diags[0].message.find("test.cpp:1"), std::string::npos);
  EXPECT_NE(diags[0].message.find("test.cpp:2"), std::string::npos);
  EXPECT_EQ(detector.stats().data_races, 1u);
}

// The same shape with a publish/consume pair is ordered and clean.
TEST(DetectorTest, PublishConsumeOrdersSiblingTasks) {
  Detector detector;
  int x = 0;
  int chan = 0;
  const void* task_a = &x;
  int y = 0;
  const void* task_b = &y;
  detector.task_create(task_a);
  detector.task_begin(task_a, "a");
  detector.write(&x, "x", "test.cpp", 1);
  detector.atomic_publish(&chan, "chan");
  detector.task_end(task_a);
  detector.task_create(task_b);
  detector.task_begin(task_b, "b");
  detector.atomic_consume(&chan, "chan");
  detector.write(&x, "x", "test.cpp", 2);
  detector.task_end(task_b);
  EXPECT_TRUE(detector.finish().empty());
}

// Lock acquire/release carries happens-before between tasks, and a
// consistent lockset stays non-empty.
TEST(DetectorTest, LockOrdersAccessesAndKeepsLockset) {
  Detector detector;
  int x = 0;
  int lock = 0;
  int t1 = 0;
  int t2 = 0;
  detector.task_create(&t1);
  detector.task_begin(&t1, "a");
  detector.acquire_lock(&lock, "m", "test.cpp", 1);
  detector.write(&x, "x", "test.cpp", 2);
  detector.release_lock(&lock);
  detector.task_end(&t1);
  detector.task_create(&t2);
  detector.task_begin(&t2, "b");
  detector.acquire_lock(&lock, "m", "test.cpp", 3);
  detector.write(&x, "x", "test.cpp", 4);
  detector.release_lock(&lock);
  detector.task_end(&t2);
  EXPECT_TRUE(detector.finish().empty());
}

// HB-ordered writes under two different locks: no data race, but the
// lockset pass must warn about the inconsistent discipline.
TEST(DetectorTest, LocksetWarnsOnInconsistentDiscipline) {
  Detector detector;
  int x = 0;
  int lock_a = 0;
  int lock_b = 0;
  int chan = 0;
  int t1 = 0;
  int t2 = 0;
  detector.task_create(&t1);
  detector.task_begin(&t1, "a");
  detector.acquire_lock(&lock_a, "la", "test.cpp", 1);
  detector.write(&x, "x", "test.cpp", 2);
  detector.release_lock(&lock_a);
  detector.atomic_publish(&chan, "chan");
  detector.task_end(&t1);
  detector.task_create(&t2);
  detector.task_begin(&t2, "b");
  detector.atomic_consume(&chan, "chan");
  detector.acquire_lock(&lock_b, "lb", "test.cpp", 3);
  detector.write(&x, "x", "test.cpp", 4);
  detector.release_lock(&lock_b);
  detector.task_end(&t2);
  const auto diags = detector.finish();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "race.lockset");
  EXPECT_EQ(diags[0].severity, lint::Severity::kWarning);
}

// Declared nesting (the coroutine-domain API) plus a conflicting dynamic
// edge must produce a race.lock-order cycle naming both locks.
TEST(DetectorTest, LockOrderCycleFromDeclaredAndDynamicEdges) {
  Detector detector;
  int lock_a = 0;
  int lock_b = 0;
  detector.declare_nesting("la", "lb");
  detector.acquire_lock(&lock_b, "lb", "test.cpp", 1);
  detector.acquire_lock(&lock_a, "la", "test.cpp", 2);
  detector.release_lock(&lock_a);
  detector.release_lock(&lock_b);
  const auto diags = detector.finish();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "race.lock-order");
  EXPECT_NE(diags[0].message.find("la"), std::string::npos);
  EXPECT_NE(diags[0].message.find("lb"), std::string::npos);
}

TEST(DetectorTest, FinishIsIdempotent) {
  Detector detector;
  int lock_a = 0;
  int lock_b = 0;
  detector.declare_nesting("la", "lb");
  detector.declare_nesting("lb", "la");
  (void)lock_a;
  (void)lock_b;
  const auto first = detector.finish();
  const auto second = detector.finish();
  EXPECT_EQ(first.size(), second.size());
}

// ------------------------------------------------------ session gating

TEST(SessionTest, AnnotationsAreNoOpsWithoutSession) {
  ASSERT_EQ(Session::current(), nullptr);
  EXPECT_FALSE(enabled());
  int x = 0;
  PRESP_RC_WRITE(&x, "gating");  // must not crash or allocate state
  annot::OnSteal();
}

TEST(SessionTest, OnlyOneSessionInstallsAtATime) {
  if (!hooks_compiled()) GTEST_SKIP() << "racecheck compiled out";
  Session first;
  Session second;
  EXPECT_TRUE(first.install());
  EXPECT_TRUE(first.installed());
  EXPECT_FALSE(second.install());
  EXPECT_TRUE(first.install());  // re-install of the holder is idempotent
  first.uninstall();
  EXPECT_EQ(Session::current(), nullptr);
  EXPECT_TRUE(second.install());
  second.uninstall();
}

// ------------------------------------------------------- corpus sweep

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!hooks_compiled()) GTEST_SKIP() << "racecheck compiled out";
  }
};

TEST_F(CorpusTest, EveryRacyWorkloadIsDetectedWithItsRule) {
  for (const Workload& workload : corpus()) {
    if (!workload.racy) continue;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const CorpusRun run = run_workload(workload, seed);
      EXPECT_TRUE(has_rule(run.diags, workload.expect_rule))
          << workload.name << " missed " << workload.expect_rule
          << " at seed " << seed;
    }
  }
}

TEST_F(CorpusTest, EveryCleanWorkloadIsSilentAcrossSeeds) {
  for (const Workload& workload : corpus()) {
    if (workload.racy) continue;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const CorpusRun run = run_workload(workload, seed);
      EXPECT_TRUE(run.diags.empty())
          << workload.name << " reported at seed " << seed << ":\n"
          << lint::render_text(run.diags);
    }
  }
}

TEST_F(CorpusTest, DataRaceReportsQuoteBothAccessSites) {
  const Workload* workload = find_workload("racy-read-write");
  ASSERT_NE(workload, nullptr);
  const CorpusRun run = run_workload(*workload, 1);
  ASSERT_TRUE(has_rule(run.diags, "race.data-race"));
  for (const lint::Diagnostic& diag : run.diags) {
    if (diag.rule != "race.data-race") continue;
    // Both sites carry file:line and the annotation-stack label.
    EXPECT_NE(diag.message.find("corpus.cpp"), std::string::npos);
    EXPECT_NE(diag.message.find("unordered with"), std::string::npos);
    EXPECT_NE(diag.message.find("corpus.writer"), std::string::npos);
    EXPECT_NE(diag.message.find("corpus.reader"), std::string::npos);
  }
}

TEST_F(CorpusTest, VerdictIsReproducibleFromSeedAlone) {
  const Workload* workload = find_workload("racy-counter");
  ASSERT_NE(workload, nullptr);
  const CorpusRun first = run_workload(*workload, 42);
  const CorpusRun again = run_workload(*workload, 42);
  ASSERT_FALSE(first.diags.empty());
  EXPECT_EQ(first.diags.size(), again.diags.size());
  EXPECT_EQ(first.diags[0].rule, again.diags[0].rule);
  EXPECT_EQ(first.diags[0].loc.file, again.diags[0].loc.file);
  EXPECT_EQ(first.diags[0].loc.line, again.diags[0].loc.line);
  // A different seed perturbs the schedule but not the verdict.
  const CorpusRun other = run_workload(*workload, 1337);
  EXPECT_TRUE(has_rule(other.diags, "race.data-race"));
}

TEST_F(CorpusTest, SarifRenderingCarriesRaceRules) {
  const Workload* workload = find_workload("racy-lock-order");
  ASSERT_NE(workload, nullptr);
  const CorpusRun run = run_workload(*workload, 1);
  const std::string sarif =
      lint::render_sarif(run.diags, "presp-racecheck");
  EXPECT_NE(sarif.find("\"presp-racecheck\""), std::string::npos);
  EXPECT_NE(sarif.find("race.lock-order"), std::string::npos);
}

TEST_F(CorpusTest, StatsCountInstrumentationTraffic) {
  const Workload* workload = find_workload("racy-counter");
  ASSERT_NE(workload, nullptr);
  const CorpusRun run = run_workload(*workload, 3);
  EXPECT_GT(run.stats.events, 0u);
  EXPECT_GE(run.stats.accesses, 8u);
  EXPECT_GE(run.stats.tasks, 8u);
  EXPECT_GT(run.stats.data_races, 0u);
}

// Pool-owned sessions: Options::racecheck wires a session around the
// pool's lifetime and racecheck_report() surfaces the findings.
TEST_F(CorpusTest, PoolOwnedSessionReportsRaces) {
  exec::ThreadPool::Options options;
  options.threads = 2;
  options.racecheck = true;
  options.racecheck_seed = 5;
  exec::ThreadPool pool(options);
  std::atomic<int> value{0};
  pool.submit([&value] {
    PRESP_RC_WRITE(&value, "pool-owned");
    value.store(1, std::memory_order_relaxed);
  });
  pool.submit([&value] {
    PRESP_RC_WRITE(&value, "pool-owned");
    value.store(2, std::memory_order_relaxed);
  });
  pool.wait_idle();
  const auto diags = pool.racecheck_report();
  EXPECT_TRUE(has_rule(diags, "race.data-race"))
      << lint::render_text(diags);
}

}  // namespace
}  // namespace presp::racecheck
