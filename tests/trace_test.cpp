// Tests for the cross-layer tracing subsystem: ring-buffer overflow and
// drop accounting, deterministic sim-domain event streams at any exec
// width, the Chrome-trace JSON golden shape plus round-trip parsing, the
// summarizer, metrics, and concurrent host-side emitters (this test also
// runs under TSan in tier-1).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "wami/app.hpp"

namespace presp {
namespace {

using trace::Category;
using trace::ClockDomain;
using trace::Phase;
using trace::TraceConfig;
using trace::TraceEvent;
using trace::TraceReport;
using trace::TraceSession;

TraceConfig config_with(std::uint32_t categories,
                        std::size_t capacity = std::size_t{1} << 19) {
  TraceConfig config;
  config.categories = categories;
  config.buffer_capacity = capacity;
  return config;
}

TEST(TraceSessionTest, DisabledByDefault) {
  EXPECT_FALSE(trace::active());
  EXPECT_FALSE(trace::enabled(Category::kExec));
  // Emitting without a session is a cheap no-op, not an error.
  trace::instant(Category::kExec, "ignored");
  trace::counter(Category::kExec, "ignored", 1.0);
}

TEST(TraceSessionTest, RecordsSpansInstantsAndCounters) {
  auto& session = TraceSession::instance();
  session.start(config_with(trace::kAllCategories));
  trace::set_thread_name("tester");
  {
    const trace::TraceScope span(Category::kExec, "outer");
    trace::instant(Category::kExec, "tick", 42.0);
    trace::counter(Category::kExec, "depth", 3.0);
  }
  trace::sim_begin(Category::kRuntime, "fetch", 100, 5, 2048.0);
  trace::sim_end(Category::kRuntime, "fetch", 250, 5);
  const TraceReport report = session.stop();

  EXPECT_EQ(report.dropped, 0u);
  ASSERT_EQ(report.events.size(), 6u);
  // Sorted host-domain first, then sim-domain.
  EXPECT_EQ(report.events[0].name, "outer");
  EXPECT_EQ(report.events[0].phase, Phase::kBegin);
  EXPECT_EQ(report.events[3].phase, Phase::kEnd);
  EXPECT_EQ(report.events[4].clock, ClockDomain::kSim);
  EXPECT_EQ(report.events[4].timestamp, 100u);
  EXPECT_EQ(report.events[4].value, 2048.0);
  EXPECT_EQ(report.events[5].timestamp, 250u);
  ASSERT_FALSE(report.thread_names.empty());
  EXPECT_EQ(report.thread_names[0], "tester");
}

TEST(TraceSessionTest, CategoryMaskFilters) {
  auto& session = TraceSession::instance();
  session.start(config_with(static_cast<std::uint32_t>(Category::kNoc)));
  EXPECT_TRUE(trace::enabled(Category::kNoc));
  EXPECT_FALSE(trace::enabled(Category::kExec));
  trace::instant(Category::kNoc, "kept");
  trace::instant(Category::kExec, "filtered");
  const TraceReport report = session.stop();
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].name, "kept");
  EXPECT_FALSE(trace::active());
}

TEST(TraceSessionTest, OverflowDropsAndCounts) {
  auto& session = TraceSession::instance();
  session.start(config_with(trace::kAllCategories, 16));
  for (int i = 0; i < 100; ++i)
    trace::instant(Category::kApp, "e" + std::to_string(i));
  const TraceReport report = session.stop();
  EXPECT_EQ(report.events.size(), 16u);
  EXPECT_EQ(report.dropped, 84u);
  // The retained prefix is the oldest events, in emission order.
  EXPECT_EQ(report.events.front().name, "e0");
  EXPECT_EQ(report.events.back().name, "e15");
}

TEST(TraceSessionTest, RestartDiscardsEarlierSession) {
  auto& session = TraceSession::instance();
  session.start(config_with(trace::kAllCategories));
  trace::instant(Category::kApp, "old");
  session.start(config_with(trace::kAllCategories));
  trace::instant(Category::kApp, "new");
  const TraceReport report = session.stop();
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].name, "new");
}

TEST(TraceSessionTest, ConcurrentEmittersLoseNothing) {
  auto& session = TraceSession::instance();
  session.start(config_with(trace::kAllCategories));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      trace::set_thread_name("emitter-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i)
        trace::counter(Category::kExec, "c", static_cast<double>(i));
    });
  for (auto& thread : threads) thread.join();
  const TraceReport report = session.stop();
  EXPECT_EQ(report.events.size() + report.dropped,
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(report.dropped, 0u);
  // Per-thread sequence numbers stay strictly increasing after the merge.
  std::vector<std::uint64_t> last_seq(kThreads + 1, 0);
  for (const TraceEvent& event : report.events) {
    ASSERT_LT(event.tid, last_seq.size());
    if (last_seq[event.tid] != 0)
      EXPECT_GT(event.seq, last_seq[event.tid]);
    last_seq[event.tid] = event.seq;
  }
}

TEST(TraceCategoryTest, ParseAndToString) {
  EXPECT_EQ(trace::parse_categories("all"), trace::kAllCategories);
  EXPECT_EQ(trace::parse_categories("default"), trace::kDefaultCategories);
  EXPECT_EQ(trace::parse_categories("noc,exec"),
            static_cast<std::uint32_t>(Category::kNoc) |
                static_cast<std::uint32_t>(Category::kExec));
  EXPECT_THROW(trace::parse_categories("bogus"), ConfigError);
  EXPECT_STREQ(trace::to_string(Category::kRuntime), "runtime");
}

// ------------------------------------------------------------ export

/// Hand-built two-domain report with a known shape.
TraceReport golden_report() {
  TraceReport report;
  report.config.sim_clock_mhz = 100.0;  // 1 cycle = 0.01 us
  report.thread_names = {"main"};
  report.sim_track_names[4] = "tile 4";
  const auto ev = [](std::string name, Phase phase, ClockDomain clock,
                     std::uint64_t ts, std::uint32_t track, double value) {
    TraceEvent e;
    e.name = std::move(name);
    e.category = clock == ClockDomain::kSim ? Category::kRuntime
                                            : Category::kExec;
    e.phase = phase;
    e.clock = clock;
    e.timestamp = ts;
    e.track = track;
    e.value = value;
    return e;
  };
  report.events = {
      ev("work", Phase::kBegin, ClockDomain::kHost, 1'000, 0, 0.0),
      ev("work", Phase::kEnd, ClockDomain::kHost, 5'000, 0, 0.0),
      ev("icap", Phase::kBegin, ClockDomain::kSim, 200, 4, 4096.0),
      ev("icap", Phase::kEnd, ClockDomain::kSim, 700, 4, 0.0),
      ev("retry", Phase::kInstant, ClockDomain::kSim, 400, 4, 0.0),
      ev("depth", Phase::kCounter, ClockDomain::kSim, 300, 4, 2.0),
  };
  return report;
}

TEST(ChromeTraceTest, GoldenJsonShape) {
  const std::string json = trace::chrome_trace_json(golden_report());
  // Metadata names both clock-domain processes and the named tracks.
  EXPECT_NE(json.find("\"host (wall clock)\""), std::string::npos);
  EXPECT_NE(json.find("\"sim (virtual time)\""), std::string::npos);
  EXPECT_NE(json.find("\"tile 4\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  // Host ns -> us and sim cycles -> us conversions.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);   // 1000 ns
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);   // 200 cyc
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
}

TEST(ChromeTraceTest, RoundTripThroughParser) {
  const auto report = golden_report();
  const trace::ParsedTrace parsed =
      trace::parse_chrome_trace(trace::chrome_trace_json(report));
  ASSERT_EQ(parsed.events.size(), report.events.size());
  EXPECT_EQ(parsed.dropped, 0u);
  EXPECT_EQ(parsed.sim_clock_mhz, 100.0);
  EXPECT_EQ(parsed.process_names.at(trace::kHostPid), "host (wall clock)");
  int begins = 0;
  int counters = 0;
  for (const auto& event : parsed.events) {
    if (event.ph == "B") ++begins;
    if (event.ph == "C") ++counters;
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(counters, 1);
  EXPECT_THROW(trace::parse_chrome_trace("{not json"), ConfigError);
}

TEST(ChromeTraceTest, SummaryComputesSelfTimeAndExtents) {
  const trace::TraceSummary summary =
      trace::summarize(trace::parse_chrome_trace(
          trace::chrome_trace_json(golden_report())));
  EXPECT_EQ(summary.total_events, 6u);
  EXPECT_EQ(summary.spans, 2u);
  EXPECT_EQ(summary.instants, 1u);
  EXPECT_EQ(summary.counters, 1u);
  EXPECT_EQ(summary.unmatched, 0u);
  EXPECT_DOUBLE_EQ(summary.host_extent_us, 5.0);
  EXPECT_DOUBLE_EQ(summary.sim_extent_us, 7.0);
  ASSERT_EQ(summary.top_spans.size(), 2u);
  // "work" is 4 us, "icap" 5 us; both leaves, so self == total.
  EXPECT_EQ(summary.top_spans[0].name, "icap");
  EXPECT_DOUBLE_EQ(summary.top_spans[0].self_us, 5.0);
  EXPECT_DOUBLE_EQ(summary.top_spans[1].total_us, 4.0);
  const std::string rendered = trace::render_summary(summary);
  EXPECT_NE(rendered.find("dropped events: 0"), std::string::npos);
}

// ------------------------------------------------------ determinism

/// Sim-domain events of a traced WAMI run. Host-domain noise (exec pool
/// spans, worker thread names) is excluded: only virtual-time events are
/// required to be deterministic.
std::vector<std::string> sim_event_signature(int exec_noise_threads) {
  auto& session = TraceSession::instance();
  session.start(config_with(trace::kAllCategories));

  // Unrelated concurrent host emitters must not perturb the sim stream.
  std::vector<std::thread> noise;
  for (int t = 0; t < exec_noise_threads; ++t)
    noise.emplace_back([] {
      for (int i = 0; i < 500; ++i)
        trace::counter(Category::kExec, "noise", static_cast<double>(i));
    });

  wami::WamiAppOptions options;
  options.frames = 2;
  options.workload = {32, 32};
  options.lk_iterations = 1;
  wami::WamiApp app('X', options);
  const auto result = app.run();
  EXPECT_TRUE(result.all_verified);

  for (auto& thread : noise) thread.join();
  const TraceReport report = session.stop();
  EXPECT_EQ(report.dropped, 0u);

  std::vector<std::string> signature;
  for (const TraceEvent& event : report.events) {
    if (event.clock != ClockDomain::kSim) continue;
    signature.push_back(std::to_string(event.timestamp) + ":" +
                        std::to_string(event.track) + ":" + event.name +
                        ":" + std::to_string(static_cast<int>(event.phase)));
  }
  return signature;
}

TEST(TraceDeterminismTest, SimStreamIdenticalUnderHostConcurrency) {
  const auto quiet = sim_event_signature(0);
  const auto noisy = sim_event_signature(4);
  ASSERT_FALSE(quiet.empty());
  EXPECT_EQ(quiet, noisy);
}

// --------------------------------------------------------- metrics

TEST(MetricsTest, CountersGaugesHistograms) {
  trace::MetricsRegistry registry;
  registry.counter("reqs").add();
  registry.counter("reqs").add(4);
  EXPECT_EQ(registry.counter("reqs").value(), 5u);

  registry.gauge("depth").set(3.0);
  registry.gauge("depth").set(9.0);
  registry.gauge("depth").set(2.0);
  EXPECT_EQ(registry.gauge("depth").value(), 2.0);
  EXPECT_EQ(registry.gauge("depth").max_seen(), 9.0);

  auto& h = registry.histogram("latency");
  for (const double v : {0.5, 3.0, 5.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 108.5);
  EXPECT_GE(h.quantile_upper_bound(0.95), 100.0);

  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"reqs\":5"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter("reqs").value(), 0u);
  EXPECT_EQ(registry.histogram("latency").count(), 0u);
}

TEST(MetricsTest, ConcurrentUpdatesSumExactly) {
  trace::MetricsRegistry registry;
  auto& counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace presp
