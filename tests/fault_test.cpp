// Fault-injection library: trigger-count semantics of the injector hooks
// and the determinism property of seeded FaultPlans (the contract
// bench_chaos and tools/run_chaos.sh rely on).
#include <gtest/gtest.h>

#include <set>

#include "fault/fault.hpp"
#include "runtime/workqueue.hpp"

namespace presp::fault {
namespace {

TEST(FaultInjector, FiresOnNthMatchingEventAndIsOneShot) {
  FaultInjector injector;
  injector.arm({FaultSite::kAccelHang, 3, -1, 3});
  EXPECT_EQ(injector.pending(), 1u);
  EXPECT_FALSE(injector.on_accelerator_start(3));
  EXPECT_FALSE(injector.on_accelerator_start(3));
  EXPECT_TRUE(injector.on_accelerator_start(3));  // the 3rd event fires
  EXPECT_EQ(injector.pending(), 0u);
  // One-shot: consumed when it fired.
  EXPECT_FALSE(injector.on_accelerator_start(3));
  const auto& stats = injector.stats();
  EXPECT_EQ(stats.injected[static_cast<int>(FaultSite::kAccelHang)], 1u);
  EXPECT_EQ(stats.observed[static_cast<int>(FaultSite::kAccelHang)], 4u);
  EXPECT_EQ(stats.total_injected(), 1u);
}

TEST(FaultInjector, TileFilteringOnlyCountsMatchingEvents) {
  FaultInjector injector;
  injector.arm({FaultSite::kIcapStall, 5, -1, 2});
  // Events on other tiles do not advance tile 5's stream.
  EXPECT_FALSE(injector.on_icap_transfer(4));
  EXPECT_FALSE(injector.on_icap_transfer(4));
  EXPECT_FALSE(injector.on_icap_transfer(5));
  EXPECT_TRUE(injector.on_icap_transfer(5));
  EXPECT_EQ(injector.pending(), 0u);
}

TEST(FaultInjector, WildcardTileMatchesAnyTile) {
  FaultInjector injector;
  injector.arm({FaultSite::kSeuFlip, -1, -1, 2});
  EXPECT_FALSE(injector.on_seu_check(7));
  EXPECT_TRUE(injector.on_seu_check(9));
}

TEST(FaultInjector, NocCorruptMatchesOnPlane) {
  FaultInjector injector;
  injector.arm({FaultSite::kNocCorrupt, -1, 4, 2});
  EXPECT_FALSE(injector.on_noc_packet(3));  // wrong plane: no advance
  EXPECT_FALSE(injector.on_noc_packet(4));
  EXPECT_FALSE(injector.on_noc_packet(3));
  EXPECT_TRUE(injector.on_noc_packet(4));
}

TEST(FaultInjector, IndependentStreamsPerSite) {
  FaultInjector injector;
  injector.arm({FaultSite::kDfxcHang, 3, -1, 1});
  injector.arm({FaultSite::kDecouplerStuck, 3, -1, 1});
  EXPECT_EQ(injector.pending(), 2u);
  // Each site keys its own event stream.
  EXPECT_TRUE(injector.on_dfxc_completion(3));
  EXPECT_EQ(injector.pending(), 1u);
  EXPECT_TRUE(injector.on_decoupler_release(3));
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.stats().total_injected(), 2u);
}

// ---------------------------------------------------------------------------

FaultPlanOptions plan_options(std::uint64_t seed) {
  FaultPlanOptions options;
  options.seed = seed;
  options.faults = 64;
  options.tiles = {3, 4, 6};
  options.planes = {3, 4};
  options.max_trigger_count = 8;
  return options;
}

TEST(FaultPlan, SameSeedReproducesIdenticalSchedule) {
  // The property bench_chaos's self-check and tools/run_chaos.sh build
  // on: a plan is a pure function of its options.
  for (const std::uint64_t seed : {1ull, 2ull, 42ull, 0xdeadbeefull}) {
    const FaultPlan a(plan_options(seed));
    const FaultPlan b(plan_options(seed));
    EXPECT_EQ(a.specs(), b.specs());
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.seed(), seed);
  }
}

TEST(FaultPlan, DifferentSeedsProduceDifferentSchedules) {
  const FaultPlan a(plan_options(1));
  const FaultPlan b(plan_options(2));
  EXPECT_NE(a.specs(), b.specs());
}

TEST(FaultPlan, RespectsOptionBounds) {
  const FaultPlanOptions options = plan_options(7);
  const FaultPlan plan(options);
  ASSERT_EQ(plan.specs().size(), static_cast<std::size_t>(options.faults));
  const std::set<int> tiles(options.tiles.begin(), options.tiles.end());
  const std::set<int> planes(options.planes.begin(), options.planes.end());
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_GE(spec.trigger_count, 1u);
    EXPECT_LE(spec.trigger_count, options.max_trigger_count);
    if (spec.site == FaultSite::kNocCorrupt) {
      EXPECT_TRUE(planes.contains(spec.plane));
    } else {
      EXPECT_TRUE(tiles.contains(spec.tile));
    }
  }
}

TEST(FaultPlan, MixZeroDisablesASite) {
  FaultPlanOptions options = plan_options(11);
  options.mix.noc_corrupt = 0.0;
  options.mix.seu_flip = 0.0;
  const FaultPlan plan(options);
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_NE(spec.site, FaultSite::kNocCorrupt);
    EXPECT_NE(spec.site, FaultSite::kSeuFlip);
  }
}

TEST(FaultPlan, ArmLoadsEverySpec) {
  const FaultPlan plan(plan_options(5));
  FaultInjector injector;
  plan.arm(injector);
  EXPECT_EQ(injector.pending(), plan.specs().size());
}

TEST(FaultPlan, DescribeListsHeaderPlusOneLinePerSpec) {
  const FaultPlan plan(plan_options(3));
  const std::string text = plan.describe();
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, plan.specs().size() + 1);
  EXPECT_NE(text.find("seed=3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pooled request drain under faults: RequestPool workers dispatch to the
// unchanged manager entry points, so the watchdog/health machinery (PR 1)
// must behave exactly as in the serial drain while requests overlap in
// sim-time.

const char* kPooledSocText = R"(
[soc]
name = pooled_faults
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_b
r1c2 = empty
)";

soc::AcceleratorRegistry pooled_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 12'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    spec.latency.startup_cycles = 30;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

class PooledManagerFixture : public ::testing::Test {
 protected:
  PooledManagerFixture()
      : registry_(pooled_registry()),
        soc_(netlist::SocConfig::parse(kPooledSocText), registry_),
        store_(soc_.memory()),
        manager_(soc_, store_) {
    for (const int tile : {3, 4}) {
      store_.add(tile, "acc_a", 140'000);
      store_.add(tile, "acc_b", 150'000);
      store_.add_blank(tile, 120'000);
    }
    soc_.set_fault_injector(&injector_);
    buf_ = soc_.memory().allocate("buf", 1 << 16);
  }

  soc::AccelTask task() const {
    soc::AccelTask t;
    t.src = buf_;
    t.dst = buf_ + 32'768;
    t.items = 200;
    return t;
  }

  soc::AcceleratorRegistry registry_;
  soc::Soc soc_;
  runtime::BitstreamStore store_;
  runtime::ReconfigurationManager manager_;
  FaultInjector injector_;
  std::uint64_t buf_ = 0;
};

TEST_F(PooledManagerFixture, WatchdogRecoveryUnderPooledDrain) {
  // One fault on each tile, two run requests drained by two workers
  // concurrently in sim-time: both watchdogs must fire and recover, and
  // both requests must complete kOk on their own tile.
  injector_.arm({FaultSite::kIcapStall, 3, -1, 1});
  injector_.arm({FaultSite::kAccelHang, 4, -1, 1});

  runtime::RequestPool pool(soc_.kernel(), manager_, /*workers=*/2);
  runtime::Completion done_a(soc_.kernel());
  runtime::Completion done_b(soc_.kernel());
  runtime::PoolRequest run_a;
  run_a.kind = runtime::PoolRequest::Kind::kRun;
  run_a.tile = 3;
  run_a.module = "acc_a";
  run_a.task = task();
  run_a.done = &done_a;
  runtime::PoolRequest run_b = run_a;
  run_b.tile = 4;
  run_b.module = "acc_b";
  run_b.done = &done_b;
  pool.enqueue(run_a);
  pool.enqueue(run_b);
  pool.drain();
  soc_.kernel().run();

  ASSERT_TRUE(pool.idle());
  ASSERT_TRUE(done_a.triggered());
  ASSERT_TRUE(done_b.triggered());
  EXPECT_EQ(done_a.status(), runtime::RequestStatus::kOk);
  EXPECT_EQ(done_b.status(), runtime::RequestStatus::kOk);
  EXPECT_EQ(done_a.tile(), 3);
  EXPECT_EQ(done_b.tile(), 4);
  // Both injected faults were hit and recovered by the watchdog path.
  EXPECT_EQ(injector_.pending(), 0u);
  EXPECT_GE(manager_.stats().watchdog_fires, 2u);
  EXPECT_EQ(soc_.aux().icap_stalls(), 1u);
  EXPECT_EQ(soc_.reconf_tile(3).hung_runs() + soc_.reconf_tile(4).hung_runs(),
            1u);
  EXPECT_EQ(manager_.stats().runs, 2u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(soc_.reconf_tile(4).module(), "acc_b");
  // No escalation: health stayed clean.
  EXPECT_EQ(manager_.stats().quarantines, 0u);
  EXPECT_EQ(pool.stats().completed, 2u);
  EXPECT_EQ(pool.stats().failed, 0u);
  EXPECT_EQ(pool.stats().max_queue_depth, 2);
}

TEST_F(PooledManagerFixture, PooledScrubRepairsSeusOnAllTiles) {
  // Load both tiles, upset both partitions, then drain a scrub queue with
  // more workers than the single PRC can use: repairs must match the
  // serial drain (every upset partition rewritten, none missed).
  for (const int tile : {3, 4}) {
    runtime::Completion prep(soc_.kernel());
    manager_.ensure_module(tile, tile == 3 ? "acc_a" : "acc_b", prep);
    soc_.kernel().run();
    ASSERT_TRUE(prep.ok());
    soc_.reconf_tile(tile).inject_seu();
  }

  runtime::RequestPool pool(soc_.kernel(), manager_, /*workers=*/4);
  for (const int tile : {3, 4}) {
    runtime::PoolRequest scrub;
    scrub.kind = runtime::PoolRequest::Kind::kScrub;
    scrub.tile = tile;
    pool.enqueue(scrub);
  }
  pool.drain();
  soc_.kernel().run();

  ASSERT_TRUE(pool.idle());
  EXPECT_EQ(pool.stats().completed, 2u);
  EXPECT_EQ(pool.stats().failed, 0u);
  EXPECT_EQ(manager_.stats().scrubs, 2u);
  EXPECT_EQ(manager_.stats().seu_repairs, 2u);
  EXPECT_FALSE(soc_.reconf_tile(3).config_upset());
  EXPECT_FALSE(soc_.reconf_tile(4).config_upset());
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(soc_.reconf_tile(4).module(), "acc_b");
}

}  // namespace
}  // namespace presp::fault
