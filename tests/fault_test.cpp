// Fault-injection library: trigger-count semantics of the injector hooks
// and the determinism property of seeded FaultPlans (the contract
// bench_chaos and tools/run_chaos.sh rely on).
#include <gtest/gtest.h>

#include <set>

#include "fault/fault.hpp"

namespace presp::fault {
namespace {

TEST(FaultInjector, FiresOnNthMatchingEventAndIsOneShot) {
  FaultInjector injector;
  injector.arm({FaultSite::kAccelHang, 3, -1, 3});
  EXPECT_EQ(injector.pending(), 1u);
  EXPECT_FALSE(injector.on_accelerator_start(3));
  EXPECT_FALSE(injector.on_accelerator_start(3));
  EXPECT_TRUE(injector.on_accelerator_start(3));  // the 3rd event fires
  EXPECT_EQ(injector.pending(), 0u);
  // One-shot: consumed when it fired.
  EXPECT_FALSE(injector.on_accelerator_start(3));
  const auto& stats = injector.stats();
  EXPECT_EQ(stats.injected[static_cast<int>(FaultSite::kAccelHang)], 1u);
  EXPECT_EQ(stats.observed[static_cast<int>(FaultSite::kAccelHang)], 4u);
  EXPECT_EQ(stats.total_injected(), 1u);
}

TEST(FaultInjector, TileFilteringOnlyCountsMatchingEvents) {
  FaultInjector injector;
  injector.arm({FaultSite::kIcapStall, 5, -1, 2});
  // Events on other tiles do not advance tile 5's stream.
  EXPECT_FALSE(injector.on_icap_transfer(4));
  EXPECT_FALSE(injector.on_icap_transfer(4));
  EXPECT_FALSE(injector.on_icap_transfer(5));
  EXPECT_TRUE(injector.on_icap_transfer(5));
  EXPECT_EQ(injector.pending(), 0u);
}

TEST(FaultInjector, WildcardTileMatchesAnyTile) {
  FaultInjector injector;
  injector.arm({FaultSite::kSeuFlip, -1, -1, 2});
  EXPECT_FALSE(injector.on_seu_check(7));
  EXPECT_TRUE(injector.on_seu_check(9));
}

TEST(FaultInjector, NocCorruptMatchesOnPlane) {
  FaultInjector injector;
  injector.arm({FaultSite::kNocCorrupt, -1, 4, 2});
  EXPECT_FALSE(injector.on_noc_packet(3));  // wrong plane: no advance
  EXPECT_FALSE(injector.on_noc_packet(4));
  EXPECT_FALSE(injector.on_noc_packet(3));
  EXPECT_TRUE(injector.on_noc_packet(4));
}

TEST(FaultInjector, IndependentStreamsPerSite) {
  FaultInjector injector;
  injector.arm({FaultSite::kDfxcHang, 3, -1, 1});
  injector.arm({FaultSite::kDecouplerStuck, 3, -1, 1});
  EXPECT_EQ(injector.pending(), 2u);
  // Each site keys its own event stream.
  EXPECT_TRUE(injector.on_dfxc_completion(3));
  EXPECT_EQ(injector.pending(), 1u);
  EXPECT_TRUE(injector.on_decoupler_release(3));
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.stats().total_injected(), 2u);
}

// ---------------------------------------------------------------------------

FaultPlanOptions plan_options(std::uint64_t seed) {
  FaultPlanOptions options;
  options.seed = seed;
  options.faults = 64;
  options.tiles = {3, 4, 6};
  options.planes = {3, 4};
  options.max_trigger_count = 8;
  return options;
}

TEST(FaultPlan, SameSeedReproducesIdenticalSchedule) {
  // The property bench_chaos's self-check and tools/run_chaos.sh build
  // on: a plan is a pure function of its options.
  for (const std::uint64_t seed : {1ull, 2ull, 42ull, 0xdeadbeefull}) {
    const FaultPlan a(plan_options(seed));
    const FaultPlan b(plan_options(seed));
    EXPECT_EQ(a.specs(), b.specs());
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.seed(), seed);
  }
}

TEST(FaultPlan, DifferentSeedsProduceDifferentSchedules) {
  const FaultPlan a(plan_options(1));
  const FaultPlan b(plan_options(2));
  EXPECT_NE(a.specs(), b.specs());
}

TEST(FaultPlan, RespectsOptionBounds) {
  const FaultPlanOptions options = plan_options(7);
  const FaultPlan plan(options);
  ASSERT_EQ(plan.specs().size(), static_cast<std::size_t>(options.faults));
  const std::set<int> tiles(options.tiles.begin(), options.tiles.end());
  const std::set<int> planes(options.planes.begin(), options.planes.end());
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_GE(spec.trigger_count, 1u);
    EXPECT_LE(spec.trigger_count, options.max_trigger_count);
    if (spec.site == FaultSite::kNocCorrupt) {
      EXPECT_TRUE(planes.contains(spec.plane));
    } else {
      EXPECT_TRUE(tiles.contains(spec.tile));
    }
  }
}

TEST(FaultPlan, MixZeroDisablesASite) {
  FaultPlanOptions options = plan_options(11);
  options.mix.noc_corrupt = 0.0;
  options.mix.seu_flip = 0.0;
  const FaultPlan plan(options);
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_NE(spec.site, FaultSite::kNocCorrupt);
    EXPECT_NE(spec.site, FaultSite::kSeuFlip);
  }
}

TEST(FaultPlan, ArmLoadsEverySpec) {
  const FaultPlan plan(plan_options(5));
  FaultInjector injector;
  plan.arm(injector);
  EXPECT_EQ(injector.pending(), plan.specs().size());
}

TEST(FaultPlan, DescribeListsHeaderPlusOneLinePerSpec) {
  const FaultPlan plan(plan_options(3));
  const std::string text = plan.describe();
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, plan.specs().size() + 1);
  EXPECT_NE(text.find("seed=3"), std::string::npos);
}

}  // namespace
}  // namespace presp::fault
