// Fleet-scale DPR service: admission control, typed overload shedding,
// request coalescing, circuit breakers layered on tile health, shard
// stall diversion and the seeded-jitter retry backoff.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/load.hpp"
#include "trace/metrics.hpp"
#include "util/error.hpp"

namespace presp::fleet {
namespace {

const char* kFleetSocText = R"(
[soc]
name = fleet_shard
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_b
r1c2 = empty
)";

soc::AcceleratorRegistry test_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 12'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    spec.latency.startup_cycles = 30;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

FleetTopology test_topology() {
  FleetTopology topo;
  topo.shards = 2;
  topo.quantum_cycles = 4'000;
  topo.coalesce_limit = 4;
  topo.service_estimate_cycles = 60'000;
  topo.fallback_latency_cycles = 8'000;
  topo.stall_cycles = 400'000;
  topo.classes[0] = {8.0, 4.0, 8.0, 16, 600};    // realtime
  topo.classes[1] = {4.0, 4.0, 16.0, 32, 2'000};  // standard
  topo.classes[2] = {1.0, 4.0, 32.0, 64, 8'000};  // besteffort
  topo.breaker.failure_threshold = 0.5;
  topo.breaker.window = 4;
  topo.breaker.open_base_cycles = 40'000;
  topo.breaker.open_max_cycles = 640'000;
  topo.breaker.half_open_probes = 2;
  topo.breaker.jitter = 0.0;  // exact backoff arithmetic in tests
  return topo;
}

FleetRequest make_request(std::uint64_t id, QosClass cls,
                          const std::string& module) {
  FleetRequest req;
  req.id = id;
  req.tenant = static_cast<int>(id % 4);
  req.cls = cls;
  req.module = module;
  req.items = 128;
  return req;
}

class FleetFixture : public ::testing::Test {
 protected:
  FleetFixture() : registry_(test_registry()) {}

  std::unique_ptr<FleetManager> make_fleet(
      FleetTopology topo, std::uint64_t seed = 7,
      fault::FaultInjector* injector = nullptr) {
    runtime::ManagerOptions options;
    options.watchdog_run_cycles = 200'000;  // keep recovery drills short
    auto fleet = std::make_unique<FleetManager>(
        std::move(topo), netlist::SocConfig::parse(kFleetSocText), registry_,
        seed, injector, options);
    fleet->add_module("acc_a", 140'000);
    fleet->add_module("acc_b", 150'000);
    return fleet;
  }

  soc::AcceleratorRegistry registry_;
};

// ------------------------------------------------------------ breakers

TEST(CircuitBreakerTest, OpensOnFailureRateAndRecloses) {
  BreakerOptions options;
  options.failure_threshold = 0.5;
  options.window = 4;
  options.open_base_cycles = 1'000;
  options.open_max_cycles = 16'000;
  options.half_open_probes = 2;
  options.jitter = 0.0;
  Rng rng(1);
  CircuitBreaker breaker(options, &rng);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_success(0);
  breaker.record_failure(0);
  breaker.record_success(0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // window not full
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);  // 2/4 >= 0.5

  EXPECT_FALSE(breaker.allow(500));
  EXPECT_TRUE(breaker.allow(1'000));  // backoff expired -> half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow(1'000));   // second probe slot
  EXPECT_FALSE(breaker.allow(1'000));  // probe budget exhausted
  breaker.record_success(1'100);
  breaker.record_success(1'200);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensWithDoubledBackoff) {
  BreakerOptions options;
  options.failure_threshold = 1.0;
  options.window = 2;
  options.open_base_cycles = 1'000;
  options.open_max_cycles = 16'000;
  options.half_open_probes = 1;
  options.jitter = 0.0;
  Rng rng(1);
  CircuitBreaker breaker(options, &rng);

  breaker.record_failure(0);
  breaker.record_failure(0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  ASSERT_TRUE(breaker.allow(1'000));
  breaker.record_failure(1'100);  // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Second open interval is doubled: closed until 1'100 + 2'000.
  EXPECT_FALSE(breaker.allow(2'000));
  EXPECT_FALSE(breaker.allow(3'000));
  EXPECT_TRUE(breaker.allow(3'100));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, AbandonReturnsProbeSlot) {
  BreakerOptions options;
  options.failure_threshold = 1.0;
  options.window = 1;
  options.open_base_cycles = 100;
  options.open_max_cycles = 100;
  options.half_open_probes = 1;
  options.jitter = 0.0;
  Rng rng(1);
  CircuitBreaker breaker(options, &rng);
  breaker.record_failure(0);
  ASSERT_TRUE(breaker.allow(100));
  EXPECT_FALSE(breaker.allow(100));
  breaker.abandon();
  EXPECT_TRUE(breaker.allow(100));
}

// ----------------------------------------------- health listener hook

TEST(TileHealthListenerTest, ListenerSeesEveryTransition) {
  runtime::TileHealthRegistry registry;
  std::vector<std::tuple<int, runtime::TileHealth, runtime::TileHealth>>
      seen;
  registry.set_listener([&seen](int tile, runtime::TileHealth from,
                                runtime::TileHealth to) {
    seen.emplace_back(tile, from, to);
  });
  registry.quarantine(5);
  registry.rehabilitate(5);
  for (int i = 0; i < 3; ++i) registry.record_success(5);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_tuple(5, runtime::TileHealth::kHealthy,
                                     runtime::TileHealth::kQuarantined));
  EXPECT_EQ(seen[1], std::make_tuple(5, runtime::TileHealth::kQuarantined,
                                     runtime::TileHealth::kDegraded));
  EXPECT_EQ(seen[2], std::make_tuple(5, runtime::TileHealth::kDegraded,
                                     runtime::TileHealth::kHealthy));
}

// ------------------------------------------------- jittered backoff

TEST(JitteredBackoffTest, ZeroJitterIsFixedExponential) {
  Rng rng(42);
  EXPECT_EQ(runtime::jittered_backoff(1'000, 1, 0.0, rng), 1'000u);
  EXPECT_EQ(runtime::jittered_backoff(1'000, 2, 0.0, rng), 2'000u);
  EXPECT_EQ(runtime::jittered_backoff(1'000, 5, 0.0, rng), 16'000u);
}

TEST(JitteredBackoffTest, JitterStaysInBandAndReplays) {
  Rng a(42);
  Rng b(42);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const auto full = static_cast<sim::Time>(1'000) << (attempt - 1);
    const sim::Time draw_a = runtime::jittered_backoff(1'000, attempt, 0.5, a);
    const sim::Time draw_b = runtime::jittered_backoff(1'000, attempt, 0.5, b);
    EXPECT_EQ(draw_a, draw_b);  // same seed, same schedule
    EXPECT_GE(draw_a, full - full / 2);
    EXPECT_LE(draw_a, full);
  }
}

// ------------------------------------------------------- admission

TEST_F(FleetFixture, CompletesSteadyLoadConserved) {
  auto fleet = make_fleet(test_topology());
  std::uint64_t id = 0;
  for (int q = 0; q < 8; ++q) {
    fleet->submit(make_request(++id, QosClass::kStandard,
                               q % 2 == 0 ? "acc_a" : "acc_b"));
    fleet->step();
  }
  ASSERT_TRUE(fleet->drain(400));
  const FleetStats& stats = fleet->stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed_ok, 8u);
  EXPECT_EQ(stats.shed_total, 0u);
  EXPECT_TRUE(stats.conserved());
  EXPECT_TRUE(stats.sheds_explained());
}

TEST_F(FleetFixture, QueueFullShedsWithTypedError) {
  FleetTopology topo = test_topology();
  topo.classes[static_cast<int>(QosClass::kStandard)].queue_bound = 4;
  auto fleet = make_fleet(topo);
  for (std::uint64_t i = 1; i <= 10; ++i)
    fleet->submit(make_request(i, QosClass::kStandard, "acc_a"));
  const FleetStats& stats = fleet->stats();
  EXPECT_EQ(stats.shed_total, 6u);
  EXPECT_EQ(stats.shed_by_reason[static_cast<int>(FleetError::kQueueFull)],
            6u);
  ASSERT_TRUE(fleet->drain(400));
  EXPECT_TRUE(fleet->stats().conserved());
  EXPECT_TRUE(fleet->stats().sheds_explained());
}

TEST_F(FleetFixture, BestEffortDegradesToSoftwareFallback) {
  FleetTopology topo = test_topology();
  topo.classes[static_cast<int>(QosClass::kBestEffort)].queue_bound = 2;
  auto fleet = make_fleet(topo);
  for (std::uint64_t i = 1; i <= 5; ++i)
    fleet->submit(make_request(i, QosClass::kBestEffort, "acc_a"));
  // Overflowing best-effort work degrades instead of shedding.
  EXPECT_EQ(fleet->stats().shed_total, 0u);
  ASSERT_TRUE(fleet->drain(400));
  EXPECT_EQ(fleet->stats().completed_fallback, 3u);
  EXPECT_EQ(fleet->stats().completed_ok, 2u);
  EXPECT_TRUE(fleet->stats().conserved());
}

TEST_F(FleetFixture, ImpossibleDeadlineIsRejectedEarly) {
  FleetTopology topo = test_topology();
  topo.classes[static_cast<int>(QosClass::kRealtime)].deadline_quanta = 1;
  auto fleet = make_fleet(topo);
  fleet->submit(make_request(1, QosClass::kRealtime, "acc_a"));
  fleet->step();
  const FleetStats& stats = fleet->stats();
  EXPECT_EQ(stats.shed_total, 1u);
  EXPECT_EQ(
      stats.shed_by_reason[static_cast<int>(FleetError::kDeadlineShed)], 1u);
  EXPECT_TRUE(stats.conserved());
}

TEST_F(FleetFixture, EmptyTokenBucketThrottles) {
  FleetTopology topo = test_topology();
  topo.classes[static_cast<int>(QosClass::kRealtime)].tokens_per_quantum =
      0.0;
  topo.classes[static_cast<int>(QosClass::kRealtime)].deadline_quanta = 2;
  auto fleet = make_fleet(topo);
  fleet->submit(make_request(1, QosClass::kRealtime, "acc_a"));
  fleet->run_quanta(4);
  const FleetStats& stats = fleet->stats();
  EXPECT_EQ(stats.shed_total, 1u);
  EXPECT_EQ(stats.shed_by_reason[static_cast<int>(FleetError::kThrottled)],
            1u);
  EXPECT_TRUE(stats.conserved());
}

// ------------------------------------------------------ coalescing

TEST_F(FleetFixture, SameModuleRequestsCoalesceProgramOnce) {
  auto fleet = make_fleet(test_topology());
  for (std::uint64_t i = 1; i <= 4; ++i)
    fleet->submit(make_request(i, QosClass::kStandard, "acc_a"));
  ASSERT_TRUE(fleet->drain(400));
  const FleetStats& stats = fleet->stats();
  EXPECT_EQ(stats.completed_ok, 4u);
  EXPECT_EQ(stats.coalesced, 3u);
  EXPECT_TRUE(stats.conserved());
  // One reconfiguration across the whole fleet: the followers ran on the
  // leader's still-warm tile.
  std::uint64_t reconfigurations = 0;
  std::uint64_t avoided = 0;
  for (int s = 0; s < fleet->num_shards(); ++s) {
    reconfigurations += fleet->manager(s).stats().reconfigurations;
    avoided += fleet->manager(s).stats().reconfigurations_avoided;
  }
  EXPECT_EQ(reconfigurations, 1u);
  EXPECT_GE(avoided, 3u);
}

TEST_F(FleetFixture, LeaderQuarantineMidProgramLosesNoCompletion) {
  FleetTopology topo = test_topology();
  topo.shards = 1;
  fault::FaultInjector injector;
  // retry_budget = 3: the fourth consecutive hang on tile 3 quarantines
  // it mid-request; the manager re-routes the leader to tile 4.
  for (int i = 0; i < 4; ++i)
    injector.arm({fault::FaultSite::kAccelHang, 3, -1, 1});
  auto fleet = make_fleet(topo, 7, &injector);
  for (std::uint64_t i = 1; i <= 4; ++i)
    fleet->submit(make_request(i, QosClass::kStandard, "acc_a"));
  ASSERT_TRUE(fleet->drain(2'000));
  const FleetStats& stats = fleet->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_TRUE(stats.sheds_explained());
  EXPECT_EQ(stats.coalesced, 3u);
  // Every coalesced completion was delivered despite the quarantine.
  EXPECT_EQ(stats.completed_ok + stats.completed_failed + stats.shed_total +
                stats.completed_fallback,
            4u);
  EXPECT_EQ(fleet->manager(0).health().health(3),
            runtime::TileHealth::kQuarantined);
  // The health listener tripped the tile breaker open.
  EXPECT_NE(fleet->tile_breaker(0, 3), BreakerState::kClosed);
}

// -------------------------------------------- stall -> breaker divert

TEST_F(FleetFixture, ShardStallOpensBreakerAndDivertsTraffic) {
  FleetTopology topo = test_topology();
  topo.classes[static_cast<int>(QosClass::kStandard)].deadline_quanta = 20;
  fault::FaultInjector injector;
  // Each armed spec fires once; chaining six keeps shard 0 wedged for
  // ~600 quanta — the whole loop and most of the drain — so the
  // diverted traffic cannot rebalance after a single recovery.
  for (int i = 0; i < 6; ++i)
    injector.arm({fault::FaultSite::kShardStall, 0, -1, 1});
  auto fleet = make_fleet(topo, 7, &injector);
  std::uint64_t id = 0;
  for (int q = 0; q < 40; ++q) {
    fleet->submit(make_request(++id, QosClass::kStandard,
                               q % 2 == 0 ? "acc_a" : "acc_b"));
    fleet->step();
  }
  EXPECT_GE(fleet->stats().breaker_opens, 1u);
  ASSERT_TRUE(fleet->drain(2'000));
  const FleetStats& stats = fleet->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_TRUE(stats.sheds_explained());
  EXPECT_GT(stats.stall_quanta, 0u);
  // Traffic demonstrably diverted to the healthy shard.
  int on_healthy = 0;
  int on_stalled = 0;
  for (const FleetOutcome& outcome : fleet->outcomes()) {
    if (outcome.kind != OutcomeKind::kOk &&
        outcome.kind != OutcomeKind::kCoalescedOk)
      continue;
    if (outcome.shard == 1) ++on_healthy;
    if (outcome.shard == 0) ++on_stalled;
  }
  EXPECT_GT(on_healthy, on_stalled);
}

TEST_F(FleetFixture, QuarantinedTileIsReadmittedThroughHalfOpenProbe) {
  FleetTopology topo = test_topology();
  topo.shards = 1;
  topo.breaker.open_base_cycles = 8'000;  // two quanta
  auto fleet = make_fleet(topo);
  fleet->manager(0).health().quarantine(3);
  ASSERT_EQ(fleet->tile_breaker(0, 3), BreakerState::kOpen);
  fleet->run_quanta(3);  // let the breaker backoff expire
  std::uint64_t id = 0;
  for (int q = 0; q < 6; ++q) {
    fleet->submit(make_request(++id, QosClass::kStandard, "acc_a"));
    fleet->run_quanta(30);
  }
  ASSERT_TRUE(fleet->drain(400));
  const FleetStats& stats = fleet->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_GE(stats.probe_rehabilitations, 1u);
  // The probe rehabilitated the tile and it is back in rotation.
  EXPECT_TRUE(fleet->manager(0).health().usable(3));
  EXPECT_EQ(fleet->tile_breaker(0, 3), BreakerState::kClosed);
  EXPECT_EQ(stats.completed_ok, 6u);
}

TEST_F(FleetFixture, FailedProbeReopensTileBreaker) {
  FleetTopology topo = test_topology();
  topo.shards = 1;
  topo.coalesce_limit = 0;  // force independent dispatches
  topo.breaker.open_base_cycles = 8'000;
  fault::FaultInjector injector;
  auto fleet = make_fleet(topo, 7, &injector);
  fleet->manager(0).health().quarantine(3);
  ASSERT_EQ(fleet->tile_breaker(0, 3), BreakerState::kOpen);
  fleet->run_quanta(3);
  // The probe lands on tile 3 (first in routing order) and hangs until
  // the tile is re-quarantined mid-request.
  for (int i = 0; i < 4; ++i)
    injector.arm({fault::FaultSite::kAccelHang, 3, -1, 1});
  fleet->submit(make_request(1, QosClass::kStandard, "acc_a"));
  ASSERT_TRUE(fleet->drain(2'000));
  EXPECT_GE(fleet->stats().probe_rehabilitations, 1u);
  EXPECT_GE(fleet->stats().breaker_reopens, 1u);
  EXPECT_EQ(fleet->tile_breaker(0, 3), BreakerState::kOpen);
  EXPECT_TRUE(fleet->stats().conserved());
}

// ---------------------------------------------------- determinism

TEST_F(FleetFixture, SameSeedsReplayBitIdentically) {
  std::string digests[2];
  for (int round = 0; round < 2; ++round) {
    fault::FaultInjector injector;
    injector.arm({fault::FaultSite::kShardStall, 0, -1, 1});
    FleetTopology topo = test_topology();
    topo.classes[static_cast<int>(QosClass::kStandard)].deadline_quanta = 20;
    auto fleet = make_fleet(topo, 7, &injector);
    SyntheticLoad load([] {
      LoadOptions options;
      options.seed = 11;
      options.arrivals_per_quantum = 1.5;
      options.modules = {"acc_a", "acc_b"};
      return options;
    }());
    for (int q = 0; q < 40; ++q) {
      for (FleetRequest& req : load.generate(fleet->now(),
                                             fleet->topology().burst_multiplier,
                                             &injector))
        fleet->submit(std::move(req));
      fleet->step();
    }
    fleet->drain(2'000);
    digests[round] = fleet->digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(SyntheticLoadTest, SeededBatchesReplayAndBurstMultiplies) {
  LoadOptions options;
  options.seed = 3;
  options.arrivals_per_quantum = 2.0;
  options.modules = {"acc_a"};
  SyntheticLoad a(options);
  SyntheticLoad b(options);
  std::uint64_t total_a = 0;
  std::uint64_t total_b = 0;
  for (int q = 0; q < 50; ++q) {
    total_a += a.generate(0, 8, nullptr).size();
    total_b += b.generate(0, 8, nullptr).size();
  }
  EXPECT_EQ(total_a, total_b);
  EXPECT_NEAR(static_cast<double>(total_a), 100.0, 10.0);

  // An armed burst-overload fault multiplies the arrival rate.
  fault::FaultInjector injector;
  injector.arm({fault::FaultSite::kBurstOverload, -1, -1, 1});
  SyntheticLoad bursty(options);
  std::uint64_t burst_total = 0;
  for (int q = 0; q < options.burst_quanta; ++q)
    burst_total += bursty.generate(0, 8, &injector).size();
  EXPECT_GT(burst_total, 4u * options.burst_quanta);
}

// ---------------------------------------------------- configuration

TEST(FleetTopologyTest, ParsesFleetSectionAndValidates) {
  const Config config = Config::parse(R"(
[fleet]
shards = 3
quantum_cycles = 5000
coalesce_limit = 2
class_realtime = 9, 3.5, 6, 24, 500
breaker_failure_threshold = 0.25
breaker_window = 16
)");
  const FleetTopology topo = FleetTopology::from_config(config);
  EXPECT_EQ(topo.shards, 3);
  EXPECT_EQ(topo.quantum_cycles, 5'000);
  EXPECT_EQ(topo.coalesce_limit, 2);
  EXPECT_DOUBLE_EQ(topo.classes[0].weight, 9.0);
  EXPECT_DOUBLE_EQ(topo.classes[0].tokens_per_quantum, 3.5);
  EXPECT_EQ(topo.classes[0].queue_bound, 24);
  EXPECT_EQ(topo.classes[0].deadline_quanta, 500);
  // Unset classes keep defaults.
  EXPECT_EQ(topo.classes[1].queue_bound, FleetTopology{}.classes[1].queue_bound);
  EXPECT_DOUBLE_EQ(topo.breaker.failure_threshold, 0.25);
  EXPECT_EQ(topo.breaker.window, 16);
  topo.validate();

  FleetTopology bad = topo;
  bad.shards = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = topo;
  bad.breaker.failure_threshold = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = topo;
  for (QosClassParams& cls : bad.classes) cls.weight = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

// ---------------------------------------------------- tenant buckets

std::uint64_t tenant_counter(int tenant, const char* which) {
  return trace::MetricsRegistry::global()
      .counter("fleet.tenant." + std::to_string(tenant) + "." + which)
      .value();
}

FleetTopology throttled_topology() {
  FleetTopology topo = test_topology();
  topo.tenant_tokens_per_quantum = 0.5;
  topo.tenant_burst = 2.0;
  return topo;
}

TEST_F(FleetFixture, TenantThrottleShedsHardBeyondBurst) {
  auto fleet = make_fleet(throttled_topology());
  // Step off t=0 first: a bucket's first touch grants the full burst.
  fleet->run_quanta(1);

  // The global registry outlives tests; measure deltas, not absolutes.
  const std::uint64_t shed_before = tenant_counter(0, "shed");
  const std::uint64_t admitted_before = tenant_counter(0, "admitted");

  for (std::uint64_t id = 1; id <= 5; ++id) {
    FleetRequest req = make_request(id, QosClass::kBestEffort, "acc_a");
    req.tenant = 0;
    fleet->submit(std::move(req));
  }
  // Burst of 2: two admitted, three shed with the tenant-specific
  // reason. Best-effort sheds hard too — no fallback tunneling past the
  // quota.
  EXPECT_EQ(fleet->stats().shed_by_reason[static_cast<int>(
                FleetError::kTenantThrottled)],
            3u);
  EXPECT_EQ(fleet->stats().completed_fallback, 0u);
  EXPECT_EQ(tenant_counter(0, "shed") - shed_before, 3u);
  EXPECT_EQ(tenant_counter(0, "admitted") - admitted_before, 2u);
  EXPECT_STREQ(to_string(FleetError::kTenantThrottled), "tenant-throttled");

  int tenant_sheds = 0;
  for (const FleetOutcome& outcome : fleet->outcomes())
    if (outcome.kind == OutcomeKind::kShed &&
        outcome.error == FleetError::kTenantThrottled)
      ++tenant_sheds;
  EXPECT_EQ(tenant_sheds, 3);

  ASSERT_TRUE(fleet->drain(2'000));
  EXPECT_TRUE(fleet->stats().conserved());
}

TEST_F(FleetFixture, TenantBucketRefillsFromVirtualTime) {
  auto fleet = make_fleet(throttled_topology());
  fleet->run_quanta(1);

  auto submit_one = [&fleet](std::uint64_t id) {
    FleetRequest req = make_request(id, QosClass::kStandard, "acc_a");
    req.tenant = 0;
    fleet->submit(std::move(req));
  };
  const auto tenant_shed_count = [&fleet] {
    return fleet->stats().shed_by_reason[static_cast<int>(
        FleetError::kTenantThrottled)];
  };

  for (std::uint64_t id = 1; id <= 3; ++id) submit_one(id);
  EXPECT_EQ(tenant_shed_count(), 1u);  // burst 2 exhausted

  // 4 quanta at 0.5 tokens/quantum refill exactly the 2-token burst —
  // purely from elapsed virtual time, no per-tenant work in the step
  // loop.
  fleet->run_quanta(4);
  for (std::uint64_t id = 4; id <= 6; ++id) submit_one(id);
  EXPECT_EQ(tenant_shed_count(), 2u);  // 2 re-admitted, 1 shed again

  ASSERT_TRUE(fleet->drain(2'000));
  EXPECT_TRUE(fleet->stats().conserved());
}

TEST_F(FleetFixture, TenantsThrottleIndependently) {
  auto fleet = make_fleet(throttled_topology());
  fleet->run_quanta(1);

  const std::uint64_t t1_admitted_before = tenant_counter(1, "admitted");
  auto submit_for = [&fleet](std::uint64_t id, int tenant) {
    FleetRequest req = make_request(id, QosClass::kStandard, "acc_a");
    req.tenant = tenant;
    fleet->submit(std::move(req));
  };

  for (std::uint64_t id = 1; id <= 3; ++id) submit_for(id, 0);
  EXPECT_EQ(fleet->stats().shed_by_reason[static_cast<int>(
                FleetError::kTenantThrottled)],
            1u);
  // Tenant 0 exhausting its bucket takes nothing from tenant 1.
  submit_for(4, 1);
  submit_for(5, 1);
  EXPECT_EQ(fleet->stats().shed_by_reason[static_cast<int>(
                FleetError::kTenantThrottled)],
            1u);
  EXPECT_EQ(tenant_counter(1, "admitted") - t1_admitted_before, 2u);

  // The ops snapshot exposes both buckets' live fills.
  const FleetOpsSnapshot snap = fleet->ops_snapshot();
  ASSERT_EQ(snap.tenant_tokens.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.tenant_tokens.at(0), 0.0);
  EXPECT_DOUBLE_EQ(snap.tenant_tokens.at(1), 0.0);
  EXPECT_EQ(snap.now, fleet->now());
  EXPECT_EQ(snap.shards.size(), 2u);

  ASSERT_TRUE(fleet->drain(2'000));
  EXPECT_TRUE(fleet->stats().conserved());
}

TEST_F(FleetFixture, TenantThrottlingOffByDefault) {
  auto fleet = make_fleet(test_topology());  // tenant rate 0: disabled
  fleet->run_quanta(1);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    FleetRequest req = make_request(id, QosClass::kStandard, "acc_a");
    req.tenant = 0;
    fleet->submit(std::move(req));
  }
  EXPECT_EQ(fleet->stats().shed_by_reason[static_cast<int>(
                FleetError::kTenantThrottled)],
            0u);
  EXPECT_TRUE(fleet->ops_snapshot().tenant_tokens.empty());
  ASSERT_TRUE(fleet->drain(2'000));
  EXPECT_TRUE(fleet->stats().conserved());
}

TEST(FleetTopologyTest, ParsesTenantBucketKeysAndValidates) {
  const Config config = Config::parse(R"(
[fleet]
shards = 1
tenant_tokens_per_quantum = 0.25
tenant_burst = 4
)");
  const FleetTopology topo = FleetTopology::from_config(config);
  EXPECT_DOUBLE_EQ(topo.tenant_tokens_per_quantum, 0.25);
  EXPECT_DOUBLE_EQ(topo.tenant_burst, 4.0);
  topo.validate();

  FleetTopology bad = topo;
  bad.tenant_tokens_per_quantum = -0.1;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = topo;
  bad.tenant_burst = 0.5;  // cannot admit even one request
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

// ---------------------------------------------- online defragmentation

FleetTopology repack_topology() {
  FleetTopology topo = test_topology();
  topo.repack = true;
  // One repack opportunity every other quantum, migrate on any
  // fragmentation at all.
  topo.repack_interval_cycles = 2 * topo.quantum_cycles;
  topo.repack_frag_threshold = 0.0;
  return topo;
}

TEST_F(FleetFixture, RepackerIsAbsentUntilEnabled) {
  auto fleet = make_fleet(test_topology());
  EXPECT_EQ(fleet->repacker(0), nullptr);
  EXPECT_EQ(fleet->dynamic_floorplan(0), nullptr);
  const auto digest = fleet->digest();
  EXPECT_EQ(digest.find("repack="), std::string::npos);
}

TEST_F(FleetFixture, RepackerDefragmentsShardsUnderChurn) {
  auto fleet = make_fleet(repack_topology());
  ASSERT_NE(fleet->repacker(0), nullptr);
  ASSERT_NE(fleet->dynamic_floorplan(0), nullptr);
  const double frag_before = fleet->dynamic_floorplan(0)
                                 ->fragmentation().ratio();
  EXPECT_GT(frag_before, 0.0);  // scattered initial placement

  SyntheticLoad load([] {
    LoadOptions options;
    options.seed = 5;
    options.arrivals_per_quantum = 1.0;
    options.modules = {"acc_a", "acc_b"};
    return options;
  }());
  for (int q = 0; q < 60; ++q) {
    for (FleetRequest& req : load.generate(fleet->now(),
                                           fleet->topology().burst_multiplier,
                                           nullptr))
      fleet->submit(std::move(req));
    fleet->step();
  }
  ASSERT_TRUE(fleet->drain(2'000));

  std::uint64_t migrations = 0;
  for (int s = 0; s < fleet->num_shards(); ++s)
    migrations += fleet->repacker(s)->stats().migrations;
  EXPECT_GT(migrations, 0u);
  const double frag_after = fleet->dynamic_floorplan(0)
                                ->fragmentation().ratio();
  EXPECT_LT(frag_after, frag_before);
  // The digest carries the defrag state for determinism diffs.
  EXPECT_NE(fleet->digest().find("frag=["), std::string::npos);
  EXPECT_NE(fleet->digest().find("repack=["), std::string::npos);
  // Serving stayed intact while the fabric compacted underneath it.
  EXPECT_GT(fleet->stats().completed_ok, 0u);
}

TEST_F(FleetFixture, RepackRunsReplayBitIdenticallyUnderAbortChaos) {
  std::string digests[2];
  for (int round = 0; round < 2; ++round) {
    fault::FaultInjector injector;
    injector.arm({fault::FaultSite::kRepackAbort, -1, -1, 1});
    injector.arm({fault::FaultSite::kRepackAbort, -1, -1, 2});
    auto fleet = make_fleet(repack_topology(), 7, &injector);
    SyntheticLoad load([] {
      LoadOptions options;
      options.seed = 11;
      options.arrivals_per_quantum = 1.5;
      options.modules = {"acc_a", "acc_b"};
      return options;
    }());
    for (int q = 0; q < 50; ++q) {
      for (FleetRequest& req : load.generate(fleet->now(),
                                             fleet->topology().burst_multiplier,
                                             &injector))
        fleet->submit(std::move(req));
      fleet->step();
    }
    fleet->drain(2'000);
    std::uint64_t aborts = 0;
    for (int s = 0; s < fleet->num_shards(); ++s)
      aborts += fleet->repacker(s)->stats().aborts;
    EXPECT_GT(aborts, 0u);  // the armed kRepackAbort faults fired
    digests[round] = fleet->digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(FleetTopologyTest, ParsesRepackKeysAndValidates) {
  const Config config = Config::parse(R"(
[fleet]
shards = 2
repack = 1
repack_interval_cycles = 500000
repack_frag_threshold = 0.25
repack_max_migrations = 2
repack_migration_budget = 3
)");
  const FleetTopology topo = FleetTopology::from_config(config);
  EXPECT_TRUE(topo.repack);
  EXPECT_EQ(topo.repack_interval_cycles, 500'000);
  EXPECT_DOUBLE_EQ(topo.repack_frag_threshold, 0.25);
  EXPECT_EQ(topo.repack_max_migrations, 2);
  EXPECT_EQ(topo.repack_migration_budget, 3);
  topo.validate();

  FleetTopology bad = topo;
  bad.repack_interval_cycles = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = topo;
  bad.repack_frag_threshold = 1.0;  // must be < 1: never triggers
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = topo;
  bad.repack_max_migrations = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = topo;
  bad.repack_migration_budget = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  // The knobs are ignored (not validated) while repack is off.
  bad.repack = false;
  bad.validate();
}

}  // namespace
}  // namespace presp::fleet
