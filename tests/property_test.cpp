// Cross-module property sweeps: invariants that must hold over parameter
// grids rather than single examples.
#include <gtest/gtest.h>

#include <set>

#include "bitstream/bitstream.hpp"
#include "core/runtime_model.hpp"
#include "hls/estimator.hpp"
#include "pnr/engine.hpp"
#include "util/rng.hpp"
#include "wami/accelerators.hpp"

namespace presp {
namespace {

// ------------------------------------------------ HLS estimator sweeps

class HlsKernelSweep : public ::testing::TestWithParam<int> {};

TEST_P(HlsKernelSweep, WamiKernelsEstimateSanely) {
  const int k = GetParam();
  const auto spec = wami::wami_kernel_spec(k);
  const auto kernel = hls::estimate(spec);
  EXPECT_GT(kernel.resources.luts, 500) << spec.name;
  EXPECT_LT(kernel.resources.luts, 60'000) << spec.name;
  EXPECT_GE(kernel.resources.dsp, 0);
  EXPECT_GT(kernel.latency.compute_cycles(1'000), 0);

  // Resources are monotone in the unroll factor.
  auto wider = spec;
  wider.num_pes += 4;
  EXPECT_GT(hls::estimate(wider).resources.luts, kernel.resources.luts);

  // Throughput never decreases with more PEs (same cycles or fewer).
  EXPECT_LE(hls::estimate(wider).latency.compute_cycles(100'000),
            kernel.latency.compute_cycles(100'000) + 1);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, HlsKernelSweep, ::testing::Range(1, 13),
                         [](const auto& info) {
                           return wami::kernel_name(info.param);
                         });

// ------------------------------------------------- runtime model laws

class ModelMonotonicity
    : public ::testing::TestWithParam<std::tuple<long long, long long>> {};

TEST_P(ModelMonotonicity, CostsIncreaseWithSize) {
  const auto [static_luts, module_luts] = GetParam();
  const auto device = fabric::Device::vc707();
  const core::RuntimeModel model(device);
  const long long region = 280'000;

  // Larger modules cost more in every mode.
  EXPECT_LT(model.serial_marginal(module_luts),
            model.serial_marginal(module_luts + 5'000));
  EXPECT_LT(model.in_context_module(module_luts, static_luts),
            model.in_context_module(module_luts + 5'000, static_luts));
  // A bigger static part makes in-context runs slower (congestion).
  EXPECT_LT(model.in_context_module(module_luts, static_luts),
            model.in_context_module(module_luts, static_luts + 40'000));
  // Synthesis is monotone too.
  EXPECT_LT(model.synthesis(module_luts), model.synthesis(module_luts * 2));
  // The standard flow's joint run is cheaper than composed serial but
  // still positive.
  const std::vector<long long> mods{module_luts, module_luts / 2};
  EXPECT_GT(model.predict_standard(static_luts, region, mods), 0.0);
  EXPECT_LT(model.predict_standard(static_luts, region, mods),
            model.predict_serial(static_luts, region, mods));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ModelMonotonicity,
    ::testing::Combine(::testing::Values(40'000LL, 80'000LL, 120'000LL),
                       ::testing::Values(5'000LL, 20'000LL, 35'000LL)));

// --------------------------------------------- placer capacity sweeps

class PlacerCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacerCapacitySweep, PlacementLegalAcrossDesignSizes) {
  const int cells = GetParam();
  const auto device = fabric::Device::vc707();
  netlist::Netlist nl("sweep");
  presp::Rng rng(static_cast<std::uint64_t>(cells));
  for (int i = 0; i < cells; ++i)
    nl.add_cell({"c" + std::to_string(i),
                 netlist::CellKind::kLogic,
                 {static_cast<std::int64_t>(100 + rng.next_below(150)),
                  200, 0, 0},
                 ""});
  for (int i = 0; i + 1 < cells; ++i)
    nl.add_net({"n" + std::to_string(i), static_cast<netlist::CellId>(i),
                {static_cast<netlist::CellId>(i + 1)}, 32});
  pnr::PlacerOptions opt;
  opt.temperature_steps = 6;
  opt.moves_per_cell = 2;
  const auto result = pnr::Placer(device, opt).place(nl, {});
  EXPECT_EQ(result.overflow, 0.0) << cells << " cells";
  // Every cell placed on a reconfigurable (logic-capable) column.
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const auto& loc = result.placement.at(c);
    EXPECT_TRUE(loc.valid());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlacerCapacitySweep,
                         ::testing::Values(20, 80, 200, 500));

// ---------------------------------------------- router capacity sweeps

TEST(RouterPropertyTest, OverflowReportedWhenCapacityTiny) {
  // Squeeze wide nets through a 1-row corridor with tiny edge capacity:
  // the router must terminate and report overflow rather than loop.
  const auto device = fabric::Device::vc707();
  netlist::Netlist nl("tight");
  for (int i = 0; i < 8; ++i)
    nl.add_cell({"c" + std::to_string(i),
                 netlist::CellKind::kLogic,
                 {100, 100, 0, 0},
                 ""});
  for (int i = 0; i < 4; ++i)
    nl.add_net({"n" + std::to_string(i), static_cast<netlist::CellId>(i),
                {static_cast<netlist::CellId>(i + 4)}, 200});
  pnr::PlacementConstraints constraints;
  constraints.region = fabric::Pblock{2, 40, 0, 0};  // single row
  pnr::PlacerOptions popt;
  popt.temperature_steps = 4;
  const auto placed = pnr::Placer(device, popt).place(nl, constraints);
  pnr::RoutingState state(device, /*h_capacity=*/64, /*v_capacity=*/64);
  const auto result = pnr::Router(device).route(nl, placed.placement, state);
  EXPECT_FALSE(result.success);
  EXPECT_GT(result.overflow, 0);
  EXPECT_LE(result.iterations, 3);
}

TEST(RouterPropertyTest, SharedStateAccumulatesAcrossNetlists) {
  const auto device = fabric::Device::vc707();
  const auto make = [&](const std::string& name) {
    netlist::Netlist nl(name);
    nl.add_cell({"a", netlist::CellKind::kLogic, {100, 0, 0, 0}, ""});
    nl.add_cell({"b", netlist::CellKind::kLogic, {100, 0, 0, 0}, ""});
    nl.add_net({"n", 0, {1}, 64});
    return nl;
  };
  const auto nl1 = make("one");
  const auto nl2 = make("two");
  pnr::Placement placement;
  placement.locations = {{10, 2}, {40, 2}};
  pnr::RoutingState state(device);
  pnr::Router router(device);
  router.route(nl1, placement, state);
  const long long usage_one = state.total_usage();
  router.route(nl2, placement, state);
  EXPECT_EQ(state.total_usage(), 2 * usage_one);
}

// ----------------------------------------- bitstream size monotonicity

class BitstreamFillSweep : public ::testing::TestWithParam<double> {};

TEST_P(BitstreamFillSweep, CompressedSizeMonotoneInFill) {
  const double fill = GetParam();
  const auto device = fabric::Device::vc707();
  const bitstream::BitstreamGenerator gen(device);
  const fabric::Pblock pblock{3, 60, 1, 2};

  auto build = [&](double f) {
    netlist::Netlist nl("fill");
    pnr::Placement placement;
    for (int col = pblock.col_lo; col <= pblock.col_hi; ++col)
      for (int row = pblock.row_lo; row <= pblock.row_hi; ++row) {
        const auto cap = device.cell_resources(col).luts;
        const auto luts = static_cast<std::int64_t>(f * cap);
        if (luts == 0) continue;
        const auto id = nl.add_cell(
            {"c" + std::to_string(col) + "_" + std::to_string(row),
             netlist::CellKind::kLogic,
             {luts, 0, 0, 0},
             ""});
        placement.locations.resize(id + 1);
        placement.locations[id] = pnr::GridLoc{col, row};
      }
    return gen.partial("s", "m", pblock, nl, placement).compressed_bytes();
  };

  EXPECT_LE(build(fill), build(std::min(1.0, fill + 0.3)));
}

INSTANTIATE_TEST_SUITE_P(Fills, BitstreamFillSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

// ------------------------------------- balanced grouping is a partition

class GroupingSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GroupingSweep, GroupsPartitionModulesAndBalanceLoads) {
  const auto [n_modules, tau] = GetParam();
  presp::Rng rng(static_cast<std::uint64_t>(n_modules * 31 + tau));
  std::vector<long long> mods;
  for (int i = 0; i < n_modules; ++i)
    mods.push_back(2'000 + static_cast<long long>(rng.next_below(38'000)));
  const auto groups = core::balanced_groups(mods, tau);
  ASSERT_EQ(groups.size(),
            static_cast<std::size_t>(std::min(tau, n_modules)));
  std::set<std::size_t> seen;
  long long max_load = 0;
  long long total = 0;
  for (const auto& g : groups) {
    long long load = 0;
    for (const auto i : g) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate module in groups";
      load += mods[i];
    }
    max_load = std::max(max_load, load);
    total += load;
  }
  EXPECT_EQ(seen.size(), mods.size());
  // LPT guarantee: makespan <= (4/3 - 1/3m) * OPT <= 4/3 * (total/m + max).
  const long long m = static_cast<long long>(groups.size());
  const long long opt_lower =
      std::max(total / m, *std::max_element(mods.begin(), mods.end()));
  EXPECT_LE(max_load, opt_lower * 4 / 3 + opt_lower / 3 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GroupingSweep,
    ::testing::Combine(::testing::Values(2, 5, 9, 16),
                       ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace presp
