// Chase-Lev deque: owner-side LIFO semantics, ring growth across the
// capacity boundary, and exactly-once delivery under concurrent thieves.
// The stress tests are the tier-1 TSan stage's main target: every
// interleaving of owner pop vs thief steal must hand each task to
// exactly one consumer, with no data race on the ring cells.
//
// Stress-case randomness (owner pop cadence, batch sizes) is seeded:
// every case derives its stream from ONE base seed, logged once below.
// To replay a failing log, re-run with PRESP_CHASE_LEV_SEED set to the
// logged value — the case name pins the rest, so the log line alone is
// enough to reproduce.
#include "exec/chase_lev.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace presp::exec {
namespace {

std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t value = 0xC4A5E1EFu;  // default: deterministic CI runs
    if (const char* env = std::getenv("PRESP_CHASE_LEV_SEED"))
      value = std::strtoull(env, nullptr, 0);
    std::printf("[chase_lev] base seed 0x%" PRIx64
                " (PRESP_CHASE_LEV_SEED=0x%" PRIx64 " reproduces)\n",
                value, value);
    return value;
  }();
  return seed;
}

/// Per-case stream: FNV-1a of the case name mixed into the base seed,
/// so cases stay independent but are all pinned by the one logged base.
std::uint64_t case_seed(const char* case_name) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char* p = case_name; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= 1099511628211ULL;
  }
  return hash ^ base_seed();
}

TEST(ChaseLevTest, PopOnEmptyReturnsNull) {
  ChaseLevDeque<int> deque;
  EXPECT_EQ(deque.pop(), nullptr);
  EXPECT_EQ(deque.steal(), nullptr);
  EXPECT_EQ(deque.size_approx(), 0);
}

TEST(ChaseLevTest, OwnerPushPopIsLifo) {
  ChaseLevDeque<int> deque;
  int values[3] = {10, 20, 30};
  for (int& v : values) deque.push(&v);
  EXPECT_EQ(deque.size_approx(), 3);
  EXPECT_EQ(deque.pop(), &values[2]);
  EXPECT_EQ(deque.pop(), &values[1]);
  EXPECT_EQ(deque.pop(), &values[0]);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(ChaseLevTest, StealTakesOldestFirst) {
  ChaseLevDeque<int> deque;
  int values[3] = {1, 2, 3};
  for (int& v : values) deque.push(&v);
  EXPECT_EQ(deque.steal(), &values[0]);  // FIFO from the top end
  EXPECT_EQ(deque.steal(), &values[1]);
  EXPECT_EQ(deque.pop(), &values[2]);
  EXPECT_EQ(deque.steal(), nullptr);
}

TEST(ChaseLevTest, CapacityRoundsUpToPowerOfTwo) {
  ChaseLevDeque<int> deque(5);
  EXPECT_EQ(deque.capacity(), 8u);
  ChaseLevDeque<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(ChaseLevTest, GrowsAcrossCapacityBoundaryPreservingOrder) {
  ChaseLevDeque<int> deque(2);
  ASSERT_EQ(deque.capacity(), 2u);
  std::vector<int> values(9);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int>(i);
    deque.push(&values[i]);
  }
  EXPECT_GE(deque.capacity(), values.size());
  // LIFO order survives the copies into bigger rings.
  for (int i = static_cast<int>(values.size()) - 1; i >= 0; --i)
    EXPECT_EQ(deque.pop(), &values[static_cast<std::size_t>(i)]);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(ChaseLevTest, GrowthAtExactBoundaryWithStolenPrefix) {
  // Steal a prefix first so the live window wraps the ring before the
  // growth copy (top > 0 exercises the modular copy in grow()).
  ChaseLevDeque<int> deque(4);
  std::vector<int> values(12);
  for (int i = 0; i < 3; ++i) deque.push(&values[static_cast<std::size_t>(i)]);
  EXPECT_EQ(deque.steal(), &values[0]);
  EXPECT_EQ(deque.steal(), &values[1]);
  for (std::size_t i = 3; i < values.size(); ++i) deque.push(&values[i]);
  // 1 survivor + 9 pushed = 10 live.
  EXPECT_EQ(deque.size_approx(), 10);
  EXPECT_EQ(deque.steal(), &values[2]);
  for (std::size_t i = values.size(); i-- > 3;)
    EXPECT_EQ(deque.pop(), &values[i]);
  EXPECT_EQ(deque.pop(), nullptr);
}

// Exactly-once delivery: T thieves race the owner for every element;
// each element must be consumed once and only once.
TEST(ChaseLevStressTest, ConcurrentStealersReceiveEachTaskExactlyOnce) {
  constexpr int kTasks = 20'000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque(8);  // small initial ring: force growth races
  std::vector<int> tasks(kTasks);
  std::vector<std::atomic<int>> consumed(kTasks);
  for (auto& c : consumed) c.store(0, std::memory_order_relaxed);

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int th = 0; th < kThieves; ++th)
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* task = deque.steal())
          consumed[static_cast<std::size_t>(task - tasks.data())].fetch_add(
              1, std::memory_order_relaxed);
      }
      // Drain whatever the owner left behind.
      while (int* task = deque.steal())
        consumed[static_cast<std::size_t>(task - tasks.data())].fetch_add(
            1, std::memory_order_relaxed);
    });

  // Owner: interleave pushes with seeded pops to exercise the
  // last-element CAS at varying queue depths.
  Rng rng(case_seed("ConcurrentStealersReceiveEachTaskExactlyOnce"));
  for (int i = 0; i < kTasks; ++i) {
    deque.push(&tasks[static_cast<std::size_t>(i)]);
    if (rng.next_below(3) == 0) {
      if (int* task = deque.pop())
        consumed[static_cast<std::size_t>(task - tasks.data())].fetch_add(
            1, std::memory_order_relaxed);
    }
  }
  while (int* task = deque.pop())
    consumed[static_cast<std::size_t>(task - tasks.data())].fetch_add(
        1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  for (int i = 0; i < kTasks; ++i)
    ASSERT_EQ(consumed[static_cast<std::size_t>(i)].load(), 1)
        << "task " << i << " consumed wrong number of times";
}

// Owner pops everything while thieves hammer: the pop-side CAS path.
TEST(ChaseLevStressTest, OwnerAndThievesDrainWithoutLossOrDuplication) {
  constexpr int kRounds = 200;
  constexpr int kMaxBatch = 128;
  ChaseLevDeque<int> deque(4);
  std::vector<int> tasks(kRounds * kMaxBatch);
  std::atomic<long long> stolen_sum{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    long long sum = 0;
    while (!done.load(std::memory_order_acquire))
      if (int* task = deque.steal()) sum += *task;
    while (int* task = deque.steal()) sum += *task;
    stolen_sum.store(sum, std::memory_order_release);
  });

  // Seeded batch sizes vary the live-window depth each round, sweeping
  // the growth boundary from both sides.
  Rng rng(case_seed("OwnerAndThievesDrainWithoutLossOrDuplication"));
  long long pushed_sum = 0;
  long long local_popped = 0;
  int next = 0;
  for (int round = 0; round < kRounds; ++round) {
    const int batch =
        1 + static_cast<int>(rng.next_below(kMaxBatch));
    for (int i = 0; i < batch; ++i, ++next) {
      tasks[static_cast<std::size_t>(next)] = next;
      pushed_sum += next;
      deque.push(&tasks[static_cast<std::size_t>(next)]);
    }
    while (int* task = deque.pop()) local_popped += *task;
  }
  done.store(true, std::memory_order_release);
  thief.join();
  popped_sum.store(local_popped, std::memory_order_release);

  EXPECT_EQ(stolen_sum.load() + popped_sum.load(), pushed_sum);
}

}  // namespace
}  // namespace presp::exec
