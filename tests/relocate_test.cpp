// Relocatable partial bitstreams: footprint signatures, frame-address
// rebasing, and the artifact_io round trip the relocation is visible in.
#include <gtest/gtest.h>

#include "bitstream/artifact_io.hpp"
#include "bitstream/relocate.hpp"
#include "pnr/placer.hpp"
#include "util/error.hpp"

namespace presp::bitstream {
namespace {

/// Starting columns of every non-overlapping CLB column pair — the same
/// relocation slots the fleet's dynamic floorplans use.
std::vector<int> clb_pair_slots(const fabric::Device& device) {
  std::vector<int> slots;
  int col = 0;
  while (col + 1 < device.num_columns()) {
    if (device.column_type(col) == fabric::ColumnType::kClb &&
        device.column_type(col + 1) == fabric::ColumnType::kClb) {
      slots.push_back(col);
      col += 2;
    } else {
      ++col;
    }
  }
  return slots;
}

class RelocateFixture : public ::testing::Test {
 protected:
  RelocateFixture()
      : device_(fabric::Device::vc707()),
        gen_(device_),
        slots_(clb_pair_slots(device_)) {}

  /// Width-2 CLB region at pair slot `i`, rows [0, 1].
  fabric::Pblock slot_pblock(std::size_t i) const {
    const int col = slots_.at(i);
    return fabric::Pblock{col, col + 1, 0, 1};
  }

  /// A partial bitstream with non-trivial content placed inside `pblock`.
  Bitstream filled_partial(const fabric::Pblock& pblock) const {
    netlist::Netlist nl("reloc");
    pnr::Placement placement;
    for (int col = pblock.col_lo; col <= pblock.col_hi; ++col) {
      for (int row = pblock.row_lo; row <= pblock.row_hi; ++row) {
        const auto cap = device_.cell_resources(col).luts;
        if (cap == 0) continue;
        const auto id = nl.add_cell({"c" + std::to_string(col) + "_" +
                                         std::to_string(row),
                                     netlist::CellKind::kLogic,
                                     {cap / 2, cap / 2, 0, 0},
                                     ""});
        placement.locations.resize(id + 1);
        placement.locations[id] = pnr::GridLoc{col, row};
      }
    }
    return gen_.partial("soc", "acc", pblock, nl, placement);
  }

  fabric::Device device_;
  BitstreamGenerator gen_;
  std::vector<int> slots_;
};

TEST_F(RelocateFixture, SignatureRendersHeightAndColumnTypes) {
  const auto sig = footprint_signature(device_, slot_pblock(0));
  EXPECT_EQ(sig.height, 2);
  EXPECT_EQ(sig.column_types.size(), 2u);
  EXPECT_EQ(sig.to_string(), "h2:CLB.CLB");
}

TEST_F(RelocateFixture, SignatureRejectsOutOfBounds) {
  EXPECT_THROW(
      footprint_signature(device_, {0, device_.num_columns(), 0, 0}),
      InvalidArgument);
  EXPECT_THROW(footprint_signature(device_, {5, 2, 0, 0}), InvalidArgument);
  EXPECT_THROW(
      footprint_signature(device_, {0, 1, 0, device_.region_rows()}),
      InvalidArgument);
}

TEST_F(RelocateFixture, CompatibleAcrossClbPairSlots) {
  ASSERT_GE(slots_.size(), 2u);
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    EXPECT_TRUE(
        compatible_footprint(device_, slot_pblock(0), slot_pblock(i)))
        << "slot " << i;
  }
  EXPECT_EQ(footprint_signature(device_, slot_pblock(0)),
            footprint_signature(device_, slot_pblock(slots_.size() - 1)));
}

TEST_F(RelocateFixture, IncompatibleOnShapeTypeOrBounds) {
  const auto from = slot_pblock(0);
  // Different width.
  fabric::Pblock wide = from;
  wide.col_hi += 1;
  EXPECT_FALSE(compatible_footprint(device_, from, wide));
  // Different height.
  fabric::Pblock tall = slot_pblock(1);
  tall.row_hi += 1;
  EXPECT_FALSE(compatible_footprint(device_, from, tall));
  // Same shape over a different column-type sequence: slide until the
  // window covers a non-CLB column.
  bool found_mismatch = false;
  for (int col = 0; col + 1 < device_.num_columns(); ++col) {
    const fabric::Pblock window{col, col + 1, 0, 1};
    if (footprint_signature(device_, window) !=
        footprint_signature(device_, from)) {
      EXPECT_FALSE(compatible_footprint(device_, from, window));
      found_mismatch = true;
      break;
    }
  }
  EXPECT_TRUE(found_mismatch);
  // Out of bounds is incompatible, never a throw.
  EXPECT_FALSE(compatible_footprint(
      device_, from, {device_.num_columns() - 1, device_.num_columns(), 0, 1}));
}

TEST_F(RelocateFixture, BaseFrameAddressFollowsRowMajorFrameOrder) {
  const auto a = slot_pblock(0);
  const auto b = slot_pblock(1);
  EXPECT_EQ(base_frame_address(device_, {0, 0, 0, 0}), 0);
  EXPECT_LT(base_frame_address(device_, a), base_frame_address(device_, b));
  // Moving one region row down advances by the full row's frame count.
  fabric::Pblock down = a;
  down.row_lo += 1;
  down.row_hi += 1;
  long long frames_per_row = 0;
  for (int col = 0; col < device_.num_columns(); ++col) {
    frames_per_row += device_.frames().frames_for(device_.column_type(col));
  }
  EXPECT_EQ(base_frame_address(device_, down) - base_frame_address(device_, a),
            frames_per_row);
}

TEST_F(RelocateFixture, RebaseKeepsPayloadAndCrcVerbatim) {
  ASSERT_GE(slots_.size(), 2u);
  const auto from = slot_pblock(0);
  const auto to = slot_pblock(slots_.size() - 1);
  const Bitstream bs = filled_partial(from);
  const Bitstream moved = rebase(device_, bs, to);

  EXPECT_EQ(moved.pblock.col_lo, to.col_lo);
  EXPECT_EQ(moved.pblock.col_hi, to.col_hi);
  EXPECT_EQ(moved.words, bs.words);
  EXPECT_EQ(moved.crc, bs.crc);
  EXPECT_EQ(moved.module, bs.module);
  EXPECT_TRUE(moved.partial);
  // The relocation is exactly a base-address rewrite.
  EXPECT_NE(base_frame_address(device_, moved.pblock),
            base_frame_address(device_, bs.pblock));
}

TEST_F(RelocateFixture, RebaseRejectsFullAndIncompatible) {
  netlist::Netlist empty("e");
  pnr::Placement placement;
  const Bitstream full = gen_.full("soc", empty, placement);
  EXPECT_THROW(rebase(device_, full, slot_pblock(0)), InvalidArgument);

  const Bitstream bs = filled_partial(slot_pblock(0));
  fabric::Pblock wide = slot_pblock(1);
  wide.col_hi += 1;
  EXPECT_THROW(rebase(device_, bs, wide), InvalidArgument);
}

TEST_F(RelocateFixture, RebaseRoundTripsThroughArtifactIo) {
  ASSERT_GE(slots_.size(), 2u);
  const auto to = slot_pblock(slots_.size() - 1);
  const Bitstream bs = filled_partial(slot_pblock(0));
  const Bitstream moved = rebase(device_, bs, to);

  const std::string path =
      ::testing::TempDir() + "/" + pbs_filename("soc", "p0", "acc");
  write_bitstream(moved, path);
  const Bitstream loaded = read_bitstream(path);

  // The PBS1 container stores the pblock explicitly, so the rebase
  // survives (and is verifiable in) the serialized artifact.
  EXPECT_EQ(loaded.pblock.col_lo, to.col_lo);
  EXPECT_EQ(loaded.pblock.col_hi, to.col_hi);
  EXPECT_EQ(loaded.pblock.row_lo, to.row_lo);
  EXPECT_EQ(loaded.pblock.row_hi, to.row_hi);
  EXPECT_EQ(loaded.words, bs.words);
  EXPECT_EQ(loaded.crc, bs.crc);
  EXPECT_EQ(loaded.module, "acc");
  EXPECT_TRUE(loaded.partial);

  // And rebasing back home is lossless.
  const Bitstream home = rebase(device_, loaded, slot_pblock(0));
  EXPECT_EQ(home.words, bs.words);
  EXPECT_EQ(home.crc, bs.crc);
  EXPECT_EQ(home.pblock.col_lo, slot_pblock(0).col_lo);
}

}  // namespace
}  // namespace presp::bitstream
