// Stress and edge-case coverage of the simulation kernel and NoC beyond
// the basic unit tests: cancellation patterns, heavy fan-in, determinism
// across runs, and parameterized mesh sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "noc/noc.hpp"
#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace presp {
namespace {

/// Long-lived sink coroutine (a loop-local lambda closure would be
/// destroyed while the coroutine still runs — by-value parameters and a
/// named function avoid the dangling-closure pitfall).
sim::Process count_packets(noc::Noc& noc, int dst, noc::Plane plane,
                           int* received, sim::Time* last,
                           sim::Kernel* kernel) {
  while (true) {
    (void)co_await noc.rx(dst, plane).receive();
    ++*received;
    if (last != nullptr) *last = kernel->now();
  }
}

TEST(KernelStressTest, ManyInterleavedEventsKeepOrder) {
  sim::Kernel k;
  std::vector<std::uint64_t> fired;
  Rng rng(3);
  std::vector<std::pair<sim::Time, int>> expected;
  for (int i = 0; i < 5'000; ++i) {
    const sim::Time at = rng.next_below(1'000);
    expected.emplace_back(at, i);
    k.schedule(at, [&fired, i] { fired.push_back(i); });
  }
  k.run();
  ASSERT_EQ(fired.size(), expected.size());
  // Stable sort by time = execution order (ties broken by schedule order).
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<std::uint64_t>(expected[i].second));
}

TEST(KernelStressTest, CancelHalfTheEvents) {
  sim::Kernel k;
  int ran = 0;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 1'000; ++i)
    ids.push_back(k.schedule(static_cast<sim::Time>(i), [&] { ++ran; }));
  for (std::size_t i = 0; i < ids.size(); i += 2)
    EXPECT_TRUE(k.cancel(ids[i]));
  k.run();
  EXPECT_EQ(ran, 500);
  EXPECT_EQ(k.events_executed(), 500u);
}

TEST(KernelStressTest, CancelDuringExecution) {
  sim::Kernel k;
  bool second_ran = false;
  std::uint64_t second = 0;
  k.schedule(10, [&] { EXPECT_TRUE(k.cancel(second)); });
  second = k.schedule(20, [&] { second_ran = true; });
  k.run();
  EXPECT_FALSE(second_ran);
}

TEST(KernelStressTest, SelfReschedulingProcessTerminates) {
  sim::Kernel k;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) k.schedule(5, hop);
  };
  k.schedule(0, hop);
  EXPECT_EQ(k.run(), 99u * 5u);
  EXPECT_EQ(hops, 100);
}

TEST(KernelStressTest, CoroutineChainDepth) {
  // 1000 processes chained through events: each triggers the next.
  sim::Kernel k;
  constexpr int kDepth = 1'000;
  std::vector<std::unique_ptr<sim::SimEvent>> events;
  for (int i = 0; i <= kDepth; ++i)
    events.push_back(std::make_unique<sim::SimEvent>(k));
  int completed = 0;
  auto stage = [&](int i) -> sim::Process {
    co_await events[static_cast<std::size_t>(i)]->wait();
    co_await sim::Delay(k, 1);
    ++completed;
    events[static_cast<std::size_t>(i + 1)]->trigger();
  };
  for (int i = 0; i < kDepth; ++i) stage(i);
  events[0]->trigger();
  k.run();
  EXPECT_EQ(completed, kDepth);
  EXPECT_TRUE(events[kDepth]->triggered());
}

TEST(KernelStressTest, MailboxManyToOneFifoPerSender) {
  sim::Kernel k;
  sim::Mailbox<std::pair<int, int>> box(k);
  std::vector<std::vector<int>> seen(4);
  auto receiver = [&]() -> sim::Process {
    for (int i = 0; i < 400; ++i) {
      const auto [sender, seq] = co_await box.receive();
      seen[static_cast<std::size_t>(sender)].push_back(seq);
    }
  };
  receiver();
  auto sender = [&](int id) -> sim::Process {
    for (int i = 0; i < 100; ++i) {
      co_await sim::Delay(k, static_cast<sim::Time>(1 + (id * 7 + i) % 5));
      box.send({id, i});
    }
  };
  for (int id = 0; id < 4; ++id) sender(id);
  k.run();
  for (int id = 0; id < 4; ++id) {
    ASSERT_EQ(seen[static_cast<std::size_t>(id)].size(), 100u);
    for (int i = 0; i < 100; ++i)
      EXPECT_EQ(seen[static_cast<std::size_t>(id)][static_cast<std::size_t>(i)], i)
          << "sender " << id;
  }
}

TEST(KernelStressTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    sim::Kernel k;
    Rng rng(11);
    std::uint64_t signature = 0;
    for (int i = 0; i < 2'000; ++i) {
      const sim::Time at = rng.next_below(500);
      k.schedule(at, [&signature, &k] {
        signature = signature * 1099511628211ULL + k.now();
      });
    }
    k.run();
    return signature;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------------- NoC sweeps

class MeshSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MeshSweep, AllPairsDeliverWithZeroLoadLatency) {
  const auto [rows, cols] = GetParam();
  sim::Kernel k;
  noc::Noc noc(k, rows, cols);
  const int n = rows * cols;
  int received = 0;
  for (int dst = 0; dst < n; ++dst)
    count_packets(noc, dst, noc::Plane::kConfig, &received, nullptr, &k);
  int sent = 0;
  for (int src = 0; src < n; ++src)
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      noc.send({noc::Plane::kConfig, src, dst, 1, 0, 0});
      ++sent;
    }
  k.run();
  EXPECT_EQ(received, sent);
  // Route lengths bounded by the mesh diameter.
  for (int src = 0; src < n; ++src)
    for (int dst = 0; dst < n; ++dst)
      EXPECT_LE(static_cast<int>(noc.route(src, dst).size()),
                rows + cols - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MeshSweep,
    ::testing::Values(std::tuple{1, 2}, std::tuple{2, 2}, std::tuple{3, 3},
                      std::tuple{4, 5}, std::tuple{2, 6}));

TEST(NocStressTest, SaturatedLinkThroughputMatchesSerialization) {
  sim::Kernel k;
  noc::Noc noc(k, 1, 2);
  constexpr int kPackets = 200;
  constexpr int kFlits = 32;
  int received = 0;
  sim::Time last = 0;
  count_packets(noc, 1, noc::Plane::kDmaRsp, &received, &last, &k);
  for (int i = 0; i < kPackets; ++i)
    noc.send({noc::Plane::kDmaRsp, 0, 1, kFlits, 0, 0});
  k.run();
  EXPECT_EQ(received, kPackets);
  // The single link serializes: total time >= packets * flits cycles.
  EXPECT_GE(last, static_cast<sim::Time>(kPackets) * kFlits);
  // ...and the pipeline adds at most per-packet router overhead.
  EXPECT_LE(last, static_cast<sim::Time>(kPackets) * (kFlits + 8) + 16);
}

}  // namespace
}  // namespace presp
