#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"

namespace presp::sim {
namespace {

TEST(KernelTest, EventsRunInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule(30, [&] { order.push_back(3); });
  k.schedule(10, [&] { order.push_back(1); });
  k.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(k.run(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(KernelTest, SameTimeEventsRunInScheduleOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) k.schedule(5, [&order, i] { order.push_back(i); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(KernelTest, NestedSchedulingAdvancesClock) {
  Kernel k;
  Time second = 0;
  k.schedule(10, [&] { k.schedule(15, [&] { second = k.now(); }); });
  k.run();
  EXPECT_EQ(second, 25u);
}

TEST(KernelTest, CancelPreventsExecution) {
  Kernel k;
  bool ran = false;
  const auto id = k.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(k.cancel(id));
  EXPECT_FALSE(k.cancel(id));  // second cancel is a no-op
  k.run();
  EXPECT_FALSE(ran);
}

TEST(KernelTest, RunUntilStopsAtDeadline) {
  Kernel k;
  int ran = 0;
  k.schedule(10, [&] { ++ran; });
  k.schedule(100, [&] { ++ran; });
  EXPECT_EQ(k.run_until(50), 50u);
  EXPECT_EQ(ran, 1);
  k.run();
  EXPECT_EQ(ran, 2);
}

TEST(KernelTest, EmptyReflectsPendingWork) {
  Kernel k;
  EXPECT_TRUE(k.empty());
  const auto id = k.schedule(1, [] {});
  EXPECT_FALSE(k.empty());
  k.cancel(id);
  EXPECT_TRUE(k.empty());
}

TEST(ProcessTest, DelaySuspendsAndResumes) {
  Kernel k;
  std::vector<Time> stamps;
  auto proc = [&]() -> Process {
    stamps.push_back(k.now());
    co_await Delay(k, 10);
    stamps.push_back(k.now());
    co_await Delay(k, 5);
    stamps.push_back(k.now());
  };
  proc();
  k.run();
  EXPECT_EQ(stamps, (std::vector<Time>{0, 10, 15}));
}

TEST(ProcessTest, EventWakesAllWaiters) {
  Kernel k;
  SimEvent ev(k);
  int woken = 0;
  auto waiter = [&]() -> Process {
    co_await ev.wait();
    ++woken;
  };
  waiter();
  waiter();
  k.schedule(50, [&] { ev.trigger(); });
  k.run();
  EXPECT_EQ(woken, 2);
  EXPECT_TRUE(ev.triggered());
}

TEST(ProcessTest, TriggeredEventDoesNotBlock) {
  Kernel k;
  SimEvent ev(k);
  ev.trigger();
  Time when = 123;
  auto waiter = [&]() -> Process {
    co_await ev.wait();
    when = k.now();
  };
  waiter();
  k.run();
  EXPECT_EQ(when, 0u);
}

TEST(ProcessTest, SemaphoreSerializesResource) {
  Kernel k;
  Semaphore sem(k, 1);
  std::vector<std::pair<int, Time>> log;
  auto user = [&](int id) -> Process {
    co_await sem.acquire();
    log.emplace_back(id, k.now());
    co_await Delay(k, 10);
    sem.release();
  };
  user(1);
  user(2);
  user(3);
  k.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<int, Time>{1, 0}));
  EXPECT_EQ(log[1], (std::pair<int, Time>{2, 10}));
  EXPECT_EQ(log[2], (std::pair<int, Time>{3, 20}));
}

TEST(ProcessTest, SemaphoreCountingAllowsConcurrency) {
  Kernel k;
  Semaphore sem(k, 2);
  std::vector<Time> starts;
  auto user = [&]() -> Process {
    co_await sem.acquire();
    starts.push_back(k.now());
    co_await Delay(k, 10);
    sem.release();
  };
  user();
  user();
  user();
  k.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 0u);
  EXPECT_EQ(starts[2], 10u);
}

TEST(ProcessTest, MailboxDeliversInFifoOrder) {
  Kernel k;
  Mailbox<int> box(k);
  std::vector<int> got;
  auto receiver = [&]() -> Process {
    for (int i = 0; i < 3; ++i) got.push_back(co_await box.receive());
  };
  receiver();
  k.schedule(5, [&] { box.send(1); });
  k.schedule(5, [&] { box.send(2); });
  k.schedule(9, [&] { box.send(3); });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(ProcessTest, MailboxBuffersWhenNoReceiver) {
  Kernel k;
  Mailbox<int> box(k);
  box.send(7);
  box.send(8);
  EXPECT_EQ(box.size(), 2u);
  int first = 0;
  auto receiver = [&]() -> Process { first = co_await box.receive(); };
  receiver();
  k.run();
  EXPECT_EQ(first, 7);
  EXPECT_EQ(box.size(), 1u);
}

TEST(ProcessTest, TwoReceiversShareOneMailbox) {
  Kernel k;
  Mailbox<int> box(k);
  std::vector<int> got;
  auto receiver = [&]() -> Process { got.push_back(co_await box.receive()); };
  receiver();
  receiver();
  k.schedule(1, [&] { box.send(10); });
  k.schedule(2, [&] { box.send(20); });
  k.run();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
}

}  // namespace
}  // namespace presp::sim
