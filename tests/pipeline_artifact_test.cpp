// Tests for the software WAMI pipeline API and the bitstream artifact
// files (flow -> disk -> loader round trip).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bitstream/artifact_io.hpp"
#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "util/log.hpp"
#include "wami/frame_generator.hpp"
#include "wami/pipeline.hpp"

namespace presp {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

// ------------------------------------------------------------ pipeline

TEST(WamiPipelineTest, TracksCameraDriftAcrossFrames) {
  wami::SceneOptions scene;
  scene.width = 64;
  scene.height = 64;
  scene.drift_x = 1.0;
  scene.drift_y = -0.6;
  scene.num_objects = 0;
  scene.noise_sigma = 0.5;
  wami::FrameGenerator gen(scene);
  wami::WamiPipeline pipeline;
  wami::PipelineFrameResult last;
  for (int f = 0; f < 4; ++f) last = pipeline.process(gen.next_frame());
  EXPECT_EQ(pipeline.frames_processed(), 4);
  // After 3 drift steps the recovered translation matches the
  // accumulated camera motion. Sign convention: camera drift +d shifts
  // scene content by -d in camera coordinates, and warp_affine samples
  // the source at +p, so registration recovers p = -drift.
  EXPECT_NEAR(last.params[4], -3.0 * scene.drift_x, 0.5);
  EXPECT_NEAR(last.params[5], -3.0 * scene.drift_y, 0.5);
}

TEST(WamiPipelineTest, StabilizationReducesResidualVsRaw) {
  wami::SceneOptions scene;
  scene.width = 64;
  scene.height = 64;
  scene.drift_x = 1.5;
  scene.num_objects = 0;
  scene.noise_sigma = 0.5;
  wami::FrameGenerator gen(scene);
  wami::WamiPipeline pipeline;
  const auto first = pipeline.process(gen.next_frame());
  (void)first;
  const auto bayer = gen.next_frame();
  const auto raw = wami::grayscale(wami::debayer(bayer));
  const auto result = pipeline.process(bayer);
  // Residual against the template after registration beats the raw
  // difference.
  double raw_mae = 0.0;
  const auto& ref = *pipeline.reference();
  for (std::size_t i = 0; i < raw.size(); ++i)
    raw_mae += std::abs(raw.pixels()[i] - ref.pixels()[i]);
  raw_mae /= static_cast<double>(raw.size());
  EXPECT_LT(result.residual, raw_mae);
}

TEST(WamiPipelineTest, FlagsMovingObjects) {
  wami::SceneOptions scene;
  scene.width = 64;
  scene.height = 64;
  scene.drift_x = 0.0;
  scene.drift_y = 0.0;
  scene.num_objects = 2;
  scene.object_size = 6;
  scene.object_speed = 3.0;
  wami::FrameGenerator gen(scene);
  wami::WamiPipeline pipeline;
  int last_changed = 0;
  // Let the GMM absorb the background first (same burn-in as the
  // kernel-level tests), then check a steady-state frame.
  for (int f = 0; f < 16; ++f)
    last_changed = pipeline.process(gen.next_frame()).changed_pixels;
  // Two 6x6 movers: the mask should flag roughly their area (trail +
  // leading edge), not the whole frame.
  EXPECT_GT(last_changed, 10);
  EXPECT_LT(last_changed, 64 * 64 / 4);
}

TEST(WamiPipelineTest, ResetStartsOver) {
  wami::FrameGenerator gen(wami::SceneOptions{64, 64});
  wami::WamiPipeline pipeline;
  pipeline.process(gen.next_frame());
  pipeline.process(gen.next_frame());
  pipeline.reset();
  EXPECT_EQ(pipeline.frames_processed(), 0);
  EXPECT_FALSE(pipeline.reference().has_value());
  const auto result = pipeline.process(gen.next_frame());
  EXPECT_EQ(result.params, wami::AffineParams{});  // new template frame
}

// ------------------------------------------------------------ artifacts

TEST(ArtifactIoTest, WriteReadRoundTrip) {
  const auto device = fabric::Device::vc707();
  const bitstream::BitstreamGenerator gen(device);
  netlist::Netlist nl("a");
  nl.add_cell({"c", netlist::CellKind::kLogic, {300, 0, 0, 0}, ""});
  pnr::Placement placement;
  placement.locations = {{10, 1}};
  const auto pbs =
      gen.partial("soc", "mod", fabric::Pblock{8, 20, 1, 1}, nl, placement);

  const std::string path = ::testing::TempDir() + "/rt.pbs";
  bitstream::write_bitstream(pbs, path);
  const auto loaded = bitstream::read_bitstream(path);
  EXPECT_EQ(loaded.design, "soc");
  EXPECT_EQ(loaded.module, "mod");
  EXPECT_TRUE(loaded.partial);
  EXPECT_EQ(loaded.pblock.col_lo, 8);
  EXPECT_EQ(loaded.words, pbs.words);
  EXPECT_EQ(loaded.crc, pbs.crc);
  std::remove(path.c_str());
}

TEST(ArtifactIoTest, CorruptedFileDetected) {
  const auto device = fabric::Device::vc707();
  const bitstream::BitstreamGenerator gen(device);
  netlist::Netlist nl("a");
  nl.add_cell({"c", netlist::CellKind::kLogic, {300, 0, 0, 0}, ""});
  pnr::Placement placement;
  placement.locations = {{10, 1}};
  const auto pbs =
      gen.partial("soc", "mod", fabric::Pblock{8, 20, 1, 1}, nl, placement);
  const std::string path = ::testing::TempDir() + "/bad.pbs";
  bitstream::write_bitstream(pbs, path);
  // Flip one payload byte near the end of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    char byte;
    f.read(&byte, 1);
    f.seekp(-5, std::ios::end);
    byte = static_cast<char>(byte ^ 0x7);
    f.write(&byte, 1);
  }
  EXPECT_THROW(bitstream::read_bitstream(path), Error);
  std::remove(path.c_str());

  EXPECT_THROW(bitstream::read_bitstream("/nonexistent.pbs"),
               InvalidArgument);
}

TEST(ArtifactIoTest, FlowWritesArtifactsPerModule) {
  const auto dir = ::testing::TempDir() + "/presp_artifacts";
  std::filesystem::create_directories(dir);
  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.pnr.placer.temperature_steps = 4;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 20;
  opt.artifacts_dir = dir;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(core::characterization_soc(3));
  ASSERT_TRUE(result.physical_ok);

  for (const auto& m : result.modules) {
    const auto path =
        dir + "/" + bitstream::pbs_filename("soc_3", m.partition, m.module);
    const auto loaded = bitstream::read_bitstream(path);
    EXPECT_EQ(loaded.module, m.module);
    // On-disk size tracks the reported compressed size (header deltas
    // aside).
    EXPECT_NEAR(static_cast<double>(std::filesystem::file_size(path)),
                static_cast<double>(m.pbs_compressed_bytes),
                static_cast<double>(m.pbs_compressed_bytes) * 0.05);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace presp
