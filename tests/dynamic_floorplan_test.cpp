// Live region split/merge and the fragmentation metric behind the
// defragmentation repacker.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "floorplan/dynamic.hpp"
#include "trace/metrics.hpp"
#include "util/error.hpp"

namespace presp::floorplan {
namespace {

using fabric::ColumnType;
using fabric::Pblock;

/// 8 uniform CLB columns x 2 region rows: exact fragmentation arithmetic.
fabric::Device flat_device() {
  return fabric::Device("flat8", 2,
                        std::vector<ColumnType>(8, ColumnType::kClb),
                        {400, 800, 0, 0}, 0, 0, fabric::FrameProfile{});
}

/// CLB | IO | CLB CLB: the IO column is never allocatable.
fabric::Device gapped_device() {
  return fabric::Device("gap4", 1,
                        {ColumnType::kClb, ColumnType::kIo, ColumnType::kClb,
                         ColumnType::kClb},
                        {400, 800, 0, 0}, 0, 0, fabric::FrameProfile{});
}

TEST(DynamicFloorplanTest, ClaimReleaseAndLookup) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  EXPECT_EQ(plan.size(), 0u);

  plan.claim(3, {2, 3, 0, 1});
  ASSERT_TRUE(plan.region(3).has_value());
  EXPECT_EQ(plan.region(3)->col_lo, 2);
  EXPECT_FALSE(plan.region(4).has_value());

  EXPECT_THROW(plan.claim(3, {6, 7, 0, 0}), InvalidArgument);  // dup id
  EXPECT_THROW(plan.claim(4, {3, 4, 0, 0}), InvalidArgument);  // overlap
  EXPECT_THROW(plan.claim(4, {7, 8, 0, 0}), InvalidArgument);  // bounds
  EXPECT_THROW(plan.claim(4, {5, 4, 0, 0}), InvalidArgument);  // degenerate

  plan.release(3);
  EXPECT_EQ(plan.size(), 0u);
  EXPECT_THROW(plan.release(3), InvalidArgument);
}

TEST(DynamicFloorplanTest, ClaimRejectsNonReconfigurableColumns) {
  const auto device = gapped_device();
  DynamicFloorplan plan(device);
  EXPECT_THROW(plan.claim(0, {0, 2, 0, 0}), InvalidArgument);  // crosses IO
  plan.claim(0, {2, 3, 0, 0});  // pure CLB pair is fine
}

TEST(DynamicFloorplanTest, SplitByColumnAndRowThenMergeBack) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {2, 5, 0, 1});

  plan.split(1, 2, 'c', 3);
  EXPECT_EQ(plan.region(1)->col_hi, 3);
  EXPECT_EQ(plan.region(2)->col_lo, 4);
  EXPECT_EQ(plan.region(2)->col_hi, 5);

  plan.split(1, 3, 'r', 0);
  EXPECT_EQ(plan.region(1)->row_hi, 0);
  EXPECT_EQ(plan.region(3)->row_lo, 1);
  EXPECT_EQ(plan.size(), 3u);

  plan.merge(1, 3);  // rows rejoin
  EXPECT_EQ(plan.region(1)->row_hi, 1);
  plan.merge(1, 2);  // columns rejoin
  EXPECT_EQ(plan.region(1)->col_hi, 5);
  EXPECT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.region(1)->cells(), 8);
}

TEST(DynamicFloorplanTest, SplitAndMergeRejectIllegalCuts) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {2, 5, 0, 1});
  plan.claim(9, {0, 0, 0, 0});

  EXPECT_THROW(plan.split(7, 8, 'c', 3), InvalidArgument);  // unknown id
  EXPECT_THROW(plan.split(1, 9, 'c', 3), InvalidArgument);  // id in use
  EXPECT_THROW(plan.split(1, 1, 'c', 3), InvalidArgument);  // self
  EXPECT_THROW(plan.split(1, 2, 'c', 5), InvalidArgument);  // empty half
  EXPECT_THROW(plan.split(1, 2, 'c', 1), InvalidArgument);  // outside
  EXPECT_THROW(plan.split(1, 2, 'x', 3), InvalidArgument);  // bad axis

  plan.claim(2, {7, 7, 0, 1});
  EXPECT_THROW(plan.merge(1, 2), InvalidArgument);  // not adjacent
  plan.claim(3, {6, 6, 0, 0});
  EXPECT_THROW(plan.merge(1, 3), InvalidArgument);  // ragged rectangle
  EXPECT_THROW(plan.merge(1, 1), InvalidArgument);  // self
}

TEST(DynamicFloorplanTest, AllocateIsFirstFitTopmostLeftmost) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {0, 1, 0, 1});

  const auto a = plan.allocate(2, 2, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->col_lo, 2);
  EXPECT_EQ(a->row_lo, 0);

  const auto b = plan.allocate(3, 2, 2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->col_lo, 4);

  EXPECT_FALSE(plan.allocate(4, 5, 1).has_value());  // no room left
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_THROW(plan.allocate(1, 1, 1), InvalidArgument);  // id taken
  EXPECT_THROW(plan.allocate(5, 0, 1), InvalidArgument);  // degenerate
}

TEST(DynamicFloorplanTest, AllocateSkipsNonAllocatableColumns) {
  const auto device = gapped_device();
  DynamicFloorplan plan(device);
  const auto got = plan.allocate(1, 2, 1);
  ASSERT_TRUE(got.has_value());
  // Columns {0,1} cross the IO column; first legal pair is {2,3}.
  EXPECT_EQ(got->col_lo, 2);
  EXPECT_FALSE(plan.allocate(2, 2, 1).has_value());
}

TEST(DynamicFloorplanTest, FragmentationExactArithmetic) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);

  auto stats = plan.fragmentation();
  EXPECT_EQ(stats.allocatable_cells, 16);
  EXPECT_EQ(stats.free_cells, 16);
  EXPECT_EQ(stats.largest_free_rect, 16);
  EXPECT_DOUBLE_EQ(stats.ratio(), 0.0);  // empty fabric is compact

  // A full-height wall in the middle: free = 12, split 4 | 8.
  plan.claim(1, {3, 4, 0, 1});
  stats = plan.fragmentation();
  EXPECT_EQ(stats.free_cells, 12);
  EXPECT_EQ(stats.largest_free_rect, 6);
  EXPECT_DOUBLE_EQ(stats.ratio(), 0.5);

  // Packed against the left edge: one free rectangle, ratio back to 0.
  plan.relocate(1, {0, 1, 0, 1});
  stats = plan.fragmentation();
  EXPECT_EQ(stats.free_cells, 12);
  EXPECT_EQ(stats.largest_free_rect, 12);
  EXPECT_DOUBLE_EQ(stats.ratio(), 0.0);

  // Fully covered fabric: no free area counts as compact, not NaN.
  plan.claim(2, {2, 7, 0, 1});
  stats = plan.fragmentation();
  EXPECT_EQ(stats.free_cells, 0);
  EXPECT_DOUBLE_EQ(stats.ratio(), 0.0);
}

TEST(DynamicFloorplanTest, FragmentationIgnoresNonAllocatableColumns) {
  const auto device = gapped_device();
  DynamicFloorplan plan(device);
  const auto stats = plan.fragmentation();
  // The IO column is excluded from both free area and the rectangle.
  EXPECT_EQ(stats.allocatable_cells, 3);
  EXPECT_EQ(stats.free_cells, 3);
  EXPECT_EQ(stats.largest_free_rect, 2);
}

TEST(DynamicFloorplanTest, RelocationTargetCompactsTowardOrigin) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {6, 7, 0, 1});

  const auto target = plan.relocation_target(1);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->col_lo, 0);
  EXPECT_EQ(target->row_lo, 0);

  plan.relocate(1, *target);
  EXPECT_FALSE(plan.relocation_target(1).has_value());  // already packed

  // A second region compacts up against the first, not on top of it.
  plan.claim(2, {4, 5, 0, 1});
  const auto second = plan.relocation_target(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->col_lo, 2);
  EXPECT_THROW(plan.relocation_target(9), InvalidArgument);
}

TEST(DynamicFloorplanTest, RelocationTargetRespectsColumnTypes) {
  const auto device = gapped_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {2, 3, 0, 0});
  // The only columns left of the region cross the IO gap: no legal
  // footprint-compatible rectangle exists closer to the origin.
  EXPECT_FALSE(plan.relocation_target(1).has_value());
}

TEST(DynamicFloorplanTest, RelocateValidatesTarget) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {4, 5, 0, 1});
  plan.claim(2, {0, 1, 0, 1});

  EXPECT_THROW(plan.relocate(9, {2, 3, 0, 1}), InvalidArgument);
  EXPECT_THROW(plan.relocate(1, {0, 1, 0, 1}), InvalidArgument);  // occupied
  EXPECT_THROW(plan.relocate(1, {2, 4, 0, 1}), InvalidArgument);  // footprint
  // Overlapping its own cells is fine — a one-column slide is legal.
  plan.relocate(1, {3, 4, 0, 1});
  EXPECT_EQ(plan.region(1)->col_lo, 3);
}

TEST(DynamicFloorplanTest, PublishMetricsFeedsGlobalRegistry) {
  const auto device = flat_device();
  DynamicFloorplan plan(device);
  plan.claim(1, {3, 4, 0, 1});
  plan.publish_metrics("test.dynplan");

  auto& registry = trace::MetricsRegistry::global();
  EXPECT_DOUBLE_EQ(registry.gauge("test.dynplan.frag_ratio").value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("test.dynplan.free_cells").value(), 12.0);
  EXPECT_DOUBLE_EQ(registry.gauge("test.dynplan.largest_free_rect").value(),
                   6.0);
}

// Real threads: a repacker-style mutator compacting regions while
// request-pool-style workers churn allocations and observers snapshot
// fragmentation. Run under the tier-1 TSan stage; the invariant checks
// below catch lost updates in any build.
TEST(DynamicFloorplanTest, ConcurrentChurnAndCompactionStaysConsistent) {
  const auto device = fabric::Device::vc707();
  DynamicFloorplan plan(device);

  constexpr int kWorkers = 3;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  // Request pool: each worker churns its own id range (claims overlap
  // arbitration inside the plan, ids never collide across workers).
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&plan, w] {
      for (int i = 0; i < kIters; ++i) {
        const int id = w * kIters + i;
        if (plan.allocate(id, 1 + (i % 3), 1).has_value()) {
          if (i % 2 == 0) plan.release(id);
        }
      }
    });
  }
  // Repacker: walks the id space proposing and committing compactions.
  threads.emplace_back([&plan] {
    for (int pass = 0; pass < 40; ++pass) {
      for (int id = 0; id < kWorkers * kIters; ++id) {
        try {
          const auto target = plan.relocation_target(id);
          if (target) plan.relocate(id, *target);
        } catch (const InvalidArgument&) {
          // Region released (or moved) between proposal and commit —
          // exactly the window the internal mutex must keep consistent.
        }
      }
    }
  });
  // Ops plane: fragmentation snapshots and metric publishes throughout.
  threads.emplace_back([&plan] {
    for (int i = 0; i < 200; ++i) {
      const auto stats = plan.fragmentation();
      EXPECT_GE(stats.free_cells, 0);
      EXPECT_LE(stats.largest_free_rect, stats.free_cells);
      plan.publish_metrics("test.dynplan.tsan");
    }
  });
  for (auto& t : threads) t.join();

  // Post-churn invariant: no two surviving regions overlap.
  std::vector<Pblock> regions;
  for (int id = 0; id < kWorkers * kIters; ++id) {
    if (auto r = plan.region(id)) regions.push_back(*r);
  }
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      EXPECT_FALSE(regions[i].overlaps(regions[j]))
          << regions[i].to_string() << " vs " << regions[j].to_string();
    }
  }
  const auto stats = plan.fragmentation();
  EXPECT_LE(stats.largest_free_rect, stats.free_cells);
}

}  // namespace
}  // namespace presp::floorplan
