#include <gtest/gtest.h>

#include <algorithm>

#include "hls/library.hpp"
#include "netlist/rtl.hpp"
#include "synth/synthesis.hpp"

namespace presp::synth {
namespace {

const char* kSocText = R"(
[soc]
name = soc_t
device = vc707
rows = 3
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:conv2d,gemm
r1c1 = reconf:fft
r1c2 = reconf:sort
r2c0 = reconf:mac
r2c1 = empty
r2c2 = slm
)";

class SynthFixture : public ::testing::Test {
 protected:
  SynthFixture()
      : lib_(netlist::ComponentLibrary::with_builtins()),
        rtl_(make_rtl()),
        synth_(lib_, SynthOptions{}) {}

  netlist::SocRtl make_rtl() {
    hls::register_characterization_kernels(lib_);
    return netlist::elaborate(netlist::SocConfig::parse(kSocText), lib_);
  }

  netlist::ComponentLibrary lib_;
  netlist::SocRtl rtl_;
  Synthesizer synth_;
};

TEST_F(SynthFixture, StaticUtilizationMatchesElaboration) {
  const Checkpoint ckpt = synth_.synthesize_static(rtl_);
  EXPECT_EQ(ckpt.utilization.luts, rtl_.static_resources(lib_).luts);
  EXPECT_FALSE(ckpt.out_of_context);
}

TEST_F(SynthFixture, StaticNetlistHasOneBlackBoxPerPartition) {
  const Checkpoint ckpt = synth_.synthesize_static(rtl_);
  const auto boxes =
      ckpt.netlist.cells_of_kind(netlist::CellKind::kBlackBox);
  ASSERT_EQ(boxes.size(), 4u);
  std::vector<std::string> partitions;
  for (const auto id : boxes)
    partitions.push_back(ckpt.netlist.cell(id).partition);
  std::sort(partitions.begin(), partitions.end());
  EXPECT_EQ(partitions,
            (std::vector<std::string>{"RT_1", "RT_2", "RT_3", "RT_4"}));
}

TEST_F(SynthFixture, ClusterGranularityBoundsCellSizes) {
  SynthOptions opt;
  opt.cluster_luts = 150;
  const Synthesizer synth(lib_, opt);
  const Checkpoint ckpt = synth.synthesize_static(rtl_);
  for (const auto& cell : ckpt.netlist.cells()) {
    if (cell.kind != netlist::CellKind::kLogic) continue;
    EXPECT_LE(cell.resources.luts, opt.cluster_luts);
  }
}

TEST_F(SynthFixture, DeterministicAcrossRuns) {
  const Checkpoint a = synth_.synthesize_static(rtl_);
  const Checkpoint b = synth_.synthesize_static(rtl_);
  ASSERT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  ASSERT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  for (std::size_t i = 0; i < a.netlist.num_nets(); ++i) {
    EXPECT_EQ(a.netlist.net(static_cast<netlist::NetId>(i)).driver,
              b.netlist.net(static_cast<netlist::NetId>(i)).driver);
  }
}

TEST_F(SynthFixture, OocCheckpointContainsModuleAndWrapper) {
  const Checkpoint ckpt = synth_.synthesize_module_ooc("gemm");
  EXPECT_TRUE(ckpt.out_of_context);
  const auto wrapper =
      lib_.get(netlist::ComponentLibrary::kReconfWrapper).resources;
  EXPECT_EQ(ckpt.utilization.luts,
            lib_.get("gemm").resources.luts + wrapper.luts);
  // One port anchor for the partition pins.
  EXPECT_EQ(ckpt.netlist.cells_of_kind(netlist::CellKind::kPort).size(), 1u);
}

TEST_F(SynthFixture, MonolithicInstantiatesLargestMember) {
  const Checkpoint mono = synth_.synthesize_monolithic(rtl_);
  EXPECT_TRUE(
      mono.netlist.cells_of_kind(netlist::CellKind::kBlackBox).empty());
  // Monolithic utilization = static + representative member (largest) of
  // each partition, with wrappers.
  const auto expected =
      rtl_.static_resources(lib_) + rtl_.total_reconfigurable(lib_);
  // total_reconfigurable() is the component-wise max per partition summed;
  // the monolithic netlist instantiates the LUT-largest member, so LUTs
  // match exactly.
  EXPECT_EQ(mono.utilization.luts, expected.luts);
}

TEST_F(SynthFixture, StaticNetlistIsConnected) {
  // Every logic cell should touch at least one net: the P&R stage relies
  // on connectivity to optimize placement.
  const Checkpoint ckpt = synth_.synthesize_static(rtl_);
  std::vector<bool> touched(ckpt.netlist.num_cells(), false);
  for (const auto& net : ckpt.netlist.nets()) {
    touched[net.driver] = true;
    for (const auto sink : net.sinks) touched[sink] = true;
  }
  std::size_t untouched = 0;
  for (std::size_t i = 0; i < touched.size(); ++i)
    if (!touched[i]) ++untouched;
  // Allow a tiny number of isolated cells (single-cluster corner blocks).
  EXPECT_LE(untouched, ckpt.netlist.num_cells() / 100);
}

TEST_F(SynthFixture, PortsAnchorMemAndAuxTiles) {
  const Checkpoint ckpt = synth_.synthesize_static(rtl_);
  EXPECT_EQ(ckpt.netlist.cells_of_kind(netlist::CellKind::kPort).size(), 2u);
}

}  // namespace
}  // namespace presp::synth
