#include <gtest/gtest.h>

#include "bitstream/bitstream.hpp"
#include "pnr/placer.hpp"
#include "util/error.hpp"

namespace presp::bitstream {
namespace {

TEST(Crc32Test, KnownValuesAndSensitivity) {
  EXPECT_EQ(crc32({}), 0u);
  const std::vector<std::uint32_t> words{1, 2, 3, 4};
  auto tweaked = words;
  tweaked[2] ^= 1;
  EXPECT_NE(crc32(words), crc32(tweaked));
  EXPECT_EQ(crc32(words), crc32(words));
}

TEST(RleTest, RoundTripMixedContent) {
  std::vector<std::uint32_t> words;
  presp::Rng rng(3);
  for (int i = 0; i < 10'000; ++i)
    words.push_back(rng.next_bool(0.2)
                        ? static_cast<std::uint32_t>(rng.next_u64() | 1)
                        : 0u);
  const auto compressed = rle_compress(words);
  EXPECT_LT(compressed.size(), words.size());
  EXPECT_EQ(rle_decompress(compressed), words);
}

TEST(RleTest, AllZerosCompressToTwoWords) {
  const std::vector<std::uint32_t> zeros(5'000, 0u);
  const auto compressed = rle_compress(zeros);
  EXPECT_EQ(compressed.size(), 2u);
  EXPECT_EQ(rle_decompress(compressed), zeros);
}

TEST(RleTest, NoZerosPassThrough) {
  std::vector<std::uint32_t> words{1, 2, 3, 4, 5};
  EXPECT_EQ(rle_compress(words), words);
}

TEST(RleTest, TruncatedStreamRejected) {
  EXPECT_THROW(rle_decompress({0u}), InvalidArgument);
}

class BitstreamFixture : public ::testing::Test {
 protected:
  BitstreamFixture() : device_(fabric::Device::vc707()), gen_(device_) {}

  /// Builds a netlist + placement filling `pblock` to roughly `fill`.
  std::pair<netlist::Netlist, pnr::Placement> filled(
      const fabric::Pblock& pblock, double fill) {
    netlist::Netlist nl("fill");
    pnr::Placement placement;
    for (int col = pblock.col_lo; col <= pblock.col_hi; ++col) {
      for (int row = pblock.row_lo; row <= pblock.row_hi; ++row) {
        const auto cap = device_.cell_resources(col).luts;
        if (cap == 0) continue;
        const auto luts = static_cast<std::int64_t>(fill * cap);
        if (luts == 0) continue;
        const auto id = nl.add_cell({"c" + std::to_string(col) + "_" +
                                         std::to_string(row),
                                     netlist::CellKind::kLogic,
                                     {luts, luts, 0, 0},
                                     ""});
        placement.locations.resize(id + 1);
        placement.locations[id] = pnr::GridLoc{col, row};
      }
    }
    return {std::move(nl), std::move(placement)};
  }

  fabric::Device device_;
  BitstreamGenerator gen_;
};

TEST_F(BitstreamFixture, FullDeviceBitstreamMatchesVc707Size) {
  netlist::Netlist empty("e");
  pnr::Placement placement;
  const Bitstream bs = gen_.full("soc", empty, placement);
  // Real XC7VX485T full bitstream: ~19.3 MB.
  EXPECT_NEAR(static_cast<double>(bs.raw_bytes()), 19.3e6, 1.5e6);
  EXPECT_FALSE(bs.partial);
}

TEST_F(BitstreamFixture, PartialSizeTracksPblockFrames) {
  const fabric::Pblock small{2, 20, 0, 0};
  const fabric::Pblock large{2, 40, 0, 1};
  netlist::Netlist empty("e");
  pnr::Placement placement;
  const auto bs_small = gen_.partial("soc", "m", small, empty, placement);
  const auto bs_large = gen_.partial("soc", "m", large, empty, placement);
  EXPECT_GT(bs_large.raw_bytes(), 2 * bs_small.raw_bytes());
  EXPECT_EQ(bs_small.raw_bytes() - Bitstream::kHeaderBytes,
            static_cast<std::size_t>(fabric::pblock_frames(device_, small)) *
                static_cast<std::size_t>(device_.frames().frame_bytes));
}

TEST_F(BitstreamFixture, CompressionShrinksSparseContent) {
  const fabric::Pblock pblock{2, 60, 0, 1};
  auto [nl, placement] = filled(pblock, 0.75);
  const Bitstream bs = gen_.partial("soc", "m", pblock, nl, placement);
  EXPECT_LT(bs.compressed_bytes(), bs.raw_bytes() / 2);
  EXPECT_GT(bs.compressed_bytes(), Bitstream::kHeaderBytes);
}

TEST_F(BitstreamFixture, DenserPlacementCompressesWorse) {
  const fabric::Pblock pblock{2, 60, 0, 1};
  auto [nl_lo, pl_lo] = filled(pblock, 0.2);
  auto [nl_hi, pl_hi] = filled(pblock, 0.9);
  const auto lo = gen_.partial("s", "m", pblock, nl_lo, pl_lo);
  const auto hi = gen_.partial("s", "m", pblock, nl_hi, pl_hi);
  EXPECT_LT(lo.compressed_bytes(), hi.compressed_bytes());
}

TEST_F(BitstreamFixture, BlankBitstreamIsMostlyZero) {
  const fabric::Pblock pblock{2, 40, 0, 0};
  const Bitstream blank = gen_.blank("soc", pblock);
  EXPECT_LT(blank.compressed_bytes(), blank.raw_bytes() / 50);
  EXPECT_EQ(blank.module, "<blank>");
}

TEST_F(BitstreamFixture, CrcProtectsPayload) {
  const fabric::Pblock pblock{2, 30, 0, 0};
  auto [nl, placement] = filled(pblock, 0.5);
  Bitstream bs = gen_.partial("soc", "m", pblock, nl, placement);
  EXPECT_EQ(bs.crc, crc32(bs.words));
  bs.words[10] ^= 0x1;
  EXPECT_NE(bs.crc, crc32(bs.words));
}

TEST_F(BitstreamFixture, DeterministicContent) {
  const fabric::Pblock pblock{2, 30, 0, 0};
  auto [nl, placement] = filled(pblock, 0.5);
  const auto a = gen_.partial("soc", "m", pblock, nl, placement);
  const auto b = gen_.partial("soc", "m", pblock, nl, placement);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.crc, b.crc);
}

// Table VI sanity: a WAMI-sized tile (27k LUTs in a ~31k pblock) lands in
// the paper's 245-400 KB compressed range.
TEST_F(BitstreamFixture, WamiTileCompressedSizeInTable6Range) {
  // Find a pblock of ~80 columns x 1 row (~32k LUTs).
  const fabric::Pblock pblock{3, 95, 2, 2};
  auto [nl, placement] = filled(pblock, 0.85);
  const Bitstream bs = gen_.partial("soc", "warp", pblock, nl, placement);
  EXPECT_GT(bs.compressed_bytes(), 150'000u);
  EXPECT_LT(bs.compressed_bytes(), 650'000u);
}

}  // namespace
}  // namespace presp::bitstream
