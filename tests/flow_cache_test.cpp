// Flow artifact cache: key derivation, blob round-trips, poisoned-entry
// rejection, LRU eviction under the byte cap, and the end-to-end warm-run
// contract (one modified member invalidates exactly that member).
#include "core/flow_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "bitstream/artifact_io.hpp"
#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "fabric/device.hpp"
#include "netlist/soc_config.hpp"
#include "util/error.hpp"

namespace presp::core {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

ModuleEntry sample_module(std::uint32_t seed) {
  ModuleEntry e;
  e.utilization = {1000 + seed, 2000, 3, 4};
  e.routed = true;
  e.fmax_mhz = 100.5;
  e.pbs.design = "soc";
  e.pbs.module = "mod" + std::to_string(seed);
  e.pbs.pblock = {1, 4, 0, 1};
  e.pbs.partial = true;
  e.pbs.words.assign(4096, seed);
  e.pbs.crc = bitstream::crc32(e.pbs.words);
  return e;
}

TEST(KeyBuilderTest, FieldsDoNotAlias) {
  const auto k1 = FlowCache::KeyBuilder().add("ab").add("c").finish();
  const auto k2 = FlowCache::KeyBuilder().add("a").add("bc").finish();
  EXPECT_NE(k1, k2);
  const auto k3 = FlowCache::KeyBuilder().add(12LL).add(3LL).finish();
  const auto k4 = FlowCache::KeyBuilder().add(1LL).add(23LL).finish();
  EXPECT_NE(k3, k4);
}

TEST(KeyBuilderTest, DeterministicAndSensitiveToEveryField) {
  const auto base =
      FlowCache::KeyBuilder().add("mod").add(100LL).add(1.5).finish();
  EXPECT_EQ(FlowCache::KeyBuilder().add("mod").add(100LL).add(1.5).finish(),
            base);
  EXPECT_NE(FlowCache::KeyBuilder().add("mox").add(100LL).add(1.5).finish(),
            base);
  EXPECT_NE(FlowCache::KeyBuilder().add("mod").add(101LL).add(1.5).finish(),
            base);
  EXPECT_NE(FlowCache::KeyBuilder().add("mod").add(100LL).add(1.6).finish(),
            base);
}

TEST(FlowCacheTest, ColdMissThenWarmHitRoundTrips) {
  FlowCacheOptions opt;
  opt.dir = fresh_dir("fc_roundtrip");
  FlowCache cache(opt);

  EXPECT_FALSE(cache.load_module(42).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  const ModuleEntry stored = sample_module(7);
  cache.store_module(42, stored);
  EXPECT_EQ(cache.stats().stores, 1u);

  // A second cache object over the same directory sees the entry.
  FlowCache warm(opt);
  const auto loaded = warm.load_module(42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(loaded->utilization.luts, stored.utilization.luts);
  EXPECT_EQ(loaded->routed, stored.routed);
  EXPECT_DOUBLE_EQ(loaded->fmax_mhz, stored.fmax_mhz);
  EXPECT_EQ(loaded->pbs.words, stored.pbs.words);
  EXPECT_EQ(loaded->pbs.crc, stored.pbs.crc);
  EXPECT_EQ(loaded->pbs.module, stored.pbs.module);
}

TEST(FlowCacheTest, StaticEntriesRoundTrip) {
  FlowCacheOptions opt;
  opt.dir = fresh_dir("fc_static");
  FlowCache cache(opt);

  StaticMetaEntry meta;
  meta.utilization = {111, 222, 3, 4};
  cache.store_static_meta(1, meta);
  const auto meta_back = cache.load_static_meta(1);
  ASSERT_TRUE(meta_back.has_value());
  EXPECT_EQ(meta_back->utilization.ffs, 222);

  StaticPnrEntry pnr;
  pnr.ok = true;
  pnr.fmax_mhz = 96.5;
  pnr.full_bitstream_bytes = 1234567;
  pnr.cols = 10;
  pnr.rows = 7;
  pnr.usage = {0, 5, 0, 9, 2};
  cache.store_static_pnr(2, pnr);
  const auto pnr_back = cache.load_static_pnr(2);
  ASSERT_TRUE(pnr_back.has_value());
  EXPECT_TRUE(pnr_back->ok);
  EXPECT_EQ(pnr_back->usage, pnr.usage);
  EXPECT_EQ(pnr_back->full_bitstream_bytes, 1234567u);
}

TEST(FlowCacheTest, KindMismatchIsRejected) {
  FlowCacheOptions opt;
  opt.dir = fresh_dir("fc_kind");
  FlowCache cache(opt);
  StaticMetaEntry meta;
  cache.store_static_meta(5, meta);
  // Same key probed as a different kind: schema drift, not a hit.
  EXPECT_FALSE(cache.load_module(5).has_value());
  EXPECT_EQ(cache.stats().poisoned, 1u);
}

TEST(FlowCacheTest, PoisonedEntryIsRejectedAndRemoved) {
  FlowCacheOptions opt;
  opt.dir = fresh_dir("fc_poison");
  FlowCache cache(opt);
  cache.store_module(99, sample_module(1));

  // Flip one payload byte on disk; the blob hash must catch it.
  fs::path victim;
  for (const auto& entry : fs::directory_iterator(opt.dir))
    victim = entry.path();
  ASSERT_FALSE(victim.empty());
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xee');
  }

  FlowCache reopened(opt);
  EXPECT_FALSE(reopened.load_module(99).has_value());
  EXPECT_EQ(reopened.stats().poisoned, 1u);
  EXPECT_EQ(reopened.stats().hits, 0u);
  EXPECT_FALSE(fs::exists(victim));  // rejected entries are deleted

  // Truncation is also rejected.
  cache.store_module(77, sample_module(2));
  for (const auto& entry : fs::directory_iterator(opt.dir))
    fs::resize_file(entry.path(), 10);
  FlowCache truncated(opt);
  EXPECT_FALSE(truncated.load_module(77).has_value());
  EXPECT_EQ(truncated.stats().poisoned, 1u);
}

TEST(FlowCacheTest, EvictsOldestUnderSizeCap) {
  FlowCacheOptions opt;
  opt.dir = fresh_dir("fc_evict");
  // Each sample entry lands around a few hundred bytes compressed; a
  // cap of ~3 entries forces eviction on the fourth store.
  // Probe with a nonzero fill: seed 0 would RLE away to a much smaller
  // blob than the entries stored below and starve the cap.
  FlowCache probe(opt);
  probe.store_module(0, sample_module(9));
  const long long one_entry = probe.stats().bytes;
  ASSERT_GT(one_entry, 0);
  fs::remove_all(opt.dir);

  opt.max_bytes = 3 * one_entry + one_entry / 2;
  FlowCache cache(opt);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    cache.store_module(k, sample_module(static_cast<std::uint32_t>(k)));
    // mtime granularity: make LRU order unambiguous across stores.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, opt.max_bytes);
  // Oldest (key 1) is gone, newest (key 4) survives.
  EXPECT_FALSE(cache.load_module(1).has_value());
  EXPECT_TRUE(cache.load_module(4).has_value());
}

TEST(FlowCacheTest, UnboundedWhenMaxBytesNonPositive) {
  FlowCacheOptions opt;
  opt.dir = fresh_dir("fc_unbounded");
  opt.max_bytes = 0;
  FlowCache cache(opt);
  for (std::uint64_t k = 0; k < 6; ++k)
    cache.store_module(k, sample_module(static_cast<std::uint32_t>(k)));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// ---- end-to-end: the flow over a real SoC config --------------------

FlowOptions fast_options(const std::string& cache_dir) {
  FlowOptions opt;
  opt.pnr.placer.temperature_steps = 4;
  opt.pnr.placer.moves_per_cell = 1;
  opt.pnr.router.max_iterations = 1;
  opt.floorplan.refine_iterations = 20;
  opt.cache.dir = cache_dir;
  return opt;
}

TEST(FlowCacheIntegrationTest, WarmRunHitsEveryStageAndMatchesCold) {
  const std::string dir = fresh_dir("fc_flow");
  const auto lib = characterization_library();
  const auto device = fabric::Device::vc707();
  const auto config = characterization_soc(3);
  const PrEspFlow flow(device, lib, fast_options(dir));

  const FlowResult cold = flow.run(config);
  EXPECT_TRUE(cold.cache_enabled);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_GT(cold.cache.stores, 0u);

  const FlowResult warm = flow.run(config);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_GT(warm.cache.hits, 0u);
  // Warm results are bit-identical to cold ones.
  EXPECT_EQ(warm.full_bitstream_bytes, cold.full_bitstream_bytes);
  EXPECT_EQ(warm.achieved_fmax_mhz, cold.achieved_fmax_mhz);
  EXPECT_EQ(warm.physical_ok, cold.physical_ok);
  EXPECT_EQ(warm.total_minutes, cold.total_minutes);
  ASSERT_EQ(warm.modules.size(), cold.modules.size());
  for (std::size_t i = 0; i < warm.modules.size(); ++i) {
    EXPECT_EQ(warm.modules[i].pbs_compressed_bytes,
              cold.modules[i].pbs_compressed_bytes);
    EXPECT_EQ(warm.modules[i].utilization.luts,
              cold.modules[i].utilization.luts);
    EXPECT_EQ(warm.modules[i].routed, cold.modules[i].routed);
  }
  // The warm run executed no synthesis or P&R tasks at all.
  EXPECT_EQ(warm.exec.tasks, 0u);
}

TEST(FlowCacheIntegrationTest, WarmParallelMatchesWarmSerial) {
  const std::string dir = fresh_dir("fc_flow_par");
  const auto lib = characterization_library();
  const auto device = fabric::Device::vc707();
  const auto config = characterization_soc(3);

  FlowOptions serial_opt = fast_options(dir);
  const PrEspFlow serial_flow(device, lib, serial_opt);
  const FlowResult cold = serial_flow.run(config);

  FlowOptions par_opt = fast_options(dir);
  par_opt.exec_threads = 4;
  const PrEspFlow par_flow(device, lib, par_opt);
  const FlowResult warm_par = par_flow.run(config);

  EXPECT_EQ(warm_par.cache.misses, 0u);
  EXPECT_EQ(warm_par.full_bitstream_bytes, cold.full_bitstream_bytes);
  EXPECT_EQ(warm_par.achieved_fmax_mhz, cold.achieved_fmax_mhz);
  for (std::size_t i = 0; i < warm_par.modules.size(); ++i)
    EXPECT_EQ(warm_par.modules[i].pbs_compressed_bytes,
              cold.modules[i].pbs_compressed_bytes);
}

TEST(FlowCacheIntegrationTest, ConstraintChangeInvalidatesPnrStages) {
  const std::string dir = fresh_dir("fc_flow_inval");
  const auto lib = characterization_library();
  const auto device = fabric::Device::vc707();
  const auto config = characterization_soc(3);

  const PrEspFlow flow(device, lib, fast_options(dir));
  flow.run(config);

  // Different router budget = different constraints = fresh P&R keys;
  // the synthesis-stage entry (static-meta) still hits.
  FlowOptions changed = fast_options(dir);
  changed.pnr.router.max_iterations = 2;
  const PrEspFlow changed_flow(device, lib, changed);
  const FlowResult rerun = changed_flow.run(config);
  EXPECT_GT(rerun.cache.misses, 0u);
  EXPECT_GT(rerun.cache.hits, 0u);  // static-meta reused
  EXPECT_GT(rerun.exec.tasks, 0u);  // P&R actually re-ran
}

}  // namespace
}  // namespace presp::core
