#include <gtest/gtest.h>

#include <cmath>

#include "netlist/rtl.hpp"
#include "wami/accelerators.hpp"
#include "wami/frame_generator.hpp"
#include "wami/kernels.hpp"

namespace presp::wami {
namespace {

// ------------------------------------------------------------- kernels

TEST(KernelsTest, DebayerRecoversFlatField) {
  // A uniform scene (modulo channel gains) must demosaic to near-uniform
  // planes away from borders.
  ImageU16 bayer(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) bayer.at(x, y) = 1000;
  const RgbImage rgb = debayer(bayer);
  for (int y = 2; y < 14; ++y)
    for (int x = 2; x < 14; ++x) {
      EXPECT_FLOAT_EQ(rgb.r.at(x, y), 1000.0f);
      EXPECT_FLOAT_EQ(rgb.g.at(x, y), 1000.0f);
      EXPECT_FLOAT_EQ(rgb.b.at(x, y), 1000.0f);
    }
}

TEST(KernelsTest, GrayscaleUsesBt601Weights) {
  RgbImage rgb{ImageF(4, 4, 100.0f), ImageF(4, 4, 200.0f),
               ImageF(4, 4, 50.0f)};
  const ImageF gray = grayscale(rgb);
  EXPECT_NEAR(gray.at(1, 1), 0.299 * 100 + 0.587 * 200 + 0.114 * 50, 1e-3);
}

TEST(KernelsTest, GradientOfLinearRamp) {
  ImageF img(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      img.at(x, y) = 3.0f * static_cast<float>(x) +
                     5.0f * static_cast<float>(y);
  const Gradients g = gradient(img);
  for (int y = 1; y < 7; ++y)
    for (int x = 1; x < 7; ++x) {
      EXPECT_FLOAT_EQ(g.ix.at(x, y), 3.0f);
      EXPECT_FLOAT_EQ(g.iy.at(x, y), 5.0f);
    }
}

TEST(KernelsTest, WarpIdentityIsNoOp) {
  ImageF img(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      img.at(x, y) = static_cast<float>(x * 10 + y);
  const ImageF warped = warp_affine(img, AffineParams{});
  EXPECT_EQ(warped, img);
}

TEST(KernelsTest, WarpPureTranslationShiftsContent) {
  ImageF img(8, 8, 0.0f);
  img.at(4, 4) = 100.0f;
  AffineParams p{};
  p[4] = 1.0;  // x' = x + 1: samples source at x+1
  const ImageF warped = warp_affine(img, p);
  EXPECT_FLOAT_EQ(warped.at(3, 4), 100.0f);
  EXPECT_FLOAT_EQ(warped.at(4, 4), 0.0f);
}

TEST(KernelsTest, SubtractElementwise) {
  ImageF a(4, 4, 5.0f);
  ImageF b(4, 4, 2.0f);
  const ImageF d = subtract(a, b);
  EXPECT_FLOAT_EQ(d.at(2, 2), 3.0f);
  ImageF c(3, 4, 0.0f);
  EXPECT_THROW(subtract(a, c), InvalidArgument);
}

TEST(KernelsTest, SteepestDescentStructure) {
  Gradients g{ImageF(4, 4, 2.0f), ImageF(4, 4, 3.0f)};
  const SteepestDescent sd = steepest_descent(g);
  EXPECT_FLOAT_EQ(sd[0].at(2, 1), 2.0f * 2);   // ix * x
  EXPECT_FLOAT_EQ(sd[1].at(2, 1), 3.0f * 2);   // iy * x
  EXPECT_FLOAT_EQ(sd[2].at(2, 1), 2.0f * 1);   // ix * y
  EXPECT_FLOAT_EQ(sd[3].at(2, 1), 3.0f * 1);   // iy * y
  EXPECT_FLOAT_EQ(sd[4].at(2, 1), 2.0f);       // ix
  EXPECT_FLOAT_EQ(sd[5].at(2, 1), 3.0f);       // iy
}

TEST(KernelsTest, HessianIsSymmetricPsd) {
  Rng rng(3);
  Gradients g{ImageF(16, 16), ImageF(16, 16)};
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) {
      g.ix.at(x, y) = static_cast<float>(rng.next_gaussian());
      g.iy.at(x, y) = static_cast<float>(rng.next_gaussian());
    }
  const Matrix6 h = hessian(steepest_descent(g));
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(h[static_cast<std::size_t>(i * 6 + i)], 0.0);  // diagonal
    for (int j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(h[static_cast<std::size_t>(i * 6 + j)],
                       h[static_cast<std::size_t>(j * 6 + i)]);
  }
}

TEST(KernelsTest, Invert6RoundTrip) {
  // A diagonally dominant matrix is well-conditioned.
  Matrix6 m{};
  Rng rng(5);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      m[static_cast<std::size_t>(i * 6 + j)] =
          (i == j ? 10.0 : 0.0) + rng.next_double(-1.0, 1.0);
  const Matrix6 inv = invert6(m);
  // m * inv == I
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) {
      double acc = 0.0;
      for (int k = 0; k < 6; ++k)
        acc += m[static_cast<std::size_t>(i * 6 + k)] *
               inv[static_cast<std::size_t>(k * 6 + j)];
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-9);
    }
}

TEST(KernelsTest, Invert6RejectsSingular) {
  Matrix6 m{};  // all zeros
  EXPECT_THROW(invert6(m), InvalidArgument);
}

TEST(KernelsTest, DeltaPMatchesManualSolve) {
  Matrix6 identity{};
  for (int i = 0; i < 6; ++i) identity[static_cast<std::size_t>(i * 7)] = 2.0;
  const Vector6 b{2, 4, 6, 8, 10, 12};
  const Vector6 dp = delta_p(identity, b);
  for (int i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(dp[static_cast<std::size_t>(i)],
                     2.0 * b[static_cast<std::size_t>(i)]);
}

TEST(KernelsTest, LucasKanadeRecoversKnownTranslation) {
  // Smooth synthetic scene shifted by a known sub-pixel translation.
  FrameGenerator gen(SceneOptions{64, 64, 0.0, 0.0, 0, 6, 0.0, 0.0, 11});
  const ImageF reference = grayscale(debayer(gen.next_frame()));
  AffineParams truth{};
  truth[4] = 1.4;
  truth[5] = -0.8;
  const ImageF moved = warp_affine(reference, truth);

  // Estimate the warp that maps `reference` onto `moved`... LK refines p
  // such that warp(frame, p) ~ reference, so the recovered p should
  // approach the inverse translation.
  AffineParams p{};
  lucas_kanade(moved, reference, p, 12);
  EXPECT_NEAR(p[4], truth[4], 0.1);
  EXPECT_NEAR(p[5], truth[5], 0.1);
}

TEST(KernelsTest, LucasKanadeReducesResidual) {
  FrameGenerator gen(SceneOptions{64, 64, 1.0, -0.5, 0, 6, 0.0, 0.0, 13});
  const ImageF f0 = grayscale(debayer(gen.next_frame()));
  const ImageF f1 = grayscale(debayer(gen.next_frame()));
  AffineParams p{};
  const double r1 = lucas_kanade_step(f0, f1, p);
  double r_last = r1;
  for (int i = 0; i < 6; ++i) r_last = lucas_kanade_step(f0, f1, p);
  EXPECT_LT(r_last, r1 * 0.8);
}

TEST(KernelsTest, ChangeDetectionFlagsMoversNotBackground) {
  GmmState state(32, 32);
  ImageF background(32, 32, 500.0f);
  // Train on the static background.
  for (int i = 0; i < 20; ++i) change_detection(background, state);
  // A bright object appears.
  ImageF with_object = background;
  for (int y = 10; y < 14; ++y)
    for (int x = 10; x < 14; ++x) with_object.at(x, y) = 2'000.0f;
  const ImageU16 mask = change_detection(with_object, state);
  EXPECT_EQ(mask.at(12, 12), 1);
  EXPECT_EQ(mask.at(2, 2), 0);
  EXPECT_EQ(mask.at(30, 30), 0);
}

TEST(KernelsTest, ChangeDetectionAdaptsToNewBackground) {
  GmmState state(8, 8);
  ImageF a(8, 8, 300.0f);
  ImageF b(8, 8, 1'500.0f);
  for (int i = 0; i < 20; ++i) change_detection(a, state);
  EXPECT_EQ(change_detection(b, state).at(4, 4), 1);  // sudden change
  for (int i = 0; i < 60; ++i) change_detection(b, state);
  EXPECT_EQ(change_detection(b, state).at(4, 4), 0);  // absorbed
}

// ----------------------------------------------------- frame generator

TEST(FrameGeneratorTest, DeterministicForSeed) {
  SceneOptions opt;
  opt.seed = 21;
  FrameGenerator a(opt);
  FrameGenerator b(opt);
  EXPECT_EQ(a.next_frame(), b.next_frame());
  EXPECT_EQ(a.next_frame(), b.next_frame());
}

TEST(FrameGeneratorTest, CameraDriftAccumulates) {
  SceneOptions opt;
  opt.drift_x = 2.0;
  opt.drift_y = -1.0;
  FrameGenerator gen(opt);
  gen.next_frame();
  EXPECT_DOUBLE_EQ(gen.camera_x(), 0.0);
  gen.next_frame();
  gen.next_frame();
  EXPECT_DOUBLE_EQ(gen.camera_x(), 4.0);
  EXPECT_DOUBLE_EQ(gen.camera_y(), -2.0);
}

TEST(FrameGeneratorTest, PixelsWithinSensorRange) {
  FrameGenerator gen(SceneOptions{});
  const ImageU16 frame = gen.next_frame();
  for (const auto v : frame.pixels()) EXPECT_LE(v, 4095);
}

TEST(FrameGeneratorTest, ObjectsMove) {
  SceneOptions opt;
  opt.num_objects = 2;
  opt.object_speed = 3.0;
  FrameGenerator gen(opt);
  gen.next_frame();
  const auto p0 = gen.object_positions();
  gen.next_frame();
  const auto p1 = gen.object_positions();
  ASSERT_EQ(p0.size(), 2u);
  const double moved = std::abs(p1[0].first - p0[0].first) +
                       std::abs(p1[0].second - p0[0].second);
  EXPECT_GT(moved, 1.0);
}

// -------------------------------------------------------- accelerators

TEST(WamiAcceleratorsTest, KernelNamesRoundTrip) {
  for (int i = 1; i <= kNumKernels; ++i)
    EXPECT_EQ(kernel_index(kernel_name(i)), i);
  EXPECT_THROW(kernel_index("nope"), InvalidArgument);
  EXPECT_THROW(kernel_name(0), InvalidArgument);
  EXPECT_THROW(kernel_name(13), InvalidArgument);
}

TEST(WamiAcceleratorsTest, Table4SocsLandInPaperClasses) {
  const auto lib = wami_library();
  const struct {
    char soc;
    double gamma;
  } cases[] = {{'A', 1.26}, {'B', 0.60}, {'C', 0.97}, {'D', 2.4}};
  for (const auto& c : cases) {
    const auto rtl = netlist::elaborate(table4_soc(c.soc), lib);
    const double gamma =
        static_cast<double>(rtl.total_reconfigurable(lib).luts) /
        static_cast<double>(rtl.static_resources(lib).luts);
    EXPECT_NEAR(gamma, c.gamma, c.gamma * 0.12) << "SoC_" << c.soc;
  }
}

TEST(WamiAcceleratorsTest, Table6PartitionsMatchPaper) {
  EXPECT_EQ(table6_partitions('X').size(), 2u);
  EXPECT_EQ(table6_partitions('Y').size(), 3u);
  EXPECT_EQ(table6_partitions('Z').size(), 4u);
  EXPECT_EQ(table6_partitions('X')[0], (std::vector<int>{1, 4, 9, 10, 8}));
  EXPECT_EQ(table6_partitions('Z')[3], (std::vector<int>{3, 8, 9}));
  // Every kernel in a SoC's mapping appears exactly once.
  for (const char which : {'X', 'Y', 'Z'}) {
    std::vector<int> seen;
    for (const auto& members : table6_partitions(which))
      for (const int k : members) {
        EXPECT_EQ(std::count(seen.begin(), seen.end(), k), 0);
        seen.push_back(k);
      }
  }
}

TEST(WamiAcceleratorsTest, SocConfigsValidate) {
  for (const char which : {'A', 'B', 'C', 'D'})
    EXPECT_NO_THROW(table4_soc(which).validate());
  for (const char which : {'X', 'Y', 'Z'})
    EXPECT_NO_THROW(table6_soc(which).validate());
  EXPECT_THROW(table4_soc('E'), InvalidArgument);
  EXPECT_THROW(table6_soc('W'), InvalidArgument);
}

TEST(WamiAcceleratorsTest, RegistryCoversAllKernels) {
  const auto registry = wami_accelerator_registry(WamiWorkload{});
  for (int i = 1; i <= kNumKernels; ++i) {
    ASSERT_TRUE(registry.has(kernel_name(i)));
    EXPECT_GT(registry.get(kernel_name(i)).luts, 0);
    EXPECT_EQ(registry.get(kernel_name(i)).latency.ii,
              kernel_cycles_per_item(i));
  }
}

TEST(WamiAcceleratorsTest, KernelItemsScaleWithFrame) {
  const WamiWorkload small{64, 64};
  const WamiWorkload big{128, 128};
  EXPECT_EQ(kernel_items(1, small), 64 * 64);
  EXPECT_EQ(kernel_items(1, big), 128 * 128);
  EXPECT_EQ(kernel_items(8, small), kernel_items(8, big));  // matrix op
}

}  // namespace
}  // namespace presp::wami
