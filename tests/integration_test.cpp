// End-to-end integration tests: the full PR-ESP flow on WAMI SoCs, and
// the complete SoC simulation of the WAMI application with runtime
// reconfiguration, verified bit-exactly against the software pipeline.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "util/log.hpp"
#include "wami/app.hpp"

namespace presp {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

TEST(FlowIntegrationTest, WamiSocBFullPhysicalFlow) {
  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.pnr.placer.temperature_steps = 6;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 40;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(wami::table4_soc('B'));
  EXPECT_EQ(result.decision.strategy, core::Strategy::kSerial);
  EXPECT_TRUE(result.physical_ok);
  EXPECT_EQ(result.modules.size(), 4u);
  for (const auto& m : result.modules) {
    EXPECT_TRUE(m.routed) << m.module;
    // Compressed partial bitstreams scale with the pblock: the tiny
    // grayscale tile compresses to tens of KB, WAMI-sized tiles to the
    // Table VI few-hundred-KB band.
    EXPECT_GT(m.pbs_compressed_bytes, 10'000u) << m.module;
    EXPECT_LT(m.pbs_compressed_bytes, 900'000u) << m.module;
  }
}

TEST(FlowIntegrationTest, StrategyDecisionsMatchTable4) {
  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  const struct {
    char soc;
    core::Strategy strategy;
  } expected[] = {
      {'A', core::Strategy::kFullyParallel},
      {'B', core::Strategy::kSerial},
      {'C', core::Strategy::kSemiParallel},
      {'D', core::Strategy::kFullyParallel},
  };
  for (const auto& e : expected) {
    const auto result = flow.run(wami::table4_soc(e.soc));
    EXPECT_EQ(result.decision.strategy, e.strategy) << "SoC_" << e.soc;
  }
}

TEST(FlowIntegrationTest, PrEspFasterThanStandardForSocAandD) {
  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  for (const char soc : {'A', 'D'}) {
    const auto ours = flow.run(wami::table4_soc(soc));
    const auto standard = flow.run_standard(wami::table4_soc(soc));
    // Paper Table V: 19% (SoC_A) and 24% (SoC_D) total improvement.
    EXPECT_LT(ours.total_minutes, standard.total_minutes * 0.92)
        << "SoC_" << soc;
  }
}

TEST(WamiAppIntegrationTest, AllSocsBitExactAgainstGolden) {
  for (const char which : {'X', 'Y', 'Z'}) {
    wami::WamiAppOptions opt;
    opt.frames = 2;
    opt.workload = {64, 64};
    const auto result = [&] {
      wami::WamiApp app(which, opt);
      return app.run();
    }();
    EXPECT_TRUE(result.all_verified) << "SoC_" << which;
    EXPECT_GT(result.reconfigurations, 0u);
    EXPECT_GT(result.seconds_per_frame, 0.0);
  }
}

TEST(WamiAppIntegrationTest, Fig4OrderingsReproduced) {
  // Paper Fig. 4 orderings: SoC_X worst execution time but best energy
  // per frame; SoC_Z worst energy.
  std::map<char, wami::WamiAppResult> results;
  for (const char which : {'X', 'Y', 'Z'}) {
    wami::WamiAppOptions opt;
    opt.frames = 2;
    opt.verify = false;
    wami::WamiApp app(which, opt);
    results.emplace(which, app.run());
  }
  EXPECT_GT(results.at('X').seconds_per_frame,
            results.at('Y').seconds_per_frame);
  EXPECT_GT(results.at('X').seconds_per_frame,
            results.at('Z').seconds_per_frame);
  EXPECT_LT(results.at('X').joules_per_frame,
            results.at('Y').joules_per_frame);
  EXPECT_LT(results.at('Y').joules_per_frame,
            results.at('Z').joules_per_frame);
}

TEST(WamiAppIntegrationTest, LucasKanadeTracksCameraDrift) {
  wami::WamiAppOptions opt;
  opt.frames = 4;
  opt.workload = {64, 64};
  opt.lk_iterations = 3;
  opt.scene.drift_x = 0.8;
  opt.scene.drift_y = -0.5;
  opt.scene.num_objects = 0;
  opt.scene.noise_sigma = 0.5;
  wami::WamiApp app('Z', opt);
  const auto result = app.run();
  ASSERT_TRUE(result.all_verified);
  // After 4 frames the camera moved by 3 steps; the registration
  // parameters should track a translation of roughly that magnitude
  // (sign depends on warp direction; magnitude is what matters).
  const double tracked = std::abs(result.params[4]) +
                         std::abs(result.params[5]);
  EXPECT_GT(tracked, 1.0);
}

TEST(WamiAppIntegrationTest, ReconfigurationsAvoidedWhenModulesResident) {
  // A single-frame run on SoC_X: iteration 2 revisits modules loaded in
  // iteration 1 only when the tile did not swap in between, so avoided
  // counts stay small but present across frames.
  wami::WamiAppOptions opt;
  opt.frames = 3;
  opt.workload = {64, 64};
  opt.verify = false;
  wami::WamiApp app('X', opt);
  const auto result = app.run();
  EXPECT_GT(result.reconfigurations, 10u);
  EXPECT_GT(result.icap_bytes, 1'000'000u);
}

}  // namespace
}  // namespace presp
