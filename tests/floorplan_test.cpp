#include <gtest/gtest.h>

#include "floorplan/floorplanner.hpp"
#include "util/error.hpp"

namespace presp::floorplan {
namespace {

class FloorplanFixture : public ::testing::Test {
 protected:
  FloorplanFixture() : device_(fabric::Device::vc707()), planner_(device_) {}

  fabric::Device device_;
  Floorplanner planner_;
};

TEST_F(FloorplanFixture, SinglePartitionFitsAndCovers) {
  const PartitionRequest req{"RT_1", {27'000, 30'000, 16, 64}};
  const Floorplan plan = planner_.plan({req}, {80'000, 100'000, 200, 100});
  ASSERT_EQ(plan.pblocks.size(), 1u);
  const auto enclosed = fabric::pblock_resources(device_, plan.pblocks[0]);
  EXPECT_TRUE(enclosed.covers(req.demand));
}

TEST_F(FloorplanFixture, PblocksNeverOverlap) {
  std::vector<PartitionRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back({"RT_" + std::to_string(i + 1), {27'000, 30'000, 16, 64}});
  const Floorplan plan = planner_.plan(reqs, {83'000, 100'000, 200, 100});
  for (std::size_t a = 0; a < plan.pblocks.size(); ++a)
    for (std::size_t b = a + 1; b < plan.pblocks.size(); ++b)
      EXPECT_FALSE(plan.pblocks[a].overlaps(plan.pblocks[b])) << a << "," << b;
}

TEST_F(FloorplanFixture, PblocksAvoidForbiddenColumns) {
  std::vector<PartitionRequest> reqs;
  for (int i = 0; i < 3; ++i)
    reqs.push_back({"RT_" + std::to_string(i + 1), {30'000, 30'000, 32, 128}});
  const Floorplan plan = planner_.plan(reqs, {60'000, 60'000, 100, 50});
  for (const auto& pb : plan.pblocks)
    for (int col = pb.col_lo; col <= pb.col_hi; ++col)
      EXPECT_TRUE(
          fabric::Device::reconfigurable_column(device_.column_type(col)))
          << "forbidden column " << col << " inside pblock";
}

TEST_F(FloorplanFixture, UtilizationMarginInflatesDemand) {
  const fabric::ResourceVec demand{10'000, 10'000, 0, 0};
  FloorplanOptions tight;
  tight.utilization_margin = 1.0;
  tight.refine = false;
  FloorplanOptions loose;
  loose.utilization_margin = 1.5;
  loose.refine = false;
  const auto plan_tight = planner_.plan({{"RT_1", demand}}, {}, tight);
  const auto plan_loose = planner_.plan({{"RT_1", demand}}, {}, loose);
  EXPECT_GE(
      fabric::pblock_resources(device_, plan_loose.pblocks[0]).luts,
      fabric::pblock_resources(device_, plan_tight.pblocks[0]).luts);
  EXPECT_GE(
      fabric::pblock_resources(device_, plan_loose.pblocks[0]).luts,
      15'000);
}

TEST_F(FloorplanFixture, InfeasiblePartitionThrows) {
  // More LUTs than the device holds.
  EXPECT_THROW(planner_.plan({{"RT_1", {400'000, 0, 0, 0}}}, {}),
               InfeasibleDesign);
}

TEST_F(FloorplanFixture, InfeasibleStaticThrows) {
  // Partition fits but crowds out the static part.
  std::vector<PartitionRequest> reqs;
  for (int i = 0; i < 7; ++i)
    reqs.push_back({"RT_" + std::to_string(i + 1), {35'000, 0, 0, 0}});
  EXPECT_THROW(planner_.plan(reqs, {90'000, 0, 0, 0}), InfeasibleDesign);
}

TEST_F(FloorplanFixture, StaticCapacityAccountsForPblocks) {
  const Floorplan plan =
      planner_.plan({{"RT_1", {27'000, 30'000, 16, 64}}}, {});
  const auto enclosed = fabric::pblock_resources(device_, plan.pblocks[0]);
  EXPECT_EQ(plan.static_capacity.luts,
            device_.total().luts - enclosed.luts);
}

TEST_F(FloorplanFixture, RefinementDoesNotIncreaseWaste) {
  std::vector<PartitionRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back(
        {"RT_" + std::to_string(i + 1),
         {15'000 + 4'000 * i, 15'000, 8 + 4 * i, 16 * (i + 1)}});
  FloorplanOptions no_refine;
  no_refine.refine = false;
  FloorplanOptions refine;
  refine.refine = true;
  refine.refine_iterations = 300;
  const auto base = planner_.plan(reqs, {}, no_refine);
  const auto refined = planner_.plan(reqs, {}, refine);
  EXPECT_LE(refined.waste, base.waste + 1e-9);
}

TEST_F(FloorplanFixture, CandidatesSortedByWaste) {
  const fabric::ResourceVec demand{5'000, 5'000, 4, 8};
  const auto cands = planner_.candidates(demand);
  ASSERT_GT(cands.size(), 1u);
  double prev = -1.0;
  for (const auto& pb : cands) {
    const double waste =
        lut_equivalent(fabric::pblock_resources(device_, pb) - demand);
    EXPECT_GE(waste, prev - 1e-9);
    prev = waste;
  }
}

TEST_F(FloorplanFixture, LegalChecksCoverAndColumns) {
  const fabric::ResourceVec demand{400, 0, 0, 0};
  // Find a single CLB column cell: legal.
  for (int col = 0; col < device_.num_columns(); ++col) {
    if (device_.column_type(col) == fabric::ColumnType::kClb) {
      EXPECT_TRUE(planner_.legal({col, col, 0, 0}, demand));
      EXPECT_FALSE(planner_.legal({col, col, 0, 0}, {401, 0, 0, 0}));
      break;
    }
  }
  // A pblock containing the clocking spine is illegal.
  for (int col = 0; col < device_.num_columns(); ++col) {
    if (device_.column_type(col) == fabric::ColumnType::kClock) {
      EXPECT_FALSE(planner_.legal({col - 1, col + 1, 0, 0}, demand));
      break;
    }
  }
  EXPECT_FALSE(planner_.legal({5, 2, 0, 0}, demand));  // invalid rectangle
}

// Property sweep: across many demand profiles the planner must always
// produce covering, non-overlapping, legal pblocks.
class FloorplanPropertyFixture
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FloorplanPropertyFixture, AlwaysLegalAndCovering) {
  const auto [n_parts, size_step] = GetParam();
  const fabric::Device device = fabric::Device::vc707();
  const Floorplanner planner(device);
  std::vector<PartitionRequest> reqs;
  for (int i = 0; i < n_parts; ++i) {
    reqs.push_back({"RT_" + std::to_string(i + 1),
                    {8'000 + size_step * i,
                     8'000 + size_step * i,
                     static_cast<std::int64_t>(2 * i),
                     static_cast<std::int64_t>(8 * i)}});
  }
  FloorplanOptions options;
  options.refine_iterations = 60;
  const Floorplan plan = planner.plan(reqs, {}, options);
  ASSERT_EQ(plan.pblocks.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(planner.legal(plan.pblocks[i], reqs[i].demand));
    for (std::size_t j = i + 1; j < reqs.size(); ++j)
      EXPECT_FALSE(plan.pblocks[i].overlaps(plan.pblocks[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DemandSweep, FloorplanPropertyFixture,
    ::testing::Combine(::testing::Values(1, 2, 4, 6),
                       ::testing::Values(0, 1'500, 4'000)));

}  // namespace
}  // namespace presp::floorplan
