// The live ops plane (DESIGN.md §16): options parsing, the SSE
// ring/hub isolation contract, wire framing, snapshot-vs-mutation
// safety of the registries the endpoints read, and the embedded HTTP
// server end to end on an ephemeral loopback port — including the 503
// connection cap, slow-client drop accounting and the watch-mode lint
// bridge into /events.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ops/events.hpp"
#include "ops/http.hpp"
#include "ops/options.hpp"
#include "ops/server.hpp"
#include "ops/sources.hpp"
#include "ops/watch.hpp"
#include "runtime/health.hpp"
#include "trace/metrics.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace presp::ops {
namespace {

namespace fs = std::filesystem;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ------------------------------------------------------------- options

TEST(OpsOptionsTest, DefaultsAreDisabledLoopback) {
  const OpsOptions opts = OpsOptions::from_config(Config::parse(""));
  EXPECT_FALSE(opts.enabled);
  EXPECT_EQ(opts.bind, "127.0.0.1");
  EXPECT_EQ(opts.port, 0);
  EXPECT_EQ(opts.workers, 4);
  EXPECT_EQ(opts.max_connections, 16);
  EXPECT_EQ(opts.sse_buffer_events, 64);
  EXPECT_EQ(opts.publish_interval_ms, 50);
  EXPECT_NO_THROW(opts.validate());
}

TEST(OpsOptionsTest, ParsesOpsSection) {
  const OpsOptions opts = OpsOptions::from_config(Config::parse(R"(
[ops]
enabled = true
bind = 0.0.0.0
port = 9180
workers = 2
max_connections = 8
sse_buffer_events = 16
publish_interval_ms = 10
)"));
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.bind, "0.0.0.0");
  EXPECT_EQ(opts.port, 9180);
  EXPECT_EQ(opts.workers, 2);
  EXPECT_EQ(opts.max_connections, 8);
  EXPECT_EQ(opts.sse_buffer_events, 16);
  EXPECT_EQ(opts.publish_interval_ms, 10);
  EXPECT_NO_THROW(opts.validate());
}

TEST(OpsOptionsTest, ValidateRejectsUnusableValues) {
  OpsOptions opts;
  opts.port = 70'000;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = OpsOptions{};
  opts.workers = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = OpsOptions{};
  opts.max_connections = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = OpsOptions{};
  opts.sse_buffer_events = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = OpsOptions{};
  opts.publish_interval_ms = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = OpsOptions{};
  opts.bind.clear();
  EXPECT_THROW(opts.validate(), InvalidArgument);
}

// ------------------------------------------------------------ SSE ring

TEST(SseRingTest, FifoOrderAndDropAndCount) {
  SseRing ring(4);
  for (int i = 0; i < 6; ++i) {
    SseEvent e;
    e.id = static_cast<std::uint64_t>(i);
    e.data = std::to_string(i);
    const bool pushed = ring.push(std::move(e));
    EXPECT_EQ(pushed, i < 4);
  }
  EXPECT_EQ(ring.dropped(), 2u);

  SseEvent out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.data, std::to_string(i));  // FIFO, drops are the newest
  }
  EXPECT_FALSE(ring.pop(&out));

  // Space freed by the pops is reusable; the drop tally is cumulative.
  EXPECT_TRUE(ring.push(SseEvent{"metrics", "{}", 7}));
  ASSERT_TRUE(ring.pop(&out));
  EXPECT_EQ(out.id, 7u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SseClientTest, WaitPopTimesOutThenDelivers) {
  SseClient client(4);
  SseEvent out;
  EXPECT_FALSE(client.wait_pop(&out, 10));

  std::thread producer([&client] {
    sleep_ms(20);
    client.ring.push(SseEvent{"lint", "payload", 1});
    client.wake_cv.notify_one();
  });
  EXPECT_TRUE(client.wait_pop(&out, 2'000));
  EXPECT_EQ(out.data, "payload");
  producer.join();
}

TEST(SseHubTest, FanoutDropsPerSlowClientAndFoldsDeparted) {
  SseHub hub(2);
  auto fast = hub.subscribe();
  auto slow = hub.subscribe();
  EXPECT_EQ(hub.clients(), 2);

  // The fast consumer keeps draining; the slow one never pops, so only
  // its own ring overflows.
  SseEvent out;
  for (int i = 0; i < 5; ++i) {
    hub.publish("metrics", std::to_string(i));
    while (fast->ring.pop(&out)) {
    }
  }
  EXPECT_EQ(hub.published(), 5u);
  EXPECT_EQ(fast->ring.dropped(), 0u);
  EXPECT_EQ(slow->ring.dropped(), 3u);  // capacity 2, 5 published
  EXPECT_EQ(hub.dropped(), 3u);

  // A departing client's tally survives its unsubscription.
  hub.unsubscribe(slow);
  EXPECT_EQ(hub.clients(), 1);
  EXPECT_EQ(hub.dropped(), 3u);
}

TEST(SseWireTest, FrameParserRoundTripSkipsComments) {
  SseEvent a{"metrics", "{\"counters\":{}}", 3};
  SseEvent b{"lint", "{\"errors\":1}", 4};
  // Streams open with a comment handshake; keep-alives look the same.
  const std::string wire =
      ": presp ops stream\n\n" + sse_frame(a) + ": keep-alive\n\n" +
      sse_frame(b);

  // Feed byte-by-byte to exercise incremental reassembly.
  SseParser parser;
  std::vector<SseEvent> events;
  SseEvent out;
  for (char c : wire) {
    parser.feed(&c, 1);
    while (parser.next(&out)) events.push_back(out);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 3u);
  EXPECT_EQ(events[0].event, "metrics");
  EXPECT_EQ(events[0].data, "{\"counters\":{}}");
  EXPECT_EQ(events[1].id, 4u);
  EXPECT_EQ(events[1].event, "lint");
  EXPECT_EQ(events[1].data, "{\"errors\":1}");
}

// --------------------------------------------- snapshots under mutation

// The endpoint contract: readers take snapshots while writer threads
// keep mutating, and every read is internally consistent. Run under
// TSan/racecheck (tier-1) this is the data-race regression for the
// observer path.
TEST(SnapshotUnderMutationTest, MetricsRegistrySnapshotsStayConsistent) {
  trace::MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kIncrements = 5'000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      trace::Counter& counter = registry.counter("ops.test.counter");
      trace::Gauge& gauge = registry.gauge("ops.test.depth");
      trace::Histogram& histogram = registry.histogram("ops.test.lat");
      for (int i = 0; i < kIncrements; ++i) {
        counter.add();
        gauge.set(static_cast<double>(i % 32));
        histogram.observe(static_cast<double>((w + 1) * (i % 16)));
      }
    });
  }

  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const trace::MetricsSnapshot snap = registry.snapshot();
      for (const auto& [name, value] : snap.counters)
        EXPECT_LE(value, static_cast<std::uint64_t>(kWriters * kIncrements));
      EXPECT_EQ(registry.snapshot_json().front(), '{');
      EXPECT_NE(registry.prometheus_text().find("presp_"),
                std::string::npos);
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const trace::MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counters.at("ops.test.counter"),
            static_cast<std::uint64_t>(kWriters * kIncrements));
  EXPECT_EQ(final_snap.histograms.at("ops.test.lat").count,
            static_cast<std::uint64_t>(kWriters * kIncrements));
}

TEST(SnapshotUnderMutationTest, TileHealthSnapshotsStayConsistent) {
  runtime::TileHealthRegistry registry;
  constexpr int kTiles = 4;
  constexpr int kRounds = 2'000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int tile = 0; tile < kTiles; ++tile) {
    writers.emplace_back([&registry, tile] {
      for (int i = 0; i < kRounds; ++i) {
        registry.record_failure(tile);
        registry.record_success(tile);
        if (i % 128 == 0) {
          registry.quarantine(tile);
          registry.rehabilitate(tile);
        }
      }
    });
  }

  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = registry.snapshot();
      EXPECT_LE(snap.size(), static_cast<std::size_t>(kTiles));
      const auto stats = registry.stats();
      EXPECT_GE(stats.failures, stats.quarantines);
      // Render through the endpoint path too: consistent JSON from a
      // moving registry.
      const std::string body = tile_health_json(snap, stats);
      EXPECT_EQ(body.front(), '{');
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto stats = registry.stats();
  EXPECT_EQ(stats.failures,
            static_cast<std::uint64_t>(kTiles) * kRounds);
  EXPECT_EQ(stats.quarantines,
            static_cast<std::uint64_t>(kTiles) * (kRounds / 128 + 1));
}

TEST(SourcesTest, MetricsDeltaJsonReportsOnlyMovement) {
  trace::MetricsSnapshot prev;
  prev.counters["a"] = 3;
  prev.counters["b"] = 5;
  trace::MetricsSnapshot cur = prev;

  EXPECT_EQ(metrics_delta_json(prev, cur), "{}");

  cur.counters["b"] = 9;
  cur.counters["c"] = 1;
  const std::string delta = metrics_delta_json(prev, cur);
  EXPECT_EQ(delta.find("\"a\""), std::string::npos);
  EXPECT_NE(delta.find("\"b\":4"), std::string::npos);
  EXPECT_NE(delta.find("\"c\":1"), std::string::npos);
}

// -------------------------------------------------------------- server

// Raw one-shot request helper for the verbs http_get cannot produce.
int raw_request_status(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  send_all(fd, request);
  std::string head;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n") != std::string::npos) break;
  }
  ::close(fd);
  if (head.rfind("HTTP/1.1 ", 0) != 0 || head.size() < 12) return -1;
  return std::atoi(head.c_str() + 9);
}

// Collects every event from /events until the server closes the stream.
std::vector<SseEvent> collect_sse(int port) {
  std::vector<SseEvent> events;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return events;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return events;
  }
  send_all(fd,
           "GET /events HTTP/1.1\r\nHost: t\r\n"
           "Accept: text/event-stream\r\n\r\n");
  std::string head;
  bool in_body = false;
  SseParser parser;
  SseEvent out;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    if (!in_body) {
      head.append(buf, static_cast<std::size_t>(n));
      const std::size_t end = head.find("\r\n\r\n");
      if (end == std::string::npos) continue;
      in_body = true;
      parser.feed(head.data() + end + 4, head.size() - end - 4);
    } else {
      parser.feed(buf, static_cast<std::size_t>(n));
    }
    while (parser.next(&out)) events.push_back(out);
  }
  ::close(fd);
  return events;
}

OpsOptions test_server_options() {
  OpsOptions opts;
  opts.enabled = true;
  opts.port = 0;  // ephemeral: tests never collide on a port
  opts.workers = 4;
  opts.max_connections = 8;
  opts.publish_interval_ms = 5;
  return opts;
}

TEST(OpsServerTest, ServesEndpointCatalogAndSnapshots) {
  OpsServer server(test_server_options());
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get(server.port(), "/", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("/metrics"), std::string::npos);
  EXPECT_NE(body.find("/events"), std::string::npos);

  ASSERT_TRUE(http_get(server.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.front(), '{');

  ASSERT_TRUE(http_get(server.port(), "/metrics/prometheus", &status,
                       &body));
  EXPECT_EQ(status, 200);

  // No health source attached: explicit null, still valid JSON.
  ASSERT_TRUE(http_get(server.port(), "/health", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"health\":null}");

  ASSERT_TRUE(http_get(server.port(), "/trace/summary", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.front(), '{');

  server.set_health_source([] { return std::string("{\"tiles\":3}"); });
  ASSERT_TRUE(http_get(server.port(), "/health", &status, &body));
  EXPECT_EQ(body, "{\"tiles\":3}");

  ASSERT_TRUE(http_get(server.port(), "/no-such-endpoint", &status, &body));
  EXPECT_EQ(status, 404);

  EXPECT_EQ(raw_request_status(server.port(),
                               "POST /metrics HTTP/1.1\r\nHost: t\r\n"
                               "Content-Length: 0\r\n\r\n"),
            405);

  const OpsServer::Stats stats = server.stats();
  EXPECT_GE(stats.requests, 8u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(OpsServerTest, RejectsBeyondConnectionCapWith503) {
  OpsOptions opts = test_server_options();
  opts.workers = 2;
  opts.max_connections = 1;
  OpsServer server(opts);
  server.start();

  // One SSE subscriber occupies the single connection slot until the
  // server shuts down.
  std::thread occupant([&server] {
    sse_stream(server.port(), "/events", 0, 30'000);
  });
  for (int i = 0; i < 200 && server.stats().sse_clients == 0; ++i)
    sleep_ms(5);
  ASSERT_EQ(server.stats().sse_clients, 1u);

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get(server.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 503);
  EXPECT_GE(server.stats().rejected, 1u);

  server.stop();
  occupant.join();
}

TEST(OpsServerTest, PublishReachesSseSubscribers) {
  OpsServer server(test_server_options());
  server.start();

  std::thread client;
  std::vector<SseEvent> events;
  client = std::thread(
      [&events, port = server.port()] { events = collect_sse(port); });
  for (int i = 0; i < 200 && server.stats().sse_clients == 0; ++i)
    sleep_ms(5);
  ASSERT_EQ(server.stats().sse_clients, 1u);

  server.publish("lint", "{\"path\":\"a.esp_config\",\"errors\":2}");
  // One publish interval delivers the inbox; wait a few to be safe.
  sleep_ms(100);
  server.stop();
  client.join();

  bool saw_lint = false;
  for (const SseEvent& e : events)
    if (e.event == "lint" &&
        e.data == "{\"path\":\"a.esp_config\",\"errors\":2}")
      saw_lint = true;
  EXPECT_TRUE(saw_lint) << events.size() << " events, none was the lint one";
}

TEST(OpsServerTest, SlowClientOverflowsOwnRingOnly) {
  OpsOptions opts = test_server_options();
  opts.sse_buffer_events = 2;
  OpsServer server(opts);
  server.start();

  std::atomic<bool> hurry{false};
  SseStreamResult slow_result;
  std::thread slow([&slow_result, &hurry, port = server.port()] {
    // 1 KiB receive window + 250 ms between reads: the TCP path
    // backpressures almost immediately and the server-side ring (cap 2)
    // must overflow.
    slow_result = sse_stream(port, "/events", 250, 60'000, 1'024, &hurry);
  });
  for (int i = 0; i < 200 && server.stats().sse_clients == 0; ++i)
    sleep_ms(5);
  ASSERT_EQ(server.stats().sse_clients, 1u);

  for (int i = 0; i < 2'000 && server.stats().sse_dropped == 0; ++i) {
    server.publish("probe", std::string(4'096, 'x'));
    sleep_ms(1);
  }
  EXPECT_GT(server.stats().sse_dropped, 0u);

  server.stop();
  hurry.store(true);  // drain the client's TCP backlog at full speed
  slow.join();
  EXPECT_TRUE(slow_result.connected);
  EXPECT_GT(slow_result.events, 0u);
}

// ----------------------------------------------------------- watch-lint

class TempConfigDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("presp-ops-watch-" +
            std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_config(const std::string& name,
                           const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path);
    out << text;
    return path.string();
  }

  fs::path dir_;
};

constexpr const char* kCleanConfig = R"([soc]
name = watch_soc
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:conv2d,gemm
r1c1 = reconf:fft,sort
r1c2 = empty
)";

class WatchLintTest : public TempConfigDir {};

TEST_F(WatchLintTest, RelintsOnlyChangedFiles) {
  const std::string path = write_config("watched.esp_config", kCleanConfig);
  std::vector<LintWatcher::Report> reports;
  LintWatcher watcher({path}, [&reports](const LintWatcher::Report& r) {
    reports.push_back(r);
  });

  EXPECT_EQ(watcher.lint_all(), 1);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].path, path);
  EXPECT_EQ(reports[0].errors, 0u);

  // Unchanged file: the poll is quiet.
  EXPECT_EQ(watcher.poll_once(), 0);
  EXPECT_EQ(reports.size(), 1u);

  // An edit that breaks the config re-lints with findings. Appending
  // changes the size, so the fingerprint moves even within one mtime
  // granule.
  {
    std::ofstream out(path, std::ios::app);
    out << "\n[ops]\nenabled = true\nport = 99999\n";
  }
  EXPECT_EQ(watcher.poll_once(), 1);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_GE(reports[1].errors, 1u);  // ops.port out of range
  EXPECT_NE(reports[1].findings_json.find("ops.port"), std::string::npos);
  EXPECT_EQ(watcher.reports(), 2u);
}

TEST_F(WatchLintTest, DeletedFileReportsParseErrorOnce) {
  const std::string path = write_config("doomed.esp_config", kCleanConfig);
  std::vector<LintWatcher::Report> reports;
  LintWatcher watcher({path}, [&reports](const LintWatcher::Report& r) {
    reports.push_back(r);
  });
  watcher.lint_all();
  ASSERT_EQ(reports.size(), 1u);

  fs::remove(path);
  EXPECT_EQ(watcher.poll_once(), 1);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_GE(reports[1].errors, 1u);
  // The deletion is reported once, not on every subsequent poll.
  EXPECT_EQ(watcher.poll_once(), 0);
  EXPECT_EQ(reports.size(), 2u);
}

TEST_F(WatchLintTest, ReportsReachSseSubscribersViaServer) {
  const std::string path = write_config("live.esp_config", kCleanConfig);

  OpsServer server(test_server_options());
  server.start();
  LintWatcher watcher({path}, [&server](const LintWatcher::Report& r) {
    server.publish("lint", "{\"path\":\"" + r.path + "\",\"errors\":" +
                               std::to_string(r.errors) + "}");
  });

  std::vector<SseEvent> events;
  std::thread client(
      [&events, port = server.port()] { events = collect_sse(port); });
  for (int i = 0; i < 200 && server.stats().sse_clients == 0; ++i)
    sleep_ms(5);
  ASSERT_EQ(server.stats().sse_clients, 1u);

  watcher.lint_all();
  {
    std::ofstream out(path, std::ios::app);
    out << "\n[ops]\nenabled = true\nworkers = 0\n";
  }
  EXPECT_EQ(watcher.poll_once(), 1);
  sleep_ms(100);
  server.stop();
  client.join();

  // Both the baseline pass and the edit arrived as "lint" events.
  int lint_events = 0;
  bool saw_error_report = false;
  for (const SseEvent& e : events) {
    if (e.event != "lint") continue;
    ++lint_events;
    if (e.data.find("\"errors\":0") == std::string::npos)
      saw_error_report = true;
  }
  EXPECT_GE(lint_events, 2);
  EXPECT_TRUE(saw_error_report);
}

}  // namespace
}  // namespace presp::ops
