#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/metrics.hpp"
#include "core/reference_designs.hpp"
#include "core/runtime_model.hpp"
#include "core/strategy.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::core {
namespace {

class CoreEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new CoreEnv);  // NOLINT

// ------------------------------------------------------------- metrics

struct MetricsCase {
  int soc;
  double kappa;
  double alpha;
  double gamma;
  DesignClass cls;
};

class CharacterizationMetrics
    : public ::testing::TestWithParam<MetricsCase> {};

// Paper Table III columns for SOC_1..SOC_4. Tolerances reflect the
// component-calibration error budget (static part within a few percent).
TEST_P(CharacterizationMetrics, MatchTable3) {
  const auto& param = GetParam();
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  const auto rtl = netlist::elaborate(characterization_soc(param.soc), lib);
  const SizeMetrics m = compute_metrics(rtl, lib, device);
  EXPECT_NEAR(m.kappa * 100.0, param.kappa, param.kappa * 0.20);
  EXPECT_NEAR(m.alpha_av * 100.0, param.alpha, param.alpha * 0.20);
  EXPECT_NEAR(m.gamma, param.gamma, param.gamma * 0.10);
  EXPECT_EQ(classify(m), param.cls);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, CharacterizationMetrics,
    ::testing::Values(
        MetricsCase{1, 27.0, 0.8, 0.48, DesignClass::kClass11},
        MetricsCase{2, 27.2, 10.1, 1.47, DesignClass::kClass12},
        MetricsCase{3, 27.1, 9.6, 1.07, DesignClass::kClass13},
        MetricsCase{4, 11.5, 10.8, 4.1, DesignClass::kClass21}),
    [](const auto& info) {
      return "SOC_" + std::to_string(info.param.soc);
    });

TEST(MetricsTest, ClassificationBandsRespected) {
  SizeMetrics m;
  m.num_partitions = 4;
  m.kappa = 0.27;
  m.alpha_av = 0.01;
  m.gamma = 0.99;  // inside the gamma ~ 1 band
  EXPECT_EQ(classify(m), DesignClass::kClass13);
  m.gamma = 0.80;
  EXPECT_EQ(classify(m), DesignClass::kClass11);
  m.gamma = 1.20;
  EXPECT_EQ(classify(m), DesignClass::kClass12);
}

TEST(MetricsTest, Group2SinglePartitionIsClass22) {
  SizeMetrics m;
  m.num_partitions = 1;
  m.kappa = 0.10;
  m.alpha_av = 0.11;
  m.gamma = 1.05;
  EXPECT_EQ(classify(m), DesignClass::kClass22);
}

TEST(MetricsTest, ImpossibleGroup2GammaBelowOneRejected) {
  SizeMetrics m;
  m.num_partitions = 3;
  m.kappa = 0.10;
  m.alpha_av = 0.12;
  m.gamma = 0.5;
  EXPECT_THROW(classify(m), InvalidArgument);
}

TEST(MetricsTest, NoPartitionsRejected) {
  EXPECT_THROW(classify(SizeMetrics{}), InvalidArgument);
}

// -------------------------------------------------------- runtime model

TEST(RuntimeModelTest, CongestionGrowsQuadratically) {
  const auto device = fabric::Device::vc707();
  const RuntimeModel model(device);
  EXPECT_DOUBLE_EQ(model.congestion(0.0), 1.0);
  EXPECT_GT(model.congestion(0.8), model.congestion(0.4));
  const double low = model.congestion(0.2) - 1.0;
  const double high = model.congestion(0.4) - 1.0;
  EXPECT_NEAR(high / low, 4.0, 1e-9);
}

TEST(RuntimeModelTest, MoreParallelismNeverHurtsMakespanOfGroups) {
  const auto device = fabric::Device::vc707();
  const RuntimeModel model(device);
  const std::vector<long long> mods{37'000, 33'000, 31'000, 21'000};
  double prev = 1e18;
  for (int tau = 2; tau <= 4; ++tau) {
    std::vector<std::vector<long long>> groups;
    for (const auto& g : balanced_groups(mods, tau)) {
      std::vector<long long> luts;
      for (const auto i : g) luts.push_back(mods[i]);
      groups.push_back(luts);
    }
    const double t = model.predict_parallel(83'000, 160'000, groups);
    EXPECT_LE(t, prev + 1e-9);
    prev = t;
  }
}

TEST(RuntimeModelTest, StandardFlowCheaperThanComposedSerialPnr) {
  const auto device = fabric::Device::vc707();
  const RuntimeModel model(device);
  const std::vector<long long> mods{37'000, 33'000};
  EXPECT_LT(model.predict_standard(83'000, 160'000, mods),
            model.predict_serial(83'000, 160'000, mods));
}

TEST(RuntimeModelTest, BalancedGroupsPartitionAllModules) {
  const std::vector<long long> mods{9, 8, 7, 3, 2, 1};
  const auto groups = balanced_groups(mods, 3);
  ASSERT_EQ(groups.size(), 3u);
  std::vector<bool> seen(mods.size(), false);
  for (const auto& g : groups)
    for (const auto i : g) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  for (const bool s : seen) EXPECT_TRUE(s);
  // LPT: loads should be near-balanced (here exactly 10 each).
  for (const auto& g : groups) {
    long long load = 0;
    for (const auto i : g) load += mods[i];
    EXPECT_EQ(load, 10);
  }
}

TEST(RuntimeModelTest, BalancedGroupsClampToModuleCount) {
  const auto groups = balanced_groups({5, 3}, 8);
  EXPECT_EQ(groups.size(), 2u);
}

// ------------------------------------------------------------ strategy

TEST(StrategyTest, Table1MappingPerClass) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  const RuntimeModel model(device);

  const auto decide = [&](int soc) {
    const auto rtl = netlist::elaborate(characterization_soc(soc), lib);
    StrategyInputs in;
    in.metrics = compute_metrics(rtl, lib, device);
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        in.module_luts.push_back(
            netlist::SocRtl::module_resources(lib, m).luts);
    in.static_region_luts =
        device.total().luts - static_cast<long long>(1.3 * in.metrics.reconf_luts);
    return choose_strategy(in, model);
  };

  EXPECT_EQ(decide(1).strategy, Strategy::kSerial);          // Class 1.1
  EXPECT_EQ(decide(2).strategy, Strategy::kFullyParallel);   // Class 1.2
  EXPECT_EQ(decide(3).strategy, Strategy::kSemiParallel);    // Class 1.3
  EXPECT_EQ(decide(3).tau, 2);
  EXPECT_EQ(decide(4).strategy, Strategy::kFullyParallel);   // Class 2.1
  EXPECT_EQ(decide(4).tau, 5);
}

TEST(StrategyTest, SerialGroupsEverythingInOneInstance) {
  const auto device = fabric::Device::vc707();
  const RuntimeModel model(device);
  StrategyInputs in;
  in.metrics.num_partitions = 4;
  in.metrics.kappa = 0.3;
  in.metrics.alpha_av = 0.01;
  in.metrics.gamma = 0.5;
  in.metrics.static_luts = 90'000;
  in.module_luts = {3'000, 3'000, 3'000, 3'000};
  in.static_region_luts = 250'000;
  const auto d = choose_strategy(in, model);
  EXPECT_EQ(d.strategy, Strategy::kSerial);
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups.front().size(), 4u);
}

TEST(StrategyTest, RejectsEmptyModuleList) {
  const auto device = fabric::Device::vc707();
  const RuntimeModel model(device);
  EXPECT_THROW(choose_strategy(StrategyInputs{}, model), InvalidArgument);
}

// ------------------------------------------------- characterization flow

// Paper Table III shape checks: the strategy chosen for each class is the
// measured winner for Classes 1.1, 1.2, 2.1; Class 1.3 is a near-tie in
// the paper itself (134 vs 137 minutes) and in our model, so there we only
// require the chosen strategy to be within 10% of the best.
TEST(FlowShapeTest, Table3WinnersReproduced) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  FlowOptions opt;
  opt.run_physical = false;
  const PrEspFlow flow(device, lib, opt);

  for (const int soc : {1, 2, 3, 4}) {
    const auto result = flow.run(characterization_soc(soc));
    // Evaluate the full sweep with the same module list.
    const auto rtl = netlist::elaborate(characterization_soc(soc), lib);
    std::vector<long long> mods;
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        mods.push_back(netlist::SocRtl::module_resources(lib, m).luts);
    const long long region = result.plan.static_capacity.luts;

    double best = 1e18;
    for (int tau = 1; tau <= static_cast<int>(mods.size()); ++tau) {
      const Strategy strategy =
          tau == 1 ? Strategy::kSerial
                   : (tau == static_cast<int>(mods.size())
                          ? Strategy::kFullyParallel
                          : Strategy::kSemiParallel);
      best = std::min(best,
                      evaluate_schedule(flow.model(),
                                        result.metrics.static_luts, region,
                                        mods, strategy, tau)
                          .total);
    }
    if (soc == 3) {
      EXPECT_LE(result.pnr_total_minutes, best * 1.10) << "SOC_" << soc;
    } else {
      EXPECT_LE(result.pnr_total_minutes, best * 1.001) << "SOC_" << soc;
    }
  }
}

TEST(FlowShapeTest, PrEspBeatsStandardFlowForClass12And21) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  FlowOptions opt;
  opt.run_physical = false;
  const PrEspFlow flow(device, lib, opt);
  for (const int soc : {2, 4}) {
    const auto ours = flow.run(characterization_soc(soc));
    const auto standard = flow.run_standard(characterization_soc(soc));
    // Paper Table V: 19-24% total-time improvement for these classes.
    EXPECT_LT(ours.total_minutes, standard.total_minutes * 0.9)
        << "SOC_" << soc;
  }
}

TEST(FlowShapeTest, SerialClassRoughParityWithStandardFlow) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  FlowOptions opt;
  opt.run_physical = false;
  const PrEspFlow flow(device, lib, opt);
  const auto ours = flow.run(characterization_soc(1));
  const auto standard = flow.run_standard(characterization_soc(1));
  // Paper: PR-ESP within a few percent of the standard flow (2.5% slower
  // for SoC_B). Accept +-10%.
  EXPECT_NEAR(ours.total_minutes, standard.total_minutes,
              standard.total_minutes * 0.10);
}

TEST(FlowTest, PhysicalRunProducesBitstreams) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  FlowOptions opt;
  opt.pnr.placer.temperature_steps = 6;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 50;
  const PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(characterization_soc(3));
  EXPECT_TRUE(result.physical_ok);
  ASSERT_EQ(result.modules.size(), 3u);
  for (const auto& m : result.modules) {
    EXPECT_TRUE(m.routed) << m.module;
    EXPECT_GT(m.pbs_raw_bytes, 0u);
    EXPECT_GT(m.pbs_compressed_bytes, 0u);
    EXPECT_LT(m.pbs_compressed_bytes, m.pbs_raw_bytes);
  }
  EXPECT_GT(result.full_bitstream_bytes, 10'000'000u);  // ~19.5 MB VC707
}

TEST(FlowTest, ForcedStrategyOverridesTable1) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  FlowOptions opt;
  opt.run_physical = false;
  opt.force_strategy = Strategy::kFullyParallel;
  const PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(characterization_soc(1));  // Class 1.1
  EXPECT_EQ(result.decision.strategy, Strategy::kFullyParallel);
  EXPECT_EQ(result.decision.tau, 16);
}

TEST(FlowTest, ModuleLookupByPartition) {
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();
  FlowOptions opt;
  opt.run_physical = false;
  const PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(characterization_soc(2));
  EXPECT_NO_THROW(result.module("RT_1", "conv2d"));
  EXPECT_THROW(result.module("RT_1", "gemm"), InvalidArgument);
}

}  // namespace
}  // namespace presp::core
