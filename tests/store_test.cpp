// Pipelined bitstream-store tests: fetch/program overlap (request N+1's
// DMA fetch runs while request N streams through the ICAP), LRU cache
// accounting and pin-blocking, fault isolation between the two pipeline
// stages, bit-identical WAMI output with prefetch on/off, and the
// asynchronous file-backed source round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "runtime/manager.hpp"
#include "trace/trace.hpp"
#include "wami/app.hpp"

namespace presp::runtime {
namespace {

const char* kSocText = R"(
[soc]
name = store_sim
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_c
r1c2 = empty
)";

soc::AcceleratorRegistry test_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b", "acc_c"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 15'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 3;
    spec.latency.startup_cycles = 40;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

constexpr std::size_t kPbsBytes = 250'000;

class StoreFixture : public ::testing::Test {
 protected:
  explicit StoreFixture(ManagerOptions options = {})
      : registry_(test_registry()),
        soc_(netlist::SocConfig::parse(kSocText), registry_),
        store_(soc_.memory()),
        manager_(soc_, store_, options) {
    for (const int tile : {3, 4})
      for (const char* module : {"acc_a", "acc_b", "acc_c"})
        store_.add(tile, module, kPbsBytes);
  }

  soc::AcceleratorRegistry registry_;
  soc::Soc soc_;
  BitstreamStore store_;
  ReconfigurationManager manager_;
};

// ------------------------------------------------- fetch/program overlap

/// Loads one module on each reconfigurable tile (both requests issued in
/// the same cycle) and returns the total simulated time.
sim::Time run_two_tile_workload(bool pipelined) {
  auto registry = test_registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), registry);
  BitstreamStore store(soc.memory());
  for (const int tile : {3, 4})
    for (const char* module : {"acc_a", "acc_b", "acc_c"})
      store.add(tile, module, kPbsBytes);
  ManagerOptions options;
  options.pipelined = pipelined;
  ReconfigurationManager manager(soc, store, options);

  Completion d1(soc.kernel());
  Completion d2(soc.kernel());
  manager.ensure_module(3, "acc_a", d1);
  manager.ensure_module(4, "acc_c", d2);
  soc.kernel().run();
  EXPECT_TRUE(d1.ok());
  EXPECT_TRUE(d2.ok());
  EXPECT_EQ(manager.stats().pipelined_fetches, pipelined ? 2u : 0u);
  return soc.kernel().now();
}

TEST(StorePipelineTest, PipelinedModeBeatsSerialOnConcurrentRequests) {
  const sim::Time serial = run_two_tile_workload(false);
  const sim::Time pipelined = run_two_tile_workload(true);
  EXPECT_LT(pipelined, serial);
}

TEST_F(StoreFixture, NextRequestFetchStartsBeforePreviousProgramEnds) {
  trace::TraceConfig config;
  config.categories = static_cast<std::uint32_t>(trace::Category::kRuntime);
  trace::TraceSession::instance().start(config);

  Completion d1(soc_.kernel());
  Completion d2(soc_.kernel());
  manager_.ensure_module(3, "acc_a", d1);
  manager_.ensure_module(4, "acc_c", d2);
  soc_.kernel().run();

  const trace::TraceReport report = trace::TraceSession::instance().stop();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());

  // Per tile track: when its fetch span opens and its ICAP span closes.
  std::map<std::uint32_t, std::uint64_t> fetch_begin;
  std::map<std::uint32_t, std::uint64_t> icap_end;
  for (const trace::TraceEvent& event : report.events) {
    if (event.clock != trace::ClockDomain::kSim) continue;
    if (event.name == "fetch" && event.phase == trace::Phase::kBegin &&
        fetch_begin.find(event.track) == fetch_begin.end()) {
      fetch_begin[event.track] = event.timestamp;
    }
    if (event.name == "icap" && event.phase == trace::Phase::kEnd) {
      icap_end[event.track] = event.timestamp;
    }
  }
  ASSERT_EQ(fetch_begin.size(), 2u);
  ASSERT_EQ(icap_end.size(), 2u);

  // Request N = the one whose ICAP finishes first; request N+1 = the
  // other. The pipeline must have started N+1's DMA fetch strictly
  // before N's programming completed.
  const auto first_done = std::min_element(
      icap_end.begin(), icap_end.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [track, begin] : fetch_begin) {
    if (track == first_done->first) continue;
    EXPECT_LT(begin, first_done->second)
        << "tile track " << track
        << " did not overlap its fetch with the in-flight program stage";
  }
  EXPECT_EQ(manager_.stats().pipelined_fetches, 2u);
}

// ----------------------------------------------------- fault isolation

TEST_F(StoreFixture, FaultInjectedMidFetchLeavesInFlightProgramUntouched) {
  // Corrupt tile 4's bitstream: its fetch-stage CRC check trips once
  // while tile 3's program stage is in flight. Tile 4 must recover by
  // re-fetching; tile 3 must complete as if nothing happened.
  soc_.memory().corrupt_blob(store_.get(4, "acc_c").address);

  Completion d1(soc_.kernel());
  Completion d2(soc_.kernel());
  manager_.ensure_module(3, "acc_a", d1);
  manager_.ensure_module(4, "acc_c", d2);
  soc_.kernel().run();

  EXPECT_TRUE(d1.ok());
  EXPECT_TRUE(d2.ok());
  EXPECT_EQ(manager_.stats().crc_retries, 1u);
  EXPECT_EQ(manager_.stats().reconfigurations, 2u);
  EXPECT_EQ(manager_.stats().reconfigurations_failed, 0u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(soc_.reconf_tile(4).module(), "acc_c");
}

// ------------------------------------------------------ LRU accounting

TEST(StoreCacheTest, LruEvictionHitAccountingAndPinBlocking) {
  sim::Kernel kernel;
  soc::MainMemory memory;
  StoreOptions options;
  options.cache_slots = 2;
  BitstreamStore store(memory, options);

  constexpr std::size_t kBytes = 4096;
  std::map<std::string, std::vector<std::uint8_t>> payloads;
  for (const char* module : {"acc_a", "acc_b", "acc_c"}) {
    std::vector<std::uint8_t> payload(kBytes);
    for (std::size_t i = 0; i < payload.size(); ++i)
      payload[i] = static_cast<std::uint8_t>((i * 7 + module[4]) & 0xff);
    store.add(0, module, kBytes, payload);
    payloads[module] = std::move(payload);
  }

  StoreTicket blocked(kernel);
  bool driver_done = false;
  auto driver = [&]() -> sim::Process {
    // Miss: acc_a fills slot 0; the payload must land in DRAM verbatim.
    StoreTicket t1(kernel);
    store.acquire(kernel, 0, "acc_a", t1);
    co_await t1.done.wait();
    const auto bytes = memory.bytes(t1.image.address, kBytes);
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(),
                           payloads["acc_a"].begin()));
    store.release(0, "acc_a");

    // Hit: still resident, no second fetch.
    StoreTicket t2(kernel);
    store.acquire(kernel, 0, "acc_a", t2);
    co_await t2.done.wait();
    store.release(0, "acc_a");
    EXPECT_EQ(store.stats().hits, 1u);

    // Misses pinning both slots: acc_c must evict the LRU (acc_a).
    StoreTicket t3(kernel);
    StoreTicket t4(kernel);
    store.acquire(kernel, 0, "acc_b", t3);
    co_await t3.done.wait();
    store.acquire(kernel, 0, "acc_c", t4);
    co_await t4.done.wait();
    EXPECT_FALSE(store.resident(0, "acc_a"));
    EXPECT_TRUE(store.resident(0, "acc_b"));
    EXPECT_TRUE(store.resident(0, "acc_c"));
    EXPECT_EQ(store.stats().evictions, 1u);

    // Both slots pinned: a further acquire must block on a slot credit.
    store.acquire(kernel, 0, "acc_a", blocked);
    co_await sim::Delay(kernel, 1'000'000);
    EXPECT_FALSE(blocked.done.triggered());

    // Unpinning acc_b frees a credit; the blocked acquire evicts it.
    store.release(0, "acc_b");
    co_await blocked.done.wait();
    EXPECT_TRUE(store.resident(0, "acc_a"));
    EXPECT_FALSE(store.resident(0, "acc_b"));
    store.release(0, "acc_a");
    store.release(0, "acc_c");
    driver_done = true;
  };
  driver();
  kernel.run();

  ASSERT_TRUE(driver_done);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 4u);
  EXPECT_EQ(store.stats().evictions, 2u);
  EXPECT_EQ(store.stats().source_fetches, 4u);
  EXPECT_EQ(store.stats().source_bytes, 4u * kBytes);
}

// --------------------------------------------------- WAMI prefetch parity

TEST(StoreWamiTest, PrefetchProducesBitIdenticalOutput) {
  wami::WamiAppOptions options;
  options.frames = 2;
  options.workload = {64, 64};
  options.store.cache_slots = 4;

  options.prefetch_next_kernel = false;
  const auto baseline = [&] {
    wami::WamiApp app('Y', options);
    return app.run();
  }();

  options.prefetch_next_kernel = true;
  wami::WamiApp prefetching('Y', options);
  const auto warmed = prefetching.run();

  EXPECT_TRUE(baseline.all_verified);
  EXPECT_TRUE(warmed.all_verified);
  EXPECT_EQ(warmed.params, baseline.params);
  EXPECT_EQ(warmed.frames.size(), baseline.frames.size());
  // Prefetch actually warmed the cache: some acquisitions became hits.
  EXPECT_GT(prefetching.store().stats().hits, 0u);
}

// ------------------------------------------------- file-backed source

TEST(BitstreamSourceTest, FileSourceAsyncRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "presp_store_test_pbs";
  fs::remove_all(dir);

  std::vector<std::uint8_t> payload(8192);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>((i * 31) & 0xff);

  {
    // Thread-pool path: the read really happens on a pool worker.
    exec::ThreadPool pool(2);
    FileBitstreamSource source(dir.string(), &pool);
    source.store(3, "acc_a", payload);
    EXPECT_EQ(source.fetch(3, "acc_a").get(), payload);
    EXPECT_EQ(source.reads(), 1u);
    EXPECT_GT(source.latency_cycles(payload.size()),
              source.latency_cycles(0));
  }
  {
    // std::async fallback path reads the same file back.
    FileBitstreamSource source(dir.string());
    EXPECT_EQ(source.fetch(3, "acc_a").get(), payload);
    EXPECT_EQ(source.reads(), 1u);
  }

  // Cache miss through the store performs the real file read while the
  // simulated clock models seek + streaming latency.
  sim::Kernel kernel;
  soc::MainMemory memory;
  exec::ThreadPool pool(2);
  FileBitstreamSource source(dir.string(), &pool);
  StoreOptions options;
  options.cache_slots = 1;
  BitstreamStore store(memory, options, &source);
  store.add(3, "acc_a", payload.size(), payload);

  bool checked = false;
  auto driver = [&]() -> sim::Process {
    StoreTicket ticket(kernel);
    const sim::Time before = kernel.now();
    store.acquire(kernel, 3, "acc_a", ticket);
    co_await ticket.done.wait();
    EXPECT_GE(kernel.now() - before,
              source.latency_cycles(payload.size()));
    const auto bytes = memory.bytes(ticket.image.address, payload.size());
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), payload.begin()));
    store.release(3, "acc_a");
    checked = true;
  };
  driver();
  kernel.run();
  ASSERT_TRUE(checked);
  EXPECT_GE(source.reads(), 1u);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace presp::runtime
