// WamiApp behavioral tests beyond the integration suite: option handling,
// timing-only mode, bitstream-size injection, workload scaling and
// manager statistics plumbing.
#include <gtest/gtest.h>

#include "util/log.hpp"
#include "wami/app.hpp"

namespace presp::wami {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

WamiAppOptions small() {
  WamiAppOptions opt;
  opt.frames = 2;
  opt.workload = {64, 64};
  return opt;
}

TEST(WamiAppTest, TimingOnlyModeSkipsFunctionalWork) {
  auto opt = small();
  opt.functional = false;
  opt.verify = false;
  WamiApp app('Y', opt);
  const auto result = app.run();
  EXPECT_GT(result.seconds_per_frame, 0.0);
  EXPECT_GT(result.reconfigurations, 0u);
  // No functional outputs: parameters remain identity.
  EXPECT_DOUBLE_EQ(result.params[4], 0.0);
}

TEST(WamiAppTest, TimingIndependentOfFunctionalMode) {
  // The functional models execute at zero simulated cost, so enabling
  // them must not change the clock.
  auto opt = small();
  opt.verify = false;
  opt.functional = true;
  const auto functional = [&] {
    WamiApp app('X', opt);
    return app.run();
  }();
  opt.functional = false;
  const auto timing_only = [&] {
    WamiApp app('X', opt);
    return app.run();
  }();
  EXPECT_DOUBLE_EQ(functional.seconds_per_frame,
                   timing_only.seconds_per_frame);
}

TEST(WamiAppTest, InjectedPbsSizesChangeReconfigurationTime) {
  auto opt = small();
  opt.verify = false;
  const auto baseline = [&] {
    WamiApp app('X', opt);
    return app.run();
  }();
  opt.pbs_bytes.assign(12, 1'200'000);  // every image 1.2 MB
  const auto heavy = [&] {
    WamiApp app('X', opt);
    return app.run();
  }();
  EXPECT_GT(heavy.icap_bytes, baseline.icap_bytes);
  EXPECT_GT(heavy.seconds_per_frame, baseline.seconds_per_frame);
}

TEST(WamiAppTest, MoreLkIterationsCostMoreTimeAndReconfig) {
  auto opt = small();
  opt.verify = false;
  opt.lk_iterations = 1;
  const auto one = [&] {
    WamiApp app('Z', opt);
    return app.run();
  }();
  opt.lk_iterations = 3;
  const auto three = [&] {
    WamiApp app('Z', opt);
    return app.run();
  }();
  EXPECT_GT(three.seconds_per_frame, one.seconds_per_frame);
  EXPECT_GT(three.reconfigurations, one.reconfigurations);
}

TEST(WamiAppTest, LargerFramesScaleExecutionTime) {
  auto opt = small();
  opt.verify = false;
  opt.functional = false;  // keep host time low
  const auto small_frames = [&] {
    WamiApp app('Y', opt);
    return app.run();
  }();
  opt.workload = {128, 128};
  const auto big_frames = [&] {
    WamiApp app('Y', opt);
    return app.run();
  }();
  EXPECT_GT(big_frames.seconds_per_frame,
            small_frames.seconds_per_frame * 1.5);
}

TEST(WamiAppTest, FrameStatsPerFrameAndAggregate) {
  auto opt = small();
  opt.frames = 3;
  WamiApp app('Y', opt);
  const auto result = app.run();
  ASSERT_EQ(result.frames.size(), 3u);
  for (const auto& frame : result.frames) {
    EXPECT_GT(frame.seconds, 0.0);
    EXPECT_GT(frame.joules, 0.0);
    EXPECT_GT(frame.reconfigurations, 0);
    EXPECT_TRUE(frame.verified);
  }
  EXPECT_GT(result.first_frame_seconds, 0.0);
  EXPECT_GT(result.energy_breakdown.configured, 0.0);
  EXPECT_GT(result.energy_breakdown.noc, 0.0);
}

TEST(WamiAppTest, ManagerStatsReachableThroughApp) {
  auto opt = small();
  WamiApp app('X', opt);
  (void)app.run();
  const auto& stats = app.manager().stats();
  EXPECT_GT(stats.reconfigurations, 0u);
  EXPECT_GT(stats.runs, 0u);
  EXPECT_GE(stats.max_queue_depth, 1);
}

TEST(WamiAppTest, RejectsZeroFrames) {
  auto opt = small();
  opt.frames = 0;
  EXPECT_THROW(WamiApp('Y', opt), InvalidArgument);
}

}  // namespace
}  // namespace presp::wami
