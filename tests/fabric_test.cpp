#include <gtest/gtest.h>

#include "fabric/device.hpp"
#include "fabric/resources.hpp"
#include "util/error.hpp"

namespace presp::fabric {
namespace {

TEST(ResourceVecTest, ArithmeticAndComparison) {
  const ResourceVec a{100, 200, 3, 4};
  const ResourceVec b{10, 20, 1, 2};
  EXPECT_EQ((a + b).luts, 110);
  EXPECT_EQ((a - b).ffs, 180);
  EXPECT_EQ((b * 3).dsp, 6);
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  EXPECT_TRUE((a - b).non_negative());
  EXPECT_FALSE((b - a).non_negative());
}

TEST(ResourceVecTest, CoversIsComponentWise) {
  const ResourceVec cap{100, 100, 0, 0};
  EXPECT_FALSE(cap.covers({50, 50, 1, 0}));  // BRAM shortfall
  EXPECT_TRUE(cap.covers({100, 100, 0, 0}));
}

TEST(ResourceVecTest, LutFraction) {
  EXPECT_DOUBLE_EQ(lut_fraction({25, 0, 0, 0}, {100, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(lut_fraction({25, 0, 0, 0}, {}), 0.0);
}

// VC707 totals should match the real XC7VX485T within 2%.
TEST(DeviceTest, Vc707TotalsMatchDataSheet) {
  const Device dev = Device::vc707();
  EXPECT_NEAR(static_cast<double>(dev.total().luts), 303'600, 303'600 * 0.02);
  EXPECT_NEAR(static_cast<double>(dev.total().ffs), 607'200, 607'200 * 0.02);
  EXPECT_NEAR(static_cast<double>(dev.total().bram36), 1'030, 1'030 * 0.02);
  EXPECT_NEAR(static_cast<double>(dev.total().dsp), 2'800, 2'800 * 0.02);
  EXPECT_EQ(dev.region_rows(), 7);
}

TEST(DeviceTest, Vcu118TotalsMatchDataSheet) {
  const Device dev = Device::vcu118();
  EXPECT_NEAR(static_cast<double>(dev.total().luts), 1'182'240,
              1'182'240 * 0.02);
  EXPECT_NEAR(static_cast<double>(dev.total().dsp), 6'840, 6'840 * 0.02);
}

TEST(DeviceTest, Vcu128TotalsMatchDataSheet) {
  const Device dev = Device::vcu128();
  EXPECT_NEAR(static_cast<double>(dev.total().luts), 1'303'680,
              1'303'680 * 0.02);
  EXPECT_NEAR(static_cast<double>(dev.total().bram36), 2'016, 2'016 * 0.03);
}

TEST(DeviceTest, ColumnSequenceHasEdgesAndSpine) {
  const Device dev = Device::vc707();
  EXPECT_EQ(dev.column_type(0), ColumnType::kIo);
  EXPECT_EQ(dev.column_type(dev.num_columns() - 1), ColumnType::kIo);
  int clock_cols = 0;
  for (int c = 0; c < dev.num_columns(); ++c)
    if (dev.column_type(c) == ColumnType::kClock) ++clock_cols;
  EXPECT_EQ(clock_cols, 1);
}

TEST(DeviceTest, SpecialColumnsInterleaved) {
  const Device dev = Device::vc707();
  // No two special (BRAM/DSP) columns should be adjacent: real fabrics
  // interleave them through the logic.
  for (int c = 0; c + 1 < dev.num_columns(); ++c) {
    const bool s0 = dev.column_type(c) == ColumnType::kBram ||
                    dev.column_type(c) == ColumnType::kDsp;
    const bool s1 = dev.column_type(c + 1) == ColumnType::kBram ||
                    dev.column_type(c + 1) == ColumnType::kDsp;
    EXPECT_FALSE(s0 && s1) << "adjacent special columns at " << c;
  }
}

TEST(DeviceTest, CellResourcesByType) {
  const Device dev = Device::vc707();
  EXPECT_EQ(dev.cell_resources(ColumnType::kClb).luts, 400);
  EXPECT_EQ(dev.cell_resources(ColumnType::kBram).bram36, 10);
  EXPECT_EQ(dev.cell_resources(ColumnType::kDsp).dsp, 20);
  EXPECT_TRUE(dev.cell_resources(ColumnType::kIo).is_zero());
}

TEST(PblockTest, GeometryPredicates) {
  const Pblock p{2, 5, 1, 3};
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.width(), 4);
  EXPECT_EQ(p.height(), 3);
  EXPECT_EQ(p.cells(), 12);
  EXPECT_TRUE(p.contains(2, 1));
  EXPECT_TRUE(p.contains(5, 3));
  EXPECT_FALSE(p.contains(6, 2));
  EXPECT_TRUE(p.overlaps({5, 7, 3, 4}));
  EXPECT_FALSE(p.overlaps({6, 7, 1, 3}));
  EXPECT_FALSE(p.overlaps({2, 5, 4, 6}));
}

TEST(PblockTest, ResourcesSumOverCells) {
  const Device dev = Device::vc707();
  // Find a CLB column to build a known-capacity pblock.
  int clb_col = -1;
  for (int c = 0; c < dev.num_columns(); ++c)
    if (dev.column_type(c) == ColumnType::kClb) {
      clb_col = c;
      break;
    }
  ASSERT_GE(clb_col, 0);
  const Pblock p{clb_col, clb_col, 0, 1};  // one column, two region rows
  const ResourceVec r = pblock_resources(dev, p);
  EXPECT_EQ(r.luts, 800);
  EXPECT_EQ(r.bram36, 0);
}

TEST(PblockTest, FullDevicePblockCoversTotals) {
  const Device dev = Device::vc707();
  const Pblock all{0, dev.num_columns() - 1, 0, dev.region_rows() - 1};
  EXPECT_EQ(pblock_resources(dev, all), dev.total());
}

TEST(PblockTest, OutOfBoundsRejected) {
  const Device dev = Device::vc707();
  EXPECT_THROW(pblock_resources(dev, Pblock{0, dev.num_columns(), 0, 0}),
               InvalidArgument);
  EXPECT_THROW(pblock_resources(dev, Pblock{3, 2, 0, 0}), InvalidArgument);
}

TEST(PblockTest, FramesScaleWithHeight) {
  const Device dev = Device::vc707();
  const Pblock one{10, 20, 0, 0};
  const Pblock two{10, 20, 0, 1};
  EXPECT_EQ(pblock_frames(dev, two), 2 * pblock_frames(dev, one));
  EXPECT_GT(pblock_frames(dev, one), 0);
}

}  // namespace
}  // namespace presp::fabric
