// TaskGraph cancellation and exception propagation under the seeded
// schedule fuzzer: 16 seeds each, asserting the completed-task set is
// bit-identical for every seed AND that the instrumented runs stay
// race-clean. Chain topologies make the expected sets exact: when node k
// cancels (or throws), nodes 0..k have run and nodes k+1.. were never
// released, regardless of how the fuzzer perturbed the schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"
#include "lint/diagnostic.hpp"
#include "racecheck/session.hpp"

namespace presp::racecheck {
namespace {

constexpr int kSeeds = 16;
constexpr std::size_t kChain = 12;
constexpr std::size_t kTrigger = 5;  // node that cancels / throws

std::set<std::size_t> done_set(const exec::TaskGraph& graph) {
  std::set<std::size_t> done;
  for (std::size_t id = 0; id < graph.size(); ++id)
    if (graph.report(id).status == exec::TaskStatus::kDone)
      done.insert(id);
  return done;
}

class FuzzSession {
 public:
  explicit FuzzSession(std::uint64_t seed) {
    Session::Options options;
    options.fuzz = true;
    options.seed = seed;
    session_ = std::make_unique<Session>(options);
    installed_ = session_->install();
  }
  ~FuzzSession() { session_->uninstall(); }
  std::vector<lint::Diagnostic> finish() { return session_->finish(); }
  bool installed() const { return installed_; }

 private:
  std::unique_ptr<Session> session_;
  bool installed_ = false;
};

TEST(ScheduleFuzzTest, CancellationSetIsBitIdenticalPerSeed) {
  std::set<std::size_t> expected;
  for (std::size_t i = 0; i <= kTrigger; ++i) expected.insert(i);

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    FuzzSession fuzz(seed);
    ASSERT_TRUE(fuzz.installed());
    exec::ThreadPool pool(3);
    exec::TaskGraph graph;
    exec::TaskId prev = 0;
    for (std::size_t i = 0; i < kChain; ++i) {
      std::vector<exec::TaskId> deps;
      if (i > 0) deps.push_back(prev);
      prev = graph.add(
          "n" + std::to_string(i),
          [&graph, i] {
            if (i == kTrigger) graph.cancel();
          },
          deps);
    }
    graph.run(&pool);

    EXPECT_EQ(done_set(graph), expected) << "seed " << seed;
    for (std::size_t i = kTrigger + 1; i < kChain; ++i)
      EXPECT_EQ(graph.report(i).status, exec::TaskStatus::kCancelled)
          << "seed " << seed << " node " << i;
    const auto diags = fuzz.finish();
    EXPECT_TRUE(diags.empty())
        << "seed " << seed << ":\n" << lint::render_text(diags);
  }
}

TEST(ScheduleFuzzTest, ExceptionSetIsBitIdenticalPerSeed) {
  std::set<std::size_t> expected;
  for (std::size_t i = 0; i < kTrigger; ++i) expected.insert(i);

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    FuzzSession fuzz(seed);
    ASSERT_TRUE(fuzz.installed());
    exec::ThreadPool pool(3);
    exec::TaskGraph graph;
    exec::TaskId prev = 0;
    for (std::size_t i = 0; i < kChain; ++i) {
      std::vector<exec::TaskId> deps;
      if (i > 0) deps.push_back(prev);
      prev = graph.add(
          "n" + std::to_string(i),
          [i] {
            if (i == kTrigger)
              throw std::runtime_error("fuzzed failure at node 5");
          },
          deps);
    }
    EXPECT_THROW(graph.run(&pool), std::runtime_error) << "seed " << seed;

    EXPECT_EQ(done_set(graph), expected) << "seed " << seed;
    EXPECT_EQ(graph.report(kTrigger).status, exec::TaskStatus::kFailed)
        << "seed " << seed;
    for (std::size_t i = kTrigger + 1; i < kChain; ++i)
      EXPECT_EQ(graph.report(i).status, exec::TaskStatus::kCancelled)
          << "seed " << seed << " node " << i;
    const auto diags = fuzz.finish();
    EXPECT_TRUE(diags.empty())
        << "seed " << seed << ":\n" << lint::render_text(diags);
  }
}

// Fork-join through TaskGroup/parallel_for stays race-clean across a
// wide seed sweep: the exec layer's own annotations must never
// self-report (this is the "exec suite race-clean under >= 32 seeds"
// acceptance gate in miniature).
TEST(ScheduleFuzzTest, ExecForkJoinIsRaceCleanAcross32Seeds) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    FuzzSession fuzz(seed);
    ASSERT_TRUE(fuzz.installed());
    exec::ThreadPool pool(3);
    std::vector<long long> partial(8, 0);
    exec::parallel_for(&pool, 0, 128, 16,
                       [&partial](long long lo, long long hi) {
                         for (long long i = lo; i < hi; ++i)
                           partial[static_cast<std::size_t>(lo / 16)] += i;
                       });
    long long total = 0;
    for (long long value : partial) total += value;
    EXPECT_EQ(total, 128LL * 127 / 2) << "seed " << seed;
    const auto diags = fuzz.finish();
    EXPECT_TRUE(diags.empty())
        << "seed " << seed << ":\n" << lint::render_text(diags);
  }
}

}  // namespace
}  // namespace presp::racecheck
