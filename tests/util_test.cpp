#include <gtest/gtest.h>

#include <set>

#include "util/config.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace presp {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------- stats

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(StatsTest, PercentileRejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101), InvalidArgument);
}

TEST(StatsTest, LinearFitRecoversLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 + 2.0 * x);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(StatsTest, MapeZeroForPerfectModel) {
  EXPECT_DOUBLE_EQ(mape({1, 2, 4}, {1, 2, 4}), 0.0);
  EXPECT_NEAR(mape({10, 10}, {11, 9}), 0.1, 1e-12);
}

// -------------------------------------------------------------- table

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"design", "minutes"});
  t.add_row({"soc_1", "89"});
  t.add_row({"soc_22", "152"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| design | minutes |"), std::string::npos);
  EXPECT_NE(out.find("| soc_1  |      89 |"), std::string::npos);
  EXPECT_NE(out.find("| soc_22 |     152 |"), std::string::npos);
}

TEST(TableTest, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::num(89.0, 0), "89");
}

// ------------------------------------------------------------- string

TEST(StringTest, SplitAndJoinRoundTrip) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
}

TEST(StringTest, TrimRemovesEdges) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
}

TEST(StringTest, ParseIntRejectsGarbage) {
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_THROW(parse_int("4x2"), ConfigError);
  EXPECT_THROW(parse_int(""), ConfigError);
}

TEST(StringTest, ParseDoubleParsesAndRejects) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_THROW(parse_double("two"), ConfigError);
}

// ------------------------------------------------------------- config

TEST(ConfigTest, ParsesSectionsAndTypes) {
  const auto cfg = Config::parse(
      "# comment\n"
      "top = 1\n"
      "[soc]\n"
      "rows = 3\n"
      "clock_mhz = 78.0\n"
      "enable = yes\n");
  EXPECT_EQ(cfg.get_int("", "top"), 1);
  EXPECT_EQ(cfg.get_int("soc", "rows"), 3);
  EXPECT_DOUBLE_EQ(cfg.get_double("soc", "clock_mhz"), 78.0);
  EXPECT_TRUE(cfg.get_bool_or("soc", "enable", false));
}

TEST(ConfigTest, MissingKeyThrowsAndFallbacksWork) {
  const auto cfg = Config::parse("[a]\nx = 1\n");
  EXPECT_THROW(cfg.get("a", "y"), ConfigError);
  EXPECT_EQ(cfg.get_or("a", "y", "def"), "def");
  EXPECT_EQ(cfg.get_int_or("a", "y", 9), 9);
}

TEST(ConfigTest, DuplicateKeyRejected) {
  EXPECT_THROW(Config::parse("[a]\nx = 1\nx = 2\n"), ConfigError);
}

TEST(ConfigTest, MalformedLinesRejected) {
  EXPECT_THROW(Config::parse("[unterminated\n"), ConfigError);
  EXPECT_THROW(Config::parse("novalue\n"), ConfigError);
  EXPECT_THROW(Config::parse("= bare\n"), ConfigError);
}

TEST(ConfigTest, RoundTripThroughToString) {
  const auto cfg = Config::parse("[s]\na = 1\nb = two\n");
  const auto again = Config::parse(cfg.to_string());
  EXPECT_EQ(again.get("s", "a"), "1");
  EXPECT_EQ(again.get("s", "b"), "two");
}

TEST(ConfigTest, KeysPreserveOrder) {
  const auto cfg = Config::parse("[s]\nz = 1\na = 2\nm = 3\n");
  EXPECT_EQ(cfg.keys("s"), (std::vector<std::string>{"z", "a", "m"}));
}

}  // namespace
}  // namespace presp
