#include <gtest/gtest.h>

#include "floorplan/floorplanner.hpp"
#include "hls/library.hpp"
#include "netlist/rtl.hpp"
#include "pnr/engine.hpp"
#include "synth/synthesis.hpp"
#include "util/error.hpp"

namespace presp::pnr {
namespace {

// Small synthetic netlist helpers ------------------------------------------

netlist::Netlist chain_netlist(int cells, int luts_per_cell, int width) {
  netlist::Netlist nl("chain");
  for (int i = 0; i < cells; ++i)
    nl.add_cell({"c" + std::to_string(i),
                 netlist::CellKind::kLogic,
                 {luts_per_cell, luts_per_cell, 0, 0},
                 ""});
  for (int i = 0; i + 1 < cells; ++i)
    nl.add_net({"n" + std::to_string(i), static_cast<netlist::CellId>(i),
                {static_cast<netlist::CellId>(i + 1)}, width});
  return nl;
}

class PnrFixture : public ::testing::Test {
 protected:
  PnrFixture() : device_(fabric::Device::vc707()), engine_(device_, fast()) {}

  static PnrOptions fast() {
    PnrOptions o;
    o.placer.temperature_steps = 10;
    o.placer.moves_per_cell = 2;
    return o;
  }

  fabric::Device device_;
  PnrEngine engine_;
};

TEST_F(PnrFixture, PlacerKeepsCellsInAllowedSites) {
  const auto nl = chain_netlist(40, 150, 32);
  PlacementConstraints constraints;
  constraints.region = fabric::Pblock{2, 40, 0, 2};
  const auto result = Placer(device_, fast().placer).place(nl, constraints);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const GridLoc& loc = result.placement.at(c);
    EXPECT_TRUE(constraints.region->contains(loc.col, loc.row));
    EXPECT_TRUE(
        fabric::Device::reconfigurable_column(device_.column_type(loc.col)));
  }
}

TEST_F(PnrFixture, PlacerRespectsKeepouts) {
  const auto nl = chain_netlist(60, 200, 32);
  PlacementConstraints constraints;
  constraints.keepouts.push_back(fabric::Pblock{0, 70, 0, 3});
  const auto result = Placer(device_, fast().placer).place(nl, constraints);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const GridLoc& loc = result.placement.at(c);
    EXPECT_FALSE(constraints.keepouts[0].contains(loc.col, loc.row));
  }
}

TEST_F(PnrFixture, PlacerHonorsFixedCells) {
  auto nl = chain_netlist(10, 100, 16);
  PlacementConstraints constraints;
  constraints.fixed.emplace_back(0, GridLoc{5, 3});
  const auto result = Placer(device_, fast().placer).place(nl, constraints);
  EXPECT_EQ(result.placement.at(0), (GridLoc{5, 3}));
}

TEST_F(PnrFixture, PlacementIsLegalForModestDesigns) {
  const auto nl = chain_netlist(100, 180, 32);
  const auto result =
      Placer(device_, fast().placer).place(nl, PlacementConstraints{});
  EXPECT_EQ(result.overflow, 0.0);
}

TEST_F(PnrFixture, AnnealingImprovesWirelength) {
  // Scrambled connectivity: cell i talks to cell (i*53+17) mod n, so the
  // id-order constructive seed is far from optimal and annealing must
  // recover locality.
  netlist::Netlist nl("scrambled");
  const int n = 120;
  for (int i = 0; i < n; ++i)
    nl.add_cell({"c" + std::to_string(i),
                 netlist::CellKind::kLogic,
                 {150, 150, 0, 0},
                 ""});
  for (int i = 0; i < n; ++i) {
    const int j = (i * 53 + 17) % n;
    if (j == i) continue;
    nl.add_net({"n" + std::to_string(i), static_cast<netlist::CellId>(i),
                {static_cast<netlist::CellId>(j)}, 64});
  }
  PlacerOptions none;
  none.temperature_steps = 0;
  PlacerOptions anneal = fast().placer;
  anneal.temperature_steps = 30;
  anneal.moves_per_cell = 6;
  const auto before = Placer(device_, none).place(nl, {});
  const auto after = Placer(device_, anneal).place(nl, {});
  EXPECT_LT(after.final_hpwl, before.final_hpwl);
  EXPECT_EQ(after.overflow, 0.0);
}

TEST_F(PnrFixture, PlacerDeterministicForSeed) {
  const auto nl = chain_netlist(50, 150, 32);
  const auto a = Placer(device_, fast().placer).place(nl, {});
  const auto b = Placer(device_, fast().placer).place(nl, {});
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c)
    EXPECT_EQ(a.placement.at(c), b.placement.at(c));
}

TEST_F(PnrFixture, InfeasibleRegionThrows) {
  const auto nl = chain_netlist(100, 200, 32);  // 20k LUTs
  PlacementConstraints constraints;
  constraints.region = fabric::Pblock{2, 4, 0, 0};  // tiny region
  EXPECT_THROW(Placer(device_, fast().placer).place(nl, constraints),
               InfeasibleDesign);
}

TEST_F(PnrFixture, RouterConnectsAllNetsWithoutOverflowWhenSparse) {
  const auto nl = chain_netlist(30, 100, 16);
  const auto placed = Placer(device_, fast().placer).place(nl, {});
  RoutingState state = engine_.make_state();
  const auto routed =
      Router(device_).route(nl, placed.placement, state);
  EXPECT_TRUE(routed.success);
  EXPECT_GT(routed.wirelength, 0);
  EXPECT_GT(routed.achieved_fmax_mhz, 78.0);
}

TEST_F(PnrFixture, RouterAccumulatesUsageIntoState) {
  const auto nl = chain_netlist(30, 100, 16);
  const auto placed = Placer(device_, fast().placer).place(nl, {});
  RoutingState state = engine_.make_state();
  EXPECT_EQ(state.total_usage(), 0);
  Router(device_).route(nl, placed.placement, state);
  EXPECT_GT(state.total_usage(), 0);
}

TEST_F(PnrFixture, RoutingStateEdgeIndexingDistinct) {
  RoutingState state(device_);
  const auto h0 = state.h_edge(0, 0);
  const auto h1 = state.h_edge(1, 0);
  const auto v0 = state.v_edge(0, 0);
  EXPECT_NE(h0, h1);
  EXPECT_GE(v0, static_cast<std::size_t>((device_.num_columns() - 1) *
                                         device_.region_rows()));
}

// Full SoC static + partition in-context run.
class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : device_(fabric::Device::vc707()),
        lib_(netlist::ComponentLibrary::with_builtins()) {
    hls::register_characterization_kernels(lib_);
    const char* text = R"(
[soc]
name = pnr_soc
device = vc707
rows = 2
cols = 2

[tiles]
r0c0 = cpu
r0c1 = mem
r1c0 = aux
r1c1 = reconf:sort,mac
)";
    rtl_ = std::make_unique<netlist::SocRtl>(
        netlist::elaborate(netlist::SocConfig::parse(text), lib_));
  }

  fabric::Device device_;
  netlist::ComponentLibrary lib_;
  std::unique_ptr<netlist::SocRtl> rtl_;
};

TEST_F(EngineFixture, StaticThenPartitionInContext) {
  synth::Synthesizer synth(lib_, {});
  const auto static_ckpt = synth.synthesize_static(*rtl_);

  floorplan::Floorplanner planner(device_);
  const auto plan = planner.plan(
      {{"RT_1", rtl_->partition_demand(lib_, 0)}},
      rtl_->static_resources(lib_));

  PnrOptions fastopt;
  fastopt.placer.temperature_steps = 8;
  fastopt.placer.moves_per_cell = 2;
  PnrEngine engine(device_, fastopt);
  RoutingState state = engine.make_state();
  const auto static_run = engine.run_static(
      static_ckpt, {{"RT_1", plan.pblocks[0]}}, state);
  EXPECT_TRUE(static_run.success())
      << "place overflow=" << static_run.place.overflow
      << " route overflow=" << static_run.route.overflow;

  // Static cells must avoid the pblock.
  for (netlist::CellId c = 0; c < static_ckpt.netlist.num_cells(); ++c) {
    if (static_ckpt.netlist.cell(c).kind != netlist::CellKind::kLogic)
      continue;
    const GridLoc& loc = static_run.place.placement.at(c);
    EXPECT_FALSE(plan.pblocks[0].contains(loc.col, loc.row));
  }

  const auto ooc = synth.synthesize_module_ooc("sort");
  const auto rp_run = engine.run_partition(ooc, plan.pblocks[0], state);
  EXPECT_TRUE(rp_run.success());
  for (netlist::CellId c = 0; c < ooc.netlist.num_cells(); ++c) {
    if (ooc.netlist.cell(c).kind != netlist::CellKind::kLogic) continue;
    const GridLoc& loc = rp_run.place.placement.at(c);
    EXPECT_TRUE(plan.pblocks[0].contains(loc.col, loc.row));
  }
}

TEST_F(EngineFixture, PartitionRunRequiresOocCheckpoint) {
  synth::Synthesizer synth(lib_, {});
  const auto static_ckpt = synth.synthesize_static(*rtl_);
  PnrEngine engine(device_);
  RoutingState state = engine.make_state();
  EXPECT_THROW(
      engine.run_partition(static_ckpt, fabric::Pblock{2, 30, 0, 0}, state),
      InvalidArgument);
}

TEST_F(EngineFixture, FlatRunHandlesMonolithicCheckpoint) {
  synth::Synthesizer synth(lib_, {});
  const auto mono = synth.synthesize_monolithic(*rtl_);
  PnrOptions fastopt;
  fastopt.placer.temperature_steps = 6;
  fastopt.placer.moves_per_cell = 1;
  PnrEngine engine(device_, fastopt);
  const auto run = engine.run_flat(mono);
  EXPECT_EQ(run.place.overflow, 0.0);
}

}  // namespace
}  // namespace presp::pnr
