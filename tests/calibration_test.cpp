// Calibration harness tests: recovering runtime-model constants from
// measured compilations (the paper's characterization methodology).
#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/reference_designs.hpp"
#include "core/flow.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace presp::core {
namespace {

/// Synthetic observation set generated from known ground-truth constants:
/// serial and parallel schedules over a spread of design sizes.
std::vector<Observation> synthetic_observations(
    const fabric::Device& device, const RuntimeModelConstants& truth,
    double noise, std::uint64_t seed) {
  presp::Rng rng(seed);
  std::vector<Observation> observations;
  const long long statics[] = {40'000, 80'000, 95'000};
  const std::vector<std::vector<long long>> designs = {
      {2'800, 2'800, 2'800, 2'800},
      {37'000, 31'000, 34'000, 21'000},
      {37'000, 31'000, 21'000},
  };
  for (const long long s : statics) {
    for (const auto& mods : designs) {
      // Serial.
      Observation serial;
      serial.static_luts = s;
      serial.static_region_luts = 260'000 - s;
      serial.groups = {mods};
      serial.serial = true;
      serial.measured_minutes =
          predict_observation(device, truth, serial) *
          (1.0 + noise * rng.next_gaussian());
      observations.push_back(serial);
      // Fully parallel.
      Observation par;
      par.static_luts = s;
      par.static_region_luts = 260'000 - s;
      for (const long long m : mods) par.groups.push_back({m});
      par.measured_minutes = predict_observation(device, truth, par) *
                             (1.0 + noise * rng.next_gaussian());
      observations.push_back(par);
    }
  }
  return observations;
}

TEST(CalibrationTest, RecoversConstantsFromNoiselessSamples) {
  const auto device = fabric::Device::vc707();
  RuntimeModelConstants truth;
  truth.ts1 = 0.8;   // perturbed away from the defaults
  truth.r1 = 0.4;
  truth.m1 = 0.3;
  const auto observations =
      synthetic_observations(device, truth, 0.0, 5);

  RuntimeModelConstants seed;  // defaults as the starting point
  const auto result = fit_constants(device, observations, seed);
  EXPECT_LT(result.final_mape, 0.02);
  EXPECT_LT(result.final_mape, result.initial_mape);
}

TEST(CalibrationTest, ToleratesMeasurementNoise) {
  const auto device = fabric::Device::vc707();
  RuntimeModelConstants truth;
  truth.ts1 = 0.7;
  truth.m1 = 0.35;
  const auto observations =
      synthetic_observations(device, truth, 0.05, 9);
  const auto result = fit_constants(device, observations);
  // With 5% multiplicative noise the fit should land near the noise floor.
  EXPECT_LT(result.final_mape, 0.08);
}

TEST(CalibrationTest, FitNeverWorseThanSeed) {
  const auto device = fabric::Device::vc707();
  RuntimeModelConstants truth;
  truth.r1 = 1.1;
  const auto observations =
      synthetic_observations(device, truth, 0.02, 11);
  const auto result = fit_constants(device, observations);
  EXPECT_LE(result.final_mape, result.initial_mape + 1e-12);
  EXPECT_GT(result.evaluations, 0);
}

TEST(CalibrationTest, RequiresEnoughObservations) {
  const auto device = fabric::Device::vc707();
  std::vector<Observation> few(3);
  EXPECT_THROW(fit_constants(device, few), InvalidArgument);
}

TEST(CalibrationTest, RejectsBadObservations) {
  const auto device = fabric::Device::vc707();
  Observation bad;
  bad.static_luts = 50'000;
  bad.static_region_luts = 200'000;
  bad.groups = {{10'000}};
  bad.serial = true;
  bad.measured_minutes = 0.0;  // invalid
  std::vector<Observation> observations(5, bad);
  EXPECT_THROW(calibration_error(device, {}, observations),
               InvalidArgument);
}

TEST(CalibrationTest, SerialObservationNeedsSingleGroup) {
  const auto device = fabric::Device::vc707();
  Observation obs;
  obs.static_luts = 50'000;
  obs.static_region_luts = 200'000;
  obs.groups = {{10'000}, {12'000}};
  obs.serial = true;
  obs.measured_minutes = 100.0;
  EXPECT_THROW(predict_observation(device, {}, obs), InvalidArgument);
}

TEST(CalibrationTest, RefitOnPaperDataDoesNotRegressWinners) {
  // Fit against the paper's own Table III rows (as Observation records)
  // and confirm the refit constants keep the published strategy winners.
  const auto device = fabric::Device::vc707();
  const auto lib = characterization_library();

  struct Sample {
    int soc;
    int tau;
    double minutes;
  };
  const Sample samples[] = {
      {1, 1, 89},  {1, 4, 97},  {1, 16, 93}, {2, 1, 181}, {2, 4, 152},
      {3, 1, 158}, {3, 2, 134}, {4, 1, 163}, {4, 5, 94},
  };

  std::vector<Observation> observations;
  for (const Sample& sample : samples) {
    const auto rtl =
        netlist::elaborate(characterization_soc(sample.soc), lib);
    const auto metrics = compute_metrics(rtl, lib, device);
    std::vector<long long> mods;
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        mods.push_back(netlist::SocRtl::module_resources(lib, m).luts);
    Observation obs;
    obs.static_luts = metrics.static_luts;
    obs.static_region_luts =
        device.total().luts -
        static_cast<long long>(1.3 * static_cast<double>(metrics.reconf_luts));
    if (sample.tau == 1) {
      obs.serial = true;
      obs.groups = {mods};
    } else {
      for (const auto& g : balanced_groups(mods, sample.tau)) {
        std::vector<long long> group;
        for (const auto i : g) group.push_back(mods[i]);
        obs.groups.push_back(group);
      }
    }
    obs.measured_minutes = sample.minutes;
    observations.push_back(std::move(obs));
  }

  CalibrationOptions opt;
  opt.sweeps = 25;
  const auto result = fit_constants(device, observations, {}, opt);
  EXPECT_LT(result.final_mape, 0.12);

  // Winners with the refit constants.
  const RuntimeModel model(device, result.constants);
  const auto rtl1 = netlist::elaborate(characterization_soc(1), lib);
  std::vector<long long> macs;
  for (const auto& p : rtl1.partitions())
    macs.push_back(
        netlist::SocRtl::module_resources(lib, p.modules.front()).luts);
  const auto m1 = compute_metrics(rtl1, lib, device);
  const long long region1 =
      device.total().luts -
      static_cast<long long>(1.3 * static_cast<double>(m1.reconf_luts));
  const double serial =
      model.predict_serial(m1.static_luts, region1, macs);
  std::vector<std::vector<long long>> full_groups;
  for (const long long m : macs) full_groups.push_back({m});
  const double fully =
      model.predict_parallel(m1.static_luts, region1, full_groups);
  EXPECT_LT(serial, fully);  // Class 1.1's winner survives the refit
}

}  // namespace
}  // namespace presp::core
