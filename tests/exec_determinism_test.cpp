// Serial/parallel determinism: the execution engine's core promise is
// that pool width is a pure performance knob. The same flow run and the
// same WAMI pipeline must produce bit-identical results at 1, 2 and 8
// threads (fixed chunk boundaries + chunk-ordered reductions + per-task
// output slots). This binary is also the one tier 1 re-runs under
// ThreadSanitizer (PRESP_SANITIZE=thread) to validate the pool itself.
#include <gtest/gtest.h>

#include <vector>

#include "core/flow.hpp"
#include "util/log.hpp"
#include "wami/app.hpp"
#include "wami/frame_generator.hpp"
#include "wami/pipeline.hpp"

namespace presp {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

// ---------------------------------------------------------------- flow

core::FlowResult run_flow(char soc, int exec_threads) {
  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.exec_threads = exec_threads;
  // Cheap placer settings: determinism does not depend on effort.
  opt.pnr.placer.temperature_steps = 4;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 30;
  const core::PrEspFlow flow(device, lib, opt);
  return flow.run(wami::table4_soc(soc));
}

void expect_flow_results_identical(const core::FlowResult& a,
                                   const core::FlowResult& b) {
  EXPECT_EQ(a.design, b.design);
  EXPECT_EQ(a.decision.strategy, b.decision.strategy);
  EXPECT_EQ(a.decision.tau, b.decision.tau);
  EXPECT_EQ(a.decision.groups, b.decision.groups);
  EXPECT_EQ(a.physical_ok, b.physical_ok);
  EXPECT_EQ(a.timing_met, b.timing_met);
  EXPECT_EQ(a.full_bitstream_bytes, b.full_bitstream_bytes);
  EXPECT_EQ(a.achieved_fmax_mhz, b.achieved_fmax_mhz);  // bit-exact
  EXPECT_EQ(a.synth_makespan_minutes, b.synth_makespan_minutes);
  EXPECT_EQ(a.pnr_total_minutes, b.pnr_total_minutes);
  ASSERT_EQ(a.modules.size(), b.modules.size());
  for (std::size_t i = 0; i < a.modules.size(); ++i) {
    const auto& ma = a.modules[i];
    const auto& mb = b.modules[i];
    EXPECT_EQ(ma.partition, mb.partition) << i;
    EXPECT_EQ(ma.module, mb.module) << i;
    EXPECT_EQ(ma.routed, mb.routed) << ma.module;
    EXPECT_EQ(ma.utilization.luts, mb.utilization.luts) << ma.module;
    EXPECT_EQ(ma.pbs_raw_bytes, mb.pbs_raw_bytes) << ma.module;
    EXPECT_EQ(ma.pbs_compressed_bytes, mb.pbs_compressed_bytes)
        << ma.module;
  }
}

TEST(FlowDeterminism, IdenticalResultsAtOneTwoAndEightThreads) {
  // SoC_A selects the fully-parallel strategy: the P&R graph has real
  // fan-out, so this exercises concurrent partition runs, not just
  // concurrent synthesis.
  const auto serial = run_flow('A', 1);
  const auto two = run_flow('A', 2);
  const auto eight = run_flow('A', 8);
  ASSERT_TRUE(serial.physical_ok);
  expect_flow_results_identical(serial, two);
  expect_flow_results_identical(serial, eight);
  EXPECT_EQ(two.exec.threads, 2);
  EXPECT_EQ(eight.exec.threads, 8);
  // Graph bookkeeping: static synth + per-member synth + static P&R +
  // per-member P&R.
  EXPECT_EQ(eight.exec.tasks, 2 * serial.modules.size() + 2);
  EXPECT_GT(eight.exec.wall_seconds, 0.0);
  EXPECT_GE(eight.exec.model_speedup, 1.0);
}

TEST(FlowDeterminism, SerialStrategyChainStaysSerialButIdentical) {
  // SoC_B selects the serial strategy: the P&R graph is one chain, so the
  // pool adds no parallelism — results must still match exactly.
  const auto serial = run_flow('B', 1);
  const auto pooled = run_flow('B', 4);
  ASSERT_TRUE(serial.physical_ok);
  expect_flow_results_identical(serial, pooled);
}

// ---------------------------------------------------------------- wami

std::vector<wami::ImageU16> make_frames(int count) {
  wami::SceneOptions scene;
  scene.width = 96;
  scene.height = 96;
  wami::FrameGenerator gen(scene);
  std::vector<wami::ImageU16> frames;
  for (int i = 0; i < count; ++i) frames.push_back(gen.next_frame());
  return frames;
}

std::vector<wami::PipelineFrameResult> run_pipeline(
    const std::vector<wami::ImageU16>& frames, int threads, bool batch) {
  wami::PipelineOptions options;
  options.lk_iterations = 3;
  options.threads = threads;
  wami::WamiPipeline pipeline(options);
  if (batch)
    return pipeline.process_batch(frames);
  std::vector<wami::PipelineFrameResult> results;
  for (const auto& frame : frames) results.push_back(pipeline.process(frame));
  return results;
}

void expect_wami_results_identical(
    const std::vector<wami::PipelineFrameResult>& a,
    const std::vector<wami::PipelineFrameResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].params, b[i].params) << "frame " << i;          // doubles
    EXPECT_EQ(a[i].residual, b[i].residual) << "frame " << i;      // double
    EXPECT_EQ(a[i].stabilized, b[i].stabilized) << "frame " << i;  // floats
    EXPECT_EQ(a[i].change_mask, b[i].change_mask) << "frame " << i;
    EXPECT_EQ(a[i].changed_pixels, b[i].changed_pixels) << "frame " << i;
  }
}

TEST(WamiDeterminism, IdenticalChecksumsAtOneTwoAndEightThreads) {
  const auto frames = make_frames(4);
  const auto serial = run_pipeline(frames, 1, /*batch=*/false);
  expect_wami_results_identical(serial, run_pipeline(frames, 2, false));
  expect_wami_results_identical(serial, run_pipeline(frames, 8, false));
}

TEST(WamiDeterminism, StagePipelinedBatchMatchesPerFrameCalls) {
  const auto frames = make_frames(4);
  const auto per_frame = run_pipeline(frames, 1, /*batch=*/false);
  expect_wami_results_identical(per_frame, run_pipeline(frames, 1, true));
  expect_wami_results_identical(per_frame, run_pipeline(frames, 4, true));
}

TEST(WamiDeterminism, FusedLumaMatchesComposedDebayerGrayscale) {
  const auto frames = make_frames(2);
  for (const auto& frame : frames) {
    const wami::ImageF composed = grayscale(debayer(frame));
    EXPECT_EQ(composed, wami::luma_from_bayer(frame));
  }
}

}  // namespace
}  // namespace presp
