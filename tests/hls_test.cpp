#include <gtest/gtest.h>

#include "hls/estimator.hpp"
#include "hls/library.hpp"
#include "util/error.hpp"

namespace presp::hls {
namespace {

TEST(EstimatorTest, Deterministic) {
  const auto a = estimate(conv2d_kernel());
  const auto b = estimate(conv2d_kernel());
  EXPECT_EQ(a.resources, b.resources);
  EXPECT_EQ(a.latency.items_per_beat, b.latency.items_per_beat);
}

TEST(EstimatorTest, ResourcesScaleWithPes) {
  KernelSpec spec = gemm_kernel();
  const auto small = estimate(spec);
  spec.num_pes *= 2;
  const auto big = estimate(spec);
  EXPECT_GT(big.resources.luts, small.resources.luts);
  EXPECT_GT(big.resources.dsp, small.resources.dsp);
}

TEST(EstimatorTest, ScratchpadMapsToBram) {
  KernelSpec spec = mac_kernel();
  spec.scratchpad_bytes = 0;
  EXPECT_EQ(estimate(spec).resources.bram36, 0);
  spec.scratchpad_bytes = 4096;
  EXPECT_EQ(estimate(spec).resources.bram36, 1);
  spec.scratchpad_bytes = 4097;
  EXPECT_EQ(estimate(spec).resources.bram36, 2);
}

TEST(EstimatorTest, RejectsInvalidSpecs) {
  KernelSpec spec = mac_kernel();
  spec.num_pes = 0;
  EXPECT_THROW(estimate(spec), InvalidArgument);
  spec = mac_kernel();
  spec.name.clear();
  EXPECT_THROW(estimate(spec), InvalidArgument);
  spec = mac_kernel();
  spec.pipeline_ii = 0;
  EXPECT_THROW(estimate(spec), InvalidArgument);
}

TEST(LatencyModelTest, ComputeCyclesPipelined) {
  LatencyModel m;
  m.startup_cycles = 100;
  m.items_per_beat = 4;
  m.ii = 1;
  m.drain_cycles = 10;
  EXPECT_EQ(m.compute_cycles(0), 100);
  EXPECT_EQ(m.compute_cycles(1), 111);
  EXPECT_EQ(m.compute_cycles(4), 111);
  EXPECT_EQ(m.compute_cycles(5), 112);
  EXPECT_EQ(m.compute_cycles(400), 210);
}

TEST(LatencyModelTest, RejectsNegativeItems) {
  LatencyModel m;
  EXPECT_THROW(m.compute_cycles(-1), InvalidArgument);
}

// Calibration against the paper's Table II (LUT counts on VC707).
struct Table2Case {
  const char* name;
  double paper_luts;
};

class Table2Fixture : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Fixture, LutsWithinThreePercentOfPaper) {
  const auto& param = GetParam();
  for (const KernelSpec& spec : characterization_kernels()) {
    if (spec.name == param.name) {
      const auto kernel = estimate(spec);
      EXPECT_NEAR(static_cast<double>(kernel.resources.luts),
                  param.paper_luts, param.paper_luts * 0.03)
          << spec.name;
      return;
    }
  }
  FAIL() << "kernel not found: " << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2Fixture,
    ::testing::Values(Table2Case{"mac", 2'450},
                      Table2Case{"conv2d", 36'741},
                      Table2Case{"gemm", 30'617},
                      Table2Case{"fft", 33'690},
                      Table2Case{"sort", 20'468}),
    [](const ::testing::TestParamInfo<Table2Case>& info) {
      return info.param.name;
    });

TEST(LibraryTest, RegistersAllFiveKernels) {
  auto lib = netlist::ComponentLibrary::with_builtins();
  register_characterization_kernels(lib);
  for (const char* name : {"mac", "conv2d", "gemm", "fft", "sort"}) {
    ASSERT_TRUE(lib.has(name)) << name;
    EXPECT_TRUE(lib.get(name).reconfigurable);
  }
}

TEST(LibraryTest, KernelsHavePositiveThroughput) {
  for (const KernelSpec& spec : characterization_kernels()) {
    const auto kernel = estimate(spec);
    EXPECT_GT(kernel.latency.items_per_beat, 0) << spec.name;
    EXPECT_GT(kernel.latency.compute_cycles(1000), 0) << spec.name;
  }
}

}  // namespace
}  // namespace presp::hls
