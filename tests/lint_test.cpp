// Tests for the cross-layer static design-rule checker: the diagnostics
// engine and reporters, one passing + one failing fixture per rule, the
// fuzz-style negative paths of the configuration front-end, and clean
// runs over the shipped example configurations and the paper's Table VI
// SoCs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/reference_designs.hpp"
#include "lint/context.hpp"
#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"
#include "wami/accelerators.hpp"

namespace presp {
namespace {

using lint::Diagnostic;
using lint::DiagnosticEngine;
using lint::LintContext;
using lint::RuleRegistry;
using lint::Severity;

// A structurally clean 2x3 SoC with two reconfigurable tiles hosting
// characterization kernels.
const char* kCleanSoc = R"([soc]
name = clean
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:conv2d,gemm
r1c1 = reconf:fft,sort
r1c2 = empty
)";

std::vector<Diagnostic> run_lint(const std::string& text) {
  return lint::lint_config_text(text);
}

std::vector<Diagnostic> run_context(LintContext& context) {
  DiagnosticEngine engine;
  RuleRegistry::builtin().run(context, engine);
  return engine.diagnostics();
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags)
    if (d.rule == rule) return true;
  return false;
}

bool has_error(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::kError) return true;
  return false;
}

// ------------------------------------------------- diagnostics engine

TEST(DiagnosticEngineTest, DeduplicatesExactDuplicates) {
  DiagnosticEngine engine;
  const Diagnostic d{"x.y", Severity::kError, {"f", 3, "o"}, "msg", "hint"};
  EXPECT_TRUE(engine.add(d));
  EXPECT_FALSE(engine.add(d));
  EXPECT_EQ(engine.size(), 1u);
  EXPECT_TRUE(engine.has_rule("x.y"));
  EXPECT_FALSE(engine.has_rule("x.z"));
}

TEST(DiagnosticEngineTest, CountsBySeverityAndSorts) {
  DiagnosticEngine engine;
  engine.add({"b.rule", Severity::kWarning, {"b", 2, ""}, "w", ""});
  engine.add({"a.rule", Severity::kError, {"a", 9, ""}, "e", ""});
  engine.add({"c.rule", Severity::kInfo, {"a", 1, ""}, "i", ""});
  EXPECT_EQ(engine.count(Severity::kError), 1u);
  EXPECT_EQ(engine.count(Severity::kWarning), 1u);
  EXPECT_EQ(engine.count(Severity::kInfo), 1u);
  EXPECT_TRUE(engine.has_errors());
  engine.sort();
  EXPECT_EQ(engine.diagnostics()[0].rule, "c.rule");
  EXPECT_EQ(engine.diagnostics()[1].rule, "a.rule");
  EXPECT_EQ(engine.diagnostics()[2].rule, "b.rule");
}

TEST(ReporterTest, TextReportNamesRuleAndHint) {
  const std::vector<Diagnostic> diags{
      {"noc.deadlock", Severity::kError, {"a.cfg", 7, "noc"}, "cycle",
       "use XY routing"}};
  const std::string text = lint::render_text(diags);
  EXPECT_NE(text.find("a.cfg:7: error: [noc.deadlock] cycle"),
            std::string::npos);
  EXPECT_NE(text.find("hint: use XY routing"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s)"), std::string::npos);
}

TEST(ReporterTest, JsonRoundTrips) {
  const std::vector<Diagnostic> diags{
      {"config.parse", Severity::kError, {"x \"y\"\n.cfg", 12, "tiles.r0c0"},
       "message with \"quotes\", a\ttab and a \x01 control byte", "fix\nit"},
      {"runtime.retry-budget", Severity::kWarning, {"", 0, ""}, "plain", ""},
      {"exec.unreachable-task", Severity::kInfo, {"f", 1, "tasks.a"}, "m",
       "h"}};
  const std::string json = lint::render_json(diags);
  EXPECT_EQ(lint::parse_json(json), diags);
}

TEST(ReporterTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(lint::parse_json("not json"), ConfigError);
  EXPECT_THROW(lint::parse_json("{\"diagnostics\": [{]}"), ConfigError);
  EXPECT_THROW(lint::parse_json(""), ConfigError);
}

// ------------------------------------------------------------ catalog

TEST(RuleRegistryTest, CatalogCoversEveryLayer) {
  const RuleRegistry& registry = RuleRegistry::builtin();
  EXPECT_GE(registry.rules().size(), 12u);
  EXPECT_GE(registry.num_checks(), 12u);
  std::set<std::string> layers;
  std::set<std::string> ids;
  for (const auto& info : registry.rules()) {
    layers.insert(info.layer);
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
    EXPECT_FALSE(info.description.empty());
  }
  for (const char* layer : {"config", "netlist", "floorplan", "noc",
                            "runtime", "fleet", "exec", "pnr"})
    EXPECT_TRUE(layers.count(layer)) << layer;
  ASSERT_NE(registry.find("noc.deadlock"), nullptr);
  EXPECT_EQ(registry.find("noc.deadlock")->layer, "noc");
  EXPECT_EQ(registry.find("definitely.not.a.rule"), nullptr);
}

// --------------------------------------------------- config negatives
// Fuzz-style: malformed input must produce diagnostics, never crash.

TEST(ConfigLintTest, CleanConfigHasNoFindings) {
  EXPECT_TRUE(run_lint(kCleanSoc).empty());
}

TEST(ConfigLintTest, GarbageTextIsAParseDiagnostic) {
  const auto diags = run_lint("[soc\nrows = ");
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(has_rule(diags, "config.parse"));
  EXPECT_TRUE(has_error(diags));
  EXPECT_EQ(diags.front().loc.line, 1);  // "line 1" extracted
}

TEST(ConfigLintTest, TruncatedConfigNeverCrashes) {
  std::ifstream in(std::string(PRESP_SOURCE_DIR) +
                   "/examples/configs/custom_runtime.esp_config");
  ASSERT_TRUE(in);
  std::ostringstream text;
  text << in.rdbuf();
  const std::string full = text.str();
  for (std::size_t len = 0; len < full.size(); len += 7) {
    const auto diags = run_lint(full.substr(0, len));  // must not throw
    if (len == 0) {
      EXPECT_TRUE(has_error(diags));
    }
  }
}

TEST(ConfigLintTest, DuplicateKeysAreAParseDiagnostic) {
  const auto diags =
      run_lint("[soc]\nrows = 2\nrows = 3\ncols = 2\n");
  EXPECT_TRUE(has_rule(diags, "config.parse"));
  EXPECT_TRUE(has_error(diags));
}

TEST(ConfigLintTest, OutOfRangeTileCoordinates) {
  const auto diags = run_lint(
      "[soc]\nrows = 2\ncols = 2\n[tiles]\nr0c0 = cpu\nr0c1 = mem\n"
      "r1c0 = aux\nr9c9 = reconf:conv2d\n");
  EXPECT_TRUE(has_rule(diags, "config.parse"));
}

TEST(ConfigLintTest, HugeGridDimensionsAreRejectedNotTruncated) {
  const auto diags =
      run_lint("[soc]\nrows = 99999999999\ncols = 3\n[tiles]\nr0c0 = cpu\n");
  EXPECT_TRUE(has_rule(diags, "config.parse"));
  EXPECT_TRUE(has_error(diags));
}

TEST(ConfigLintTest, NonPositiveClockIsRejected) {
  const auto diags = run_lint(
      "[soc]\nrows = 1\ncols = 3\nclock_mhz = -78\n[tiles]\nr0c0 = cpu\n"
      "r0c1 = mem\nr0c2 = aux\n");
  EXPECT_TRUE(has_rule(diags, "config.parse"));
}

TEST(ConfigLintTest, UnknownDeviceHasItsOwnRule) {
  std::string text(kCleanSoc);
  text.replace(text.find("vc707"), 5, "zynq7");
  const auto diags = run_lint(text);
  EXPECT_TRUE(has_rule(diags, "config.unknown-device"));
  EXPECT_FALSE(has_rule(diags, "config.parse"));
}

// ------------------------------------------------------ netlist rules

TEST(NetlistLintTest, UnknownAcceleratorNamesTheTile) {
  std::string text(kCleanSoc);
  text.replace(text.find("fft,sort"), 8, "no_such_kernel");
  const auto diags = run_lint(text);
  ASSERT_TRUE(has_rule(diags, "netlist.unknown-accelerator"));
  for (const Diagnostic& d : diags)
    if (d.rule == "netlist.unknown-accelerator") {
      EXPECT_EQ(d.loc.object, "tiles.r1c1");
      EXPECT_GT(d.loc.line, 0);
    }
}

TEST(NetlistLintTest, DuplicatePartitionMember) {
  std::string text(kCleanSoc);
  text.replace(text.find("conv2d,gemm"), 11, "conv2d,conv2d");
  const auto diags = run_lint(text);
  EXPECT_TRUE(has_rule(diags, "netlist.duplicate-member"));
}

TEST(NetlistLintTest, DanglingNetsAndWidths) {
  LintContext context(kCleanSoc);
  {
    // Netlist::add_net rejects undriven and zero-width nets outright (the
    // builder enforces those invariants), so the constructible dangling
    // case is a driven net that fans out to nothing.
    netlist::Netlist nl("fixture");
    const auto a = nl.add_cell({"a", netlist::CellKind::kLogic, {}, ""});
    nl.add_net({"unloaded", a, {}, 8});
    context.override_netlist(std::move(nl));
  }
  {
    // Interface contract: mem_tile_logic carries the 128-bit memory
    // socket, not the 96-bit reconfigurable-wrapper interface, and is not
    // a CPU core (those are exempt) — listing it as a partition member
    // must trip the width check.
    const netlist::SocRtl& base = context.rtl();
    auto partitions = base.partitions();
    ASSERT_FALSE(partitions.empty());
    partitions[0].modules.push_back(
        netlist::ComponentLibrary::kMemTileLogic);
    context.override_rtl(netlist::SocRtl(base.config(), base.tiles(),
                                         std::move(partitions)));
  }
  const auto diags = run_context(context);
  EXPECT_TRUE(has_rule(diags, "netlist.dangling-net"));
  EXPECT_TRUE(has_rule(diags, "netlist.width-mismatch"));
  int dangling = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == "netlist.dangling-net") ++dangling;
  }
  EXPECT_EQ(dangling, 1);
}

TEST(NetlistLintTest, SynthesizedNetlistIsClean) {
  LintContext context(kCleanSoc);
  const auto diags = run_context(context);
  EXPECT_FALSE(has_rule(diags, "netlist.dangling-net"));
  EXPECT_FALSE(has_rule(diags, "netlist.width-mismatch"));
}

// ---------------------------------------------------- floorplan rules

TEST(FloorplanLintTest, OverlappingRegions) {
  LintContext context(kCleanSoc);
  floorplan::Floorplan plan;
  plan.pblocks = {{10, 20, 0, 1}, {15, 25, 1, 2}};  // overlap at (15..20,1)
  context.override_floorplan(
      plan, {{"RT_1", {100, 0, 0, 0}}, {"RT_2", {100, 0, 0, 0}}});
  const auto diags = run_context(context);
  EXPECT_TRUE(has_rule(diags, "floorplan.region-overlap"));
}

TEST(FloorplanLintTest, RegionCapacityAndMemberFootprint) {
  LintContext context(kCleanSoc);
  floorplan::Floorplan plan;
  // Two 1x1 pblocks on CLB columns: far too small for the kernels.
  plan.pblocks = {{2, 2, 0, 0}, {4, 4, 0, 0}};
  context.override_floorplan(
      plan,
      {{"RT_1", {50'000, 0, 0, 0}}, {"RT_2", {50'000, 0, 0, 0}}});
  const auto diags = run_context(context);
  EXPECT_TRUE(has_rule(diags, "floorplan.region-capacity"));
  EXPECT_TRUE(has_rule(diags, "floorplan.member-footprint"));
}

TEST(FloorplanLintTest, IllegalAndOutOfBoundsColumns) {
  LintContext context(kCleanSoc);
  const auto device = fabric::Device::vc707();
  int clock_col = -1;
  for (int c = 0; c < device.num_columns(); ++c)
    if (device.column_type(c) == fabric::ColumnType::kClock) clock_col = c;
  ASSERT_GE(clock_col, 0);
  floorplan::Floorplan plan;
  plan.pblocks = {{clock_col, clock_col, 0, 0},
                  {device.num_columns(), device.num_columns() + 3, 0, 0}};
  context.override_floorplan(
      plan, {{"RT_1", {0, 0, 0, 0}}, {"RT_2", {0, 0, 0, 0}}});
  const auto diags = run_context(context);
  int illegal = 0;
  for (const Diagnostic& d : diags)
    if (d.rule == "floorplan.illegal-column") ++illegal;
  EXPECT_EQ(illegal, 2);  // one on the spine, one off the fabric
}

TEST(FloorplanLintTest, FeasibleDesignPlansClean) {
  const auto diags = run_lint(kCleanSoc);
  EXPECT_FALSE(has_rule(diags, "floorplan.infeasible"));
  EXPECT_FALSE(has_rule(diags, "floorplan.region-overlap"));
}

TEST(FloorplanLintTest, InfeasibleDemandReportsSingleDiagnostic) {
  // An accelerator far beyond the VC707 fabric: floorplanning must fail
  // with exactly one floorplan.infeasible diagnostic (no cascade).
  std::string text(kCleanSoc);
  text += R"(
[accelerator titan]
flow = vivado_hls
ops = mac16:4
pes = 64
buffer_luts = 9000000
)";
  text.replace(text.find("fft,sort"), 8, "titan");
  const auto diags = run_lint(text);
  int infeasible = 0;
  for (const Diagnostic& d : diags)
    if (d.rule == "floorplan.infeasible") ++infeasible;
  EXPECT_EQ(infeasible, 1);
  EXPECT_FALSE(has_rule(diags, "config.parse"));
}

TEST(FloorplanLintTest, IcapUnreachableOnBrokenRoutes) {
  LintContext context(kCleanSoc);
  // Copy the valid all-pairs table, then break the route from the first
  // reconfigurable tile (index 3 = r1c0) to the aux tile (index 2).
  lint::RouteTable table = context.routes();
  table.routes[3 * table.num_tiles() + 2] = {3, 4};  // never reaches 2
  context.override_routes(std::move(table));
  const auto diags = run_context(context);
  ASSERT_TRUE(has_rule(diags, "floorplan.icap-unreachable"));
  for (const Diagnostic& d : diags)
    if (d.rule == "floorplan.icap-unreachable") {
      EXPECT_EQ(d.loc.object, "tiles.r1c0");
    }
}

// Two reconfigurable tiles sharing the conv2d module, with the runtime
// repacker opted in: relocation compatibility between their regions
// becomes meaningful (the rule is silent without repack_* keys — a
// design that never migrates loses nothing from per-region images).
const char* kSharedModuleSoc = R"([soc]
name = shared
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:conv2d,gemm
r1c1 = reconf:conv2d,fft
r1c2 = empty

[runtime]
repack_interval_cycles = 2000000
repack_frag_threshold = 0.25
)";

TEST(FloorplanLintTest, RelocatableFootprintWarnsOnIncompatibleHosts) {
  LintContext context(kSharedModuleSoc);
  floorplan::Floorplan plan;
  // Same module, two host regions with different heights: no single
  // partial bitstream can be rebased between them.
  plan.pblocks = {{2, 3, 0, 0}, {2, 3, 0, 1}};
  context.override_floorplan(
      plan, {{"RT_1", {100, 0, 0, 0}}, {"RT_2", {100, 0, 0, 0}}});
  const auto diags = run_context(context);
  ASSERT_TRUE(has_rule(diags, "floorplan.relocatable-footprint"));
  for (const Diagnostic& d : diags)
    if (d.rule == "floorplan.relocatable-footprint") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      // The message names both footprint signatures.
      EXPECT_NE(d.message.find("h1:"), std::string::npos);
      EXPECT_NE(d.message.find("h2:"), std::string::npos);
    }
}

TEST(FloorplanLintTest, RelocatableFootprintSilentOnCompatibleHosts) {
  LintContext context(kSharedModuleSoc);
  floorplan::Floorplan plan;
  // Identical column window on different region rows: one relocatable
  // image serves both hosts.
  plan.pblocks = {{2, 3, 0, 0}, {2, 3, 1, 1}};
  context.override_floorplan(
      plan, {{"RT_1", {100, 0, 0, 0}}, {"RT_2", {100, 0, 0, 0}}});
  const auto diags = run_context(context);
  EXPECT_FALSE(has_rule(diags, "floorplan.relocatable-footprint"));
}

TEST(FloorplanLintTest, RelocatableFootprintNeedsASharedModule) {
  // kCleanSoc's tiles host disjoint module sets: nothing to relocate.
  LintContext context(kCleanSoc);
  floorplan::Floorplan plan;
  plan.pblocks = {{2, 3, 0, 0}, {2, 3, 0, 1}};
  context.override_floorplan(
      plan, {{"RT_1", {100, 0, 0, 0}}, {"RT_2", {100, 0, 0, 0}}});
  EXPECT_FALSE(
      has_rule(run_context(context), "floorplan.relocatable-footprint"));
}

TEST(FloorplanLintTest, RelocatableFootprintNeedsTheRepackerOptIn) {
  // Same incompatible hosts as the warning case, but no [runtime]
  // repack_* keys: without a repacker nothing ever relocates, so
  // per-region images are fine and the rule must stay silent.
  const std::string no_repack(
      kSharedModuleSoc,
      std::string(kSharedModuleSoc).find("\n[runtime]"));
  LintContext context(no_repack);
  floorplan::Floorplan plan;
  plan.pblocks = {{2, 3, 0, 0}, {2, 3, 0, 1}};
  context.override_floorplan(
      plan, {{"RT_1", {100, 0, 0, 0}}, {"RT_2", {100, 0, 0, 0}}});
  EXPECT_FALSE(
      has_rule(run_context(context), "floorplan.relocatable-footprint"));
}

// ---------------------------------------------------------- noc rules

TEST(NocLintTest, XyRoutingIsDeadlockFree) {
  const auto diags = run_lint(kCleanSoc);
  EXPECT_FALSE(has_rule(diags, "noc.deadlock"));
  EXPECT_FALSE(has_rule(diags, "noc.queue-gating"));
}

TEST(NocLintTest, CyclicRoutesAreFlaggedAsDeadlock) {
  LintContext context(kCleanSoc);
  lint::RouteTable table = context.routes();
  // Four routes on the 2x3 mesh whose link dependencies form a ring:
  // (0->1)->(1->4), (1->4)->(4->3), (4->3)->(3->0), (3->0)->(0->1).
  const int t = table.num_tiles();
  table.routes[0 * t + 4] = {0, 1, 4};
  table.routes[1 * t + 3] = {1, 4, 3};
  table.routes[4 * t + 0] = {4, 3, 0};
  table.routes[3 * t + 1] = {3, 0, 1};
  context.override_routes(std::move(table));
  const auto diags = run_context(context);
  ASSERT_TRUE(has_rule(diags, "noc.deadlock"));
}

TEST(NocLintTest, MissingDecouplerBreaksQueueGating) {
  LintContext context(kCleanSoc);
  {
    // Re-elaborate, then strip the PR decoupler from the first
    // reconfigurable tile's static socket.
    auto config = netlist::SocConfig::parse(kCleanSoc);
    auto lib = core::characterization_library();
    auto rtl = netlist::elaborate(config, lib);
    auto tiles = rtl.tiles();
    for (auto& tile : tiles) {
      auto& blocks = tile.static_blocks;
      blocks.erase(std::remove(blocks.begin(), blocks.end(),
                               netlist::ComponentLibrary::kDecoupler),
                   blocks.end());
    }
    context.override_rtl(
        netlist::SocRtl(config, std::move(tiles), rtl.partitions()));
  }
  const auto diags = run_context(context);
  ASSERT_TRUE(has_rule(diags, "noc.queue-gating"));
}

// ------------------------------------------------------ runtime rules

std::string with_runtime(const std::string& section) {
  return std::string(kCleanSoc) + "\n[runtime]\n" + section;
}

TEST(RuntimeLintTest, WellFormedPlanIsClean) {
  const std::string text = with_runtime(
      "thread_a = r1c0:conv2d, r1c0:gemm\nthread_b = r1c1:fft\n");
  EXPECT_TRUE(run_lint(text).empty());
}

TEST(RuntimeLintTest, MissingBitstreamInManifest) {
  const auto diags =
      run_lint(with_runtime("thread_a = r1c0:fft\n"));  // fft lives on r1c1
  ASSERT_TRUE(has_rule(diags, "runtime.missing-bitstream"));
}

TEST(RuntimeLintTest, RequestOnNonReconfigurableTile) {
  const auto diags = run_lint(with_runtime("thread_a = r0c1:conv2d\n"));
  EXPECT_TRUE(has_rule(diags, "runtime.missing-bitstream"));
}

TEST(RuntimeLintTest, ExplicitManifestOverridesMemberSets) {
  const auto diags = run_lint(with_runtime("thread_a = r1c0:conv2d\n") +
                              "\n[bitstreams]\nr1c0 = gemm\n");
  EXPECT_TRUE(has_rule(diags, "runtime.missing-bitstream"));
}

TEST(RuntimeLintTest, ChainReacquiringSameTileIsSelfDeadlock) {
  const auto diags =
      run_lint(with_runtime("thread_a = r1c0:conv2d + r1c0:gemm\n"));
  ASSERT_TRUE(has_rule(diags, "runtime.lock-order"));
  for (const Diagnostic& d : diags)
    if (d.rule == "runtime.lock-order") {
      EXPECT_EQ(d.severity, Severity::kError);
    }
}

TEST(RuntimeLintTest, ConflictingLockOrderAcrossThreads) {
  const auto diags = run_lint(with_runtime(
      "thread_a = r1c0:conv2d + r1c1:fft\n"
      "thread_b = r1c1:sort + r1c0:gemm\n"));
  ASSERT_TRUE(has_rule(diags, "runtime.lock-order"));
  for (const Diagnostic& d : diags)
    if (d.rule == "runtime.lock-order") {
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
}

TEST(RuntimeLintTest, ConsistentLockOrderIsClean) {
  const auto diags = run_lint(with_runtime(
      "thread_a = r1c0:conv2d + r1c1:fft\n"
      "thread_b = r1c0:gemm + r1c1:sort\n"));
  EXPECT_FALSE(has_rule(diags, "runtime.lock-order"));
}

TEST(RuntimeLintTest, RepackerBoundsInRuntimeSection) {
  const auto spin = run_lint(with_runtime(
      "thread_a = r1c0:conv2d\nrepack_interval_cycles = 0\n"));
  ASSERT_TRUE(has_rule(spin, "runtime.repacker-bounds"));
  EXPECT_TRUE(has_error(spin));

  // Budget above the foreground retry budget: warning, not error.
  const auto budget = run_lint(with_runtime(
      "thread_a = r1c0:conv2d\nretry_budget = 2\n"
      "repack_migration_budget = 5\n"));
  ASSERT_TRUE(has_rule(budget, "runtime.repacker-bounds"));
  EXPECT_FALSE(has_error(budget));

  const auto clean = run_lint(with_runtime(
      "thread_a = r1c0:conv2d\nrepack_interval_cycles = 2000000\n"
      "repack_migration_budget = 2\n"));
  EXPECT_FALSE(has_rule(clean, "runtime.repacker-bounds"));

  // No repack_* keys at all: the rule stays silent.
  const auto absent = run_lint(with_runtime("thread_a = r1c0:conv2d\n"));
  EXPECT_FALSE(has_rule(absent, "runtime.repacker-bounds"));
}

// ------------------------------------------------------- fleet rules

std::string with_fleet(const std::string& section) {
  return std::string(kCleanSoc) + "\n[fleet]\n" + section;
}

TEST(FleetLintTest, WellFormedFleetSectionIsClean) {
  const auto diags = run_lint(with_fleet(
      "shards = 2\nquantum_cycles = 4000\ncoalesce_limit = 4\n"
      "class_realtime = 8, 4.0, 8, 32, 600\n"
      "breaker_failure_threshold = 0.5\nbreaker_window = 8\n"));
  EXPECT_TRUE(diags.empty());
}

TEST(FleetLintTest, NoFleetSectionMeansNoFleetFindings) {
  for (const Diagnostic& d : run_lint(kCleanSoc))
    EXPECT_NE(d.rule.substr(0, 6), "fleet.");
}

TEST(FleetLintTest, ZeroShardsAndQuantum) {
  const auto diags =
      run_lint(with_fleet("shards = 0\nquantum_cycles = 0\n"));
  EXPECT_TRUE(has_rule(diags, "fleet.topology"));
  EXPECT_TRUE(has_error(diags));
}

TEST(FleetLintTest, MalformedClassRowReportsUnderTopology) {
  const auto diags =
      run_lint(with_fleet("class_standard = not, a, number\n"));
  ASSERT_TRUE(has_rule(diags, "fleet.topology"));
  EXPECT_TRUE(has_error(diags));
}

TEST(FleetLintTest, ZeroWeightSumIsErrorSingleZeroIsWarning) {
  const auto starved = run_lint(with_fleet(
      "class_realtime = 0, 4.0, 8, 32, 600\n"
      "class_standard = 0, 2.0, 16, 64, 2000\n"
      "class_besteffort = 0, 1.0, 32, 128, 8000\n"));
  EXPECT_TRUE(has_rule(starved, "fleet.class-weights"));
  EXPECT_TRUE(has_error(starved));

  const auto one_zero =
      run_lint(with_fleet("class_besteffort = 0, 1.0, 32, 128, 8000\n"));
  ASSERT_TRUE(has_rule(one_zero, "fleet.class-weights"));
  EXPECT_FALSE(has_error(one_zero));
}

TEST(FleetLintTest, QueueBoundAndTokenMisconfigurations) {
  const auto unbounded =
      run_lint(with_fleet("class_standard = 4, 2.0, 16, 0, 2000\n"));
  EXPECT_TRUE(has_rule(unbounded, "fleet.queue-bounds"));
  EXPECT_TRUE(has_error(unbounded));

  const auto throttled =
      run_lint(with_fleet("class_standard = 4, 0.0, 16, 64, 2000\n"));
  ASSERT_TRUE(has_rule(throttled, "fleet.queue-bounds"));
  EXPECT_FALSE(has_error(throttled));  // warning: permanent throttle
}

TEST(FleetLintTest, BreakerMisconfigurations) {
  const auto threshold =
      run_lint(with_fleet("breaker_failure_threshold = 1.5\n"));
  EXPECT_TRUE(has_rule(threshold, "fleet.breaker"));
  EXPECT_TRUE(has_error(threshold));

  const auto window = run_lint(with_fleet("breaker_window = 65\n"));
  EXPECT_TRUE(has_rule(window, "fleet.breaker"));

  const auto interval = run_lint(with_fleet(
      "breaker_open_base_cycles = 200000\n"
      "breaker_open_max_cycles = 1000\n"));
  EXPECT_TRUE(has_rule(interval, "fleet.breaker"));

  const auto probes =
      run_lint(with_fleet("breaker_half_open_probes = 0\n"));
  EXPECT_TRUE(has_rule(probes, "fleet.breaker"));

  // Backoff shorter than one scheduling quantum: warning only.
  const auto thrash = run_lint(with_fleet(
      "quantum_cycles = 4000\nbreaker_open_base_cycles = 1000\n"
      "breaker_open_max_cycles = 3200000\n"));
  ASSERT_TRUE(has_rule(thrash, "fleet.breaker"));
  EXPECT_FALSE(has_error(thrash));
}

TEST(FleetLintTest, DiagnosticsAnchorToTheFleetKeyLine) {
  const std::string text = with_fleet("shards = 0\n");
  const auto diags = run_lint(text);
  ASSERT_TRUE(has_rule(diags, "fleet.topology"));
  // kCleanSoc spans 14 lines; "[fleet]" follows the blank separator.
  for (const Diagnostic& d : diags)
    if (d.rule == "fleet.topology") EXPECT_GT(d.loc.line, 0);
}

TEST(FleetLintTest, RepackerBoundsInFleetSection) {
  const auto clean = run_lint(with_fleet("shards = 2\nrepack = 1\n"));
  EXPECT_FALSE(has_rule(clean, "runtime.repacker-bounds"));

  const auto spin = run_lint(with_fleet(
      "shards = 2\nrepack = 1\nrepack_interval_cycles = 0\n"));
  ASSERT_TRUE(has_rule(spin, "runtime.repacker-bounds"));
  EXPECT_TRUE(has_error(spin));

  const auto threshold = run_lint(with_fleet(
      "shards = 2\nrepack = 1\nrepack_frag_threshold = 1.0\n"));
  ASSERT_TRUE(has_rule(threshold, "runtime.repacker-bounds"));
  EXPECT_TRUE(has_error(threshold));

  // Budget above the runtime retry budget (default 3): warning only.
  const auto budget = run_lint(with_fleet(
      "shards = 2\nrepack = 1\nrepack_migration_budget = 5\n"));
  ASSERT_TRUE(has_rule(budget, "runtime.repacker-bounds"));
  EXPECT_FALSE(has_error(budget));

  // Repack off: the knobs are inert and the rule stays silent.
  const auto off = run_lint(with_fleet(
      "shards = 2\nrepack = 0\nrepack_interval_cycles = 0\n"));
  EXPECT_FALSE(has_rule(off, "runtime.repacker-bounds"));
}

std::string with_ops(const std::string& section) {
  return std::string(kCleanSoc) + "\n[ops]\n" + section;
}

TEST(OpsLintTest, EnabledLoopbackSectionIsClean) {
  const auto diags = run_lint(with_ops(
      "enabled = true\nport = 9180\nworkers = 4\nmax_connections = 16\n"));
  for (const Diagnostic& d : diags)
    EXPECT_NE(d.rule.substr(0, 4), "ops.") << d.rule;
}

TEST(OpsLintTest, NoOpsSectionMeansNoOpsFindings) {
  for (const Diagnostic& d : run_lint(kCleanSoc))
    EXPECT_NE(d.rule.substr(0, 4), "ops.");
}

TEST(OpsLintTest, PortRangeAndPrivilegedPorts) {
  const auto range = run_lint(with_ops("enabled = true\nport = 99999\n"));
  ASSERT_TRUE(has_rule(range, "ops.port"));
  EXPECT_TRUE(has_error(range));

  // Privileged ports need root; warn, don't block.
  const auto privileged =
      run_lint(with_ops("enabled = true\nport = 443\n"));
  ASSERT_TRUE(has_rule(privileged, "ops.port"));
  EXPECT_FALSE(has_error(privileged));
}

TEST(OpsLintTest, BindMustBeDottedQuad) {
  const auto diags =
      run_lint(with_ops("enabled = true\nbind = localhost\n"));
  ASSERT_TRUE(has_rule(diags, "ops.port"));
  EXPECT_TRUE(has_error(diags));
}

TEST(OpsLintTest, SseBoundsMisconfigurations) {
  const auto buffer =
      run_lint(with_ops("enabled = true\nsse_buffer_events = 0\n"));
  EXPECT_TRUE(has_rule(buffer, "ops.sse-bounds"));
  EXPECT_TRUE(has_error(buffer));

  const auto interval =
      run_lint(with_ops("enabled = true\npublish_interval_ms = 0\n"));
  EXPECT_TRUE(has_rule(interval, "ops.sse-bounds"));
  EXPECT_TRUE(has_error(interval));

  // Connections far beyond the worker pool: warning only (the shipped
  // 16:4 ratio is the accepted ceiling and stays clean).
  const auto starved = run_lint(
      with_ops("enabled = true\nworkers = 2\nmax_connections = 32\n"));
  ASSERT_TRUE(has_rule(starved, "ops.sse-bounds"));
  EXPECT_FALSE(has_error(starved));
}

TEST(OpsLintTest, DisabledSectionAndOffLoopbackBindWarn) {
  const auto disabled = run_lint(with_ops("port = 9180\n"));
  ASSERT_TRUE(has_rule(disabled, "ops.disabled-by-default"));
  EXPECT_FALSE(has_error(disabled));

  const auto exposed =
      run_lint(with_ops("enabled = true\nbind = 0.0.0.0\n"));
  ASSERT_TRUE(has_rule(exposed, "ops.disabled-by-default"));
  EXPECT_FALSE(has_error(exposed));

  const auto malformed = run_lint(with_ops("enabled = maybe\n"));
  ASSERT_TRUE(has_rule(malformed, "ops.disabled-by-default"));
  EXPECT_TRUE(has_error(malformed));
}

TEST(RuntimeLintTest, RetryBudgetMisconfigurations) {
  const auto zero = run_lint(with_runtime("retry_budget = 0\n"));
  EXPECT_TRUE(has_rule(zero, "runtime.retry-budget"));

  const auto overflow = run_lint(with_runtime(
      "retry_budget = 80\nbackoff_base_cycles = 1000000000\n"));
  EXPECT_TRUE(has_rule(overflow, "runtime.retry-budget"));

  const auto margin =
      run_lint(with_runtime("watchdog_reconf_margin = 0.5\n"));
  EXPECT_TRUE(has_rule(margin, "runtime.retry-budget"));

  const auto sane = run_lint(with_runtime(
      "retry_budget = 3\nmax_attempts = 3\nbackoff_base_cycles = 10000\n"
      "watchdog_reconf_margin = 8.0\n"));
  EXPECT_FALSE(has_rule(sane, "runtime.retry-budget"));
}

TEST(RuntimeLintTest, StoreCapacityMisconfigurations) {
  // One slot serializes the fetch/program pipeline.
  const auto one = run_lint(with_runtime("store_cache_slots = 1\n"));
  ASSERT_TRUE(has_rule(one, "runtime.store-capacity"));
  for (const Diagnostic& d : one)
    if (d.rule == "runtime.store-capacity")
      EXPECT_EQ(d.severity, Severity::kWarning);

  const auto negative = run_lint(with_runtime("store_cache_slots = -2\n"));
  EXPECT_TRUE(has_rule(negative, "runtime.store-capacity"));

  // A slot too small for the largest manifest module is an error: every
  // acquire of that module would abort.
  const auto tiny = run_lint(with_runtime(
      "store_cache_slots = 4\nstore_slot_bytes = 64\n"));
  ASSERT_TRUE(has_rule(tiny, "runtime.store-capacity"));
  for (const Diagnostic& d : tiny)
    if (d.rule == "runtime.store-capacity")
      EXPECT_EQ(d.severity, Severity::kError);

  const auto sane = run_lint(with_runtime(
      "store_cache_slots = 2\nstore_slot_bytes = 8000000\n"));
  EXPECT_FALSE(has_rule(sane, "runtime.store-capacity"));

  // Eager store (no cache): nothing to check.
  const auto eager = run_lint(with_runtime("retry_budget = 3\n"));
  EXPECT_FALSE(has_rule(eager, "runtime.store-capacity"));
}

// --------------------------------------------------------- exec rules

std::string with_tasks(const std::string& section) {
  return std::string(kCleanSoc) + "\n[tasks]\n" + section;
}

TEST(ExecLintTest, AcyclicTaskGraphIsClean) {
  const auto diags =
      run_lint(with_tasks("a =\nb = a\nc = a, b\n"));
  EXPECT_TRUE(diags.empty());
}

TEST(ExecLintTest, UndefinedDependency) {
  const auto diags = run_lint(with_tasks("a =\nb = a, ghost\n"));
  ASSERT_TRUE(has_rule(diags, "exec.undefined-dep"));
  EXPECT_FALSE(has_rule(diags, "exec.graph-cycle"));
}

TEST(ExecLintTest, DependencyCycle) {
  const auto diags = run_lint(with_tasks("a = b\nb = a\n"));
  EXPECT_TRUE(has_rule(diags, "exec.graph-cycle"));
}

TEST(ExecLintTest, TaskDownstreamOfCycleIsUnreachable) {
  const auto diags = run_lint(with_tasks("a = b\nb = a\nc = a\n"));
  EXPECT_TRUE(has_rule(diags, "exec.graph-cycle"));
  ASSERT_TRUE(has_rule(diags, "exec.unreachable-task"));
  for (const Diagnostic& d : diags)
    if (d.rule == "exec.unreachable-task") {
      EXPECT_EQ(d.loc.object, "tasks.c");
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
}

std::string with_exec(const std::string& section) {
  return std::string(kCleanSoc) + "\n[exec]\n" + section;
}

TEST(ExecLintTest, CleanCacheSectionHasNoFindings) {
  const std::string dir = ::testing::TempDir() + "/lint_cache_probe";
  const auto diags = run_lint(with_exec(
      "cache_dir = " + dir + "\ncache_max_bytes = 268435456\n"));
  EXPECT_TRUE(diags.empty());
}

TEST(ExecLintTest, EmptyCacheDirIsAnError) {
  const auto diags = run_lint(with_exec("cache_dir =\n"));
  ASSERT_TRUE(has_rule(diags, "exec.cache-dir-writable"));
  EXPECT_TRUE(has_error(diags));
}

TEST(ExecLintTest, CacheDirUnderAPlainFileIsAnError) {
  // The nearest existing ancestor is a regular file, so the flow could
  // never create the directory.
  const std::string file = ::testing::TempDir() + "/lint_cache_blocker";
  std::ofstream(file) << "not a directory\n";
  const auto diags =
      run_lint(with_exec("cache_dir = " + file + "/cache\n"));
  ASSERT_TRUE(has_rule(diags, "exec.cache-dir-writable"));
  for (const Diagnostic& d : diags)
    if (d.rule == "exec.cache-dir-writable")
      EXPECT_NE(d.message.find("not a directory"), std::string::npos);
}

TEST(ExecLintTest, TinyCacheCapIsAnError) {
  const std::string dir = ::testing::TempDir() + "/lint_cache_probe";
  const auto diags = run_lint(with_exec(
      "cache_dir = " + dir + "\ncache_max_bytes = 4096\n"));
  ASSERT_TRUE(has_rule(diags, "exec.cache-size-bounds"));
  EXPECT_TRUE(has_error(diags));
}

TEST(ExecLintTest, NonPositiveCapMeansUnboundedAndIsClean) {
  const std::string dir = ::testing::TempDir() + "/lint_cache_probe";
  const auto diags = run_lint(with_exec(
      "cache_dir = " + dir + "\ncache_max_bytes = 0\n"));
  EXPECT_FALSE(has_rule(diags, "exec.cache-size-bounds"));
}

TEST(ExecLintTest, MalformedCapIsAnError) {
  const std::string dir = ::testing::TempDir() + "/lint_cache_probe";
  const auto diags = run_lint(with_exec(
      "cache_dir = " + dir + "\ncache_max_bytes = lots\n"));
  ASSERT_TRUE(has_rule(diags, "exec.cache-size-bounds"));
}

TEST(ExecLintTest, CapWithoutCacheDirIsAWarning) {
  const auto diags = run_lint(with_exec("cache_max_bytes = 268435456\n"));
  ASSERT_TRUE(has_rule(diags, "exec.cache-size-bounds"));
  EXPECT_FALSE(has_error(diags));
  for (const Diagnostic& d : diags)
    if (d.rule == "exec.cache-size-bounds")
      EXPECT_EQ(d.severity, Severity::kWarning);
}

/// Pins the hardware-thread count the overhead rule sees, so the tests
/// do not depend on the build host.
class HwThreadsGuard {
 public:
  explicit HwThreadsGuard(const char* count) {
    ::setenv("PRESP_LINT_HW_THREADS", count, 1);
  }
  ~HwThreadsGuard() { ::unsetenv("PRESP_LINT_HW_THREADS"); }
};

TEST(ExecLintTest, RacecheckWithOversubscriptionWarns) {
  const HwThreadsGuard hw("4");
  const auto diags =
      run_lint(with_exec("racecheck = true\nthreads = 8\n"));
  ASSERT_TRUE(has_rule(diags, "exec.racecheck-overhead"));
  EXPECT_FALSE(has_error(diags));
  for (const Diagnostic& d : diags)
    if (d.rule == "exec.racecheck-overhead") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_NE(d.message.find("4-hardware-thread"), std::string::npos);
      EXPECT_FALSE(d.fix_hint.empty());
    }
}

TEST(ExecLintTest, RacecheckWithinHardwareThreadsIsClean) {
  const HwThreadsGuard hw("4");
  const auto diags =
      run_lint(with_exec("racecheck = true\nthreads = 4\n"));
  EXPECT_FALSE(has_rule(diags, "exec.racecheck-overhead"));
}

TEST(ExecLintTest, OversubscriptionWithoutRacecheckIsClean) {
  const HwThreadsGuard hw("4");
  const auto diags = run_lint(with_exec("threads = 64\n"));
  EXPECT_FALSE(has_rule(diags, "exec.racecheck-overhead"));
}

// --------------------------------------- shipped designs stay clean

TEST(ShippedDesignsTest, CharacterizationAndTable6SocsAreClean) {
  for (int i = 1; i <= 4; ++i) {
    const auto soc = core::characterization_soc(i);
    EXPECT_TRUE(run_lint(soc.to_config_text()).empty()) << soc.name;
  }
  for (const char which : {'X', 'Y', 'Z'}) {
    const auto soc = wami::table6_soc(which);
    const auto diags = run_lint(soc.to_config_text());
    EXPECT_FALSE(has_error(diags)) << soc.name;
    EXPECT_TRUE(diags.empty()) << soc.name;
  }
}

TEST(ShippedDesignsTest, EveryExampleConfigIsClean) {
  const std::filesystem::path dir =
      std::filesystem::path(PRESP_SOURCE_DIR) / "examples" / "configs";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".esp_config") continue;
    LintContext context = LintContext::from_file(entry.path().string());
    const auto diags = run_context(context);
    EXPECT_TRUE(diags.empty())
        << entry.path().filename() << ": " << lint::render_text(diags);
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

TEST(ShippedDesignsTest, SeededViolationExitsNonZeroThroughJson) {
  // End-to-end shape of the CLI contract: a seeded violation serializes
  // through JSON with its rule id and error count intact.
  std::string text(kCleanSoc);
  text.replace(text.find("fft,sort"), 8, "no_such_kernel");
  const auto diags = run_lint(text);
  const auto parsed = lint::parse_json(lint::render_json(diags));
  EXPECT_EQ(parsed, diags);
  EXPECT_TRUE(has_rule(parsed, "netlist.unknown-accelerator"));
  EXPECT_TRUE(has_error(parsed));
}

// ------------------------------------------------------- SARIF output

TEST(SarifReportTest, SeededViolationRendersSarif) {
  std::string text(kCleanSoc);
  text.replace(text.find("fft,sort"), 8, "no_such_kernel");
  const auto diags = run_lint(text);
  ASSERT_TRUE(has_error(diags));
  const std::string sarif = lint::render_sarif(diags);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"presp-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"netlist.unknown-accelerator\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(SarifReportTest, SeverityMappingAndProperties) {
  const std::vector<Diagnostic> diags{
      {"a.error", Severity::kError, {"f.cfg", 3, "obj"}, "broken", "fix it"},
      {"b.warn", Severity::kWarning, {"f.cfg", 0, ""}, "iffy", ""},
      {"c.info", Severity::kInfo, {"", 0, ""}, "fyi", ""},
  };
  const std::string sarif = lint::render_sarif(diags, "mytool");
  EXPECT_NE(sarif.find("\"name\": \"mytool\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
  // Line 3 appears as a region; line 0 must not produce a region.
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_EQ(sarif.find("\"startLine\": 0"), std::string::npos);
  EXPECT_NE(sarif.find("\"fixHint\": \"fix it\""), std::string::npos);
  // Unlocated diagnostics anchor to the <memory> artifact.
  EXPECT_NE(sarif.find("\"uri\": \"<memory>\""), std::string::npos);
}

// ------------------------------------------- floorplan artifact lint

floorplan::FloorplanArtifact planned_artifact() {
  const auto device = fabric::Device::vc707();
  const floorplan::Floorplanner planner(device);
  floorplan::FloorplanArtifact artifact;
  artifact.design = "unit";
  artifact.device = "vc707";
  artifact.requests = {{"RT_1", {20'000, 20'000, 16, 32}},
                       {"RT_2", {15'000, 15'000, 8, 16}}};
  artifact.plan =
      planner.plan(artifact.requests, {40'000, 40'000, 64, 64}, {});
  return artifact;
}

TEST(FloorplanArtifactTest, JsonRoundTripPreservesEverything) {
  const auto artifact = planned_artifact();
  const auto parsed =
      floorplan::parse_floorplan_json(
          floorplan::render_floorplan_json(artifact));
  EXPECT_EQ(parsed.design, artifact.design);
  EXPECT_EQ(parsed.device, artifact.device);
  ASSERT_EQ(parsed.requests.size(), artifact.requests.size());
  ASSERT_EQ(parsed.plan.pblocks.size(), artifact.plan.pblocks.size());
  for (std::size_t i = 0; i < parsed.requests.size(); ++i) {
    EXPECT_EQ(parsed.requests[i].name, artifact.requests[i].name);
    EXPECT_EQ(parsed.requests[i].demand.luts,
              artifact.requests[i].demand.luts);
    EXPECT_EQ(parsed.plan.pblocks[i].col_lo,
              artifact.plan.pblocks[i].col_lo);
    EXPECT_EQ(parsed.plan.pblocks[i].row_hi,
              artifact.plan.pblocks[i].row_hi);
  }
  EXPECT_EQ(parsed.plan.static_capacity.luts,
            artifact.plan.static_capacity.luts);
}

TEST(FloorplanArtifactTest, MalformedJsonThrows) {
  EXPECT_THROW(floorplan::parse_floorplan_json("{\"design\": }"),
               ConfigError);
  EXPECT_THROW(floorplan::parse_floorplan_json("[]"), ConfigError);
  // A partition missing its pblock leaves counts consistent (both sides
  // get a default), but unknown fields must be rejected.
  EXPECT_THROW(
      floorplan::parse_floorplan_json("{\"bogus\": 1}"), ConfigError);
}

TEST(FloorplanArtifactLintTest, PlannedArtifactLintsClean) {
  const auto diags = lint::lint_floorplan_artifact(planned_artifact());
  EXPECT_TRUE(diags.empty()) << lint::render_text(diags);
}

TEST(FloorplanArtifactLintTest, SeededViolationsAreDetected) {
  auto artifact = planned_artifact();
  // Slam both pblocks onto the same rectangle: overlap, and (rectangle
  // sized for RT_2) a capacity shortfall for RT_1's larger demand.
  artifact.plan.pblocks[0] = artifact.plan.pblocks[1];
  const auto diags = lint::lint_floorplan_artifact(artifact, "bad.json");
  EXPECT_TRUE(has_rule(diags, "floorplan.region-overlap"));
  for (const Diagnostic& d : diags) EXPECT_EQ(d.loc.file, "bad.json");
}

TEST(FloorplanArtifactLintTest, OffFabricPblockIsIllegalColumn) {
  auto artifact = planned_artifact();
  artifact.plan.pblocks[0].col_hi = 100'000;
  const auto diags = lint::lint_floorplan_artifact(artifact);
  EXPECT_TRUE(has_rule(diags, "floorplan.illegal-column"));
}

TEST(FloorplanArtifactLintTest, UnknownDeviceIsReportedNotFatal) {
  auto artifact = planned_artifact();
  artifact.device = "zynq7000";
  const auto diags = lint::lint_floorplan_artifact(artifact);
  EXPECT_TRUE(has_rule(diags, "config.unknown-device"));
  // Device-independent checks still ran (no overlap in the good plan).
  EXPECT_FALSE(has_rule(diags, "floorplan.region-overlap"));
}

}  // namespace
}  // namespace presp
