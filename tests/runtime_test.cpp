#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

#include "runtime/api.hpp"
#include "util/error.hpp"

namespace presp::runtime {
namespace {

const char* kSocText = R"(
[soc]
name = rt_sim
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_c
r1c2 = empty
)";

soc::AcceleratorRegistry test_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b", "acc_c"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 15'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 3;
    spec.latency.startup_cycles = 40;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

class RuntimeFixture : public ::testing::Test {
 protected:
  RuntimeFixture()
      : registry_(test_registry()),
        soc_(netlist::SocConfig::parse(kSocText), registry_),
        store_(soc_.memory()),
        manager_(soc_, store_) {
    // Two reconfigurable tiles at grid indices 3 and 4.
    for (const int tile : {3, 4})
      for (const char* module : {"acc_a", "acc_b", "acc_c"})
        store_.add(tile, module, 250'000);
    buf_ = soc_.memory().allocate("buf", 1 << 16);
  }

  soc::AccelTask task() const {
    soc::AccelTask t;
    t.src = buf_;
    t.dst = buf_ + 32'768;
    t.items = 500;
    return t;
  }

  soc::AcceleratorRegistry registry_;
  soc::Soc soc_;
  BitstreamStore store_;
  ReconfigurationManager manager_;
  std::uint64_t buf_ = 0;
};

TEST_F(RuntimeFixture, FirstRunReconfiguresThenRuns) {
  sim::SimEvent done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_EQ(manager_.stats().reconfigurations, 1u);
  EXPECT_EQ(manager_.stats().runs, 1u);
  EXPECT_EQ(manager_.driver(3), "acc_a");
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_FALSE(soc_.reconf_tile(3).decoupled());
}

TEST_F(RuntimeFixture, SecondRunSameModuleAvoidsReconfiguration) {
  sim::SimEvent d1(soc_.kernel());
  sim::SimEvent d2(soc_.kernel());
  auto seq = [&]() -> sim::Process {
    manager_.run(3, "acc_a", task(), d1);
    co_await d1.wait();
    manager_.run(3, "acc_a", task(), d2);
    co_await d2.wait();
  };
  seq();
  soc_.kernel().run();
  EXPECT_EQ(manager_.stats().reconfigurations, 1u);
  EXPECT_EQ(manager_.stats().reconfigurations_avoided, 1u);
  EXPECT_EQ(manager_.stats().runs, 2u);
}

TEST_F(RuntimeFixture, ModuleSwapOnSameTile) {
  sim::SimEvent d1(soc_.kernel());
  sim::SimEvent d2(soc_.kernel());
  auto seq = [&]() -> sim::Process {
    manager_.run(3, "acc_a", task(), d1);
    co_await d1.wait();
    manager_.run(3, "acc_b", task(), d2);
    co_await d2.wait();
  };
  seq();
  soc_.kernel().run();
  EXPECT_EQ(manager_.stats().reconfigurations, 2u);
  EXPECT_EQ(manager_.stats().driver_swaps, 2u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_b");
  EXPECT_EQ(manager_.driver(3), "acc_b");
}

TEST_F(RuntimeFixture, ConcurrentThreadsOnSameTileSerialize) {
  // "During reconfiguration, it locks access to the device so that other
  // threads trying to access it must wait."
  sim::SimEvent d1(soc_.kernel());
  sim::SimEvent d2(soc_.kernel());
  manager_.run(3, "acc_a", task(), d1);
  manager_.run(3, "acc_b", task(), d2);  // contends for the same tile
  soc_.kernel().run();
  EXPECT_TRUE(d1.triggered());
  EXPECT_TRUE(d2.triggered());
  EXPECT_EQ(manager_.stats().runs, 2u);
  EXPECT_EQ(manager_.stats().reconfigurations, 2u);
  EXPECT_GT(manager_.stats().lock_wait_cycles, 0);
  // The second thread's module must be the final resident.
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_b");
}

TEST_F(RuntimeFixture, ConcurrentReconfigurationsQueueOnPrc) {
  // Both tiles need reconfiguration at the same time: the single DFX
  // controller serializes them via the workqueue.
  sim::SimEvent d1(soc_.kernel());
  sim::SimEvent d2(soc_.kernel());
  manager_.run(3, "acc_a", task(), d1);
  manager_.run(4, "acc_c", task(), d2);
  soc_.kernel().run();
  EXPECT_TRUE(d1.triggered());
  EXPECT_TRUE(d2.triggered());
  EXPECT_EQ(manager_.stats().reconfigurations, 2u);
  EXPECT_GT(manager_.stats().prc_wait_cycles, 0);
  EXPECT_EQ(manager_.stats().max_queue_depth, 2);
}

TEST_F(RuntimeFixture, EnsureModulePrefetchesWithoutRunning) {
  sim::SimEvent done(soc_.kernel());
  manager_.ensure_module(4, "acc_c", done);
  soc_.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_EQ(soc_.reconf_tile(4).module(), "acc_c");
  EXPECT_EQ(manager_.stats().runs, 0u);
  EXPECT_EQ(manager_.stats().reconfigurations, 1u);
}

TEST_F(RuntimeFixture, MissingBitstreamReported) {
  BitstreamStore empty_store(soc_.memory());
  ReconfigurationManager manager(soc_, empty_store);
  sim::SimEvent done(soc_.kernel());
  // Aborting a simulation mid-flight by letting the exception escape
  // run() strands the caller chain: each frame awaits a Completion that
  // lives inside itself, so nothing can release them once the kernel
  // stops. That is acceptable for a fatal programming-error path (the
  // process exits) but it is a leak by construction — tell LSan.
#if defined(__SANITIZE_ADDRESS__)
  __lsan_disable();
#endif
  manager.run(3, "acc_a", task(), done);
  EXPECT_THROW(soc_.kernel().run(), InvalidArgument);
#if defined(__SANITIZE_ADDRESS__)
  __lsan_enable();
#endif
}

TEST_F(RuntimeFixture, ReconfigurationCyclesTracked) {
  sim::SimEvent done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  // Reconfiguration includes the ICAP stream (250 KB / 8 B-per-cycle) and
  // the driver swap.
  EXPECT_GT(manager_.stats().reconfiguration_cycles,
            250'000 / 8 + 39'000);
}

TEST_F(RuntimeFixture, BareMetalDriverPollsToCompletion) {
  BareMetalDriver driver(soc_, store_);
  sim::SimEvent done(soc_.kernel());
  driver.run(3, "acc_b", task(), done);
  soc_.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_EQ(driver.stats().reconfigurations, 1u);
  EXPECT_EQ(driver.stats().runs, 1u);
  EXPECT_GT(driver.stats().polls, 2u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_b");
}

// ------------------------------------------------------ BitstreamStore

TEST(BitstreamStoreTest, RegistersImagesAndBlobs) {
  soc::MainMemory mem;
  BitstreamStore store(mem);
  const auto& image = store.add(3, "acc_a", 300'000);
  EXPECT_TRUE(store.has(3, "acc_a"));
  EXPECT_FALSE(store.has(4, "acc_a"));
  EXPECT_EQ(store.get(3, "acc_a").address, image.address);
  EXPECT_EQ(mem.blob_at(image.address).module, "acc_a");
  EXPECT_EQ(store.total_bytes(), 300'000u);
  EXPECT_THROW(store.add(3, "acc_a", 100), InvalidArgument);  // duplicate
  EXPECT_THROW(store.get(9, "acc_a"), InvalidArgument);
}

TEST(BitstreamStoreTest, PayloadCopiedIntoKernelMemory) {
  soc::MainMemory mem;
  BitstreamStore store(mem);
  std::vector<std::uint8_t> payload(128);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  const auto& image = store.add(3, "acc_a", 128, payload);
  const auto stored = mem.bytes(image.address, 128);
  for (std::size_t i = 0; i < payload.size(); ++i)
    EXPECT_EQ(stored[i], payload[i]);
}

}  // namespace
}  // namespace presp::runtime
