// Background defragmentation repacker: migration commits, the hard
// safety invariants (pinned and in-flight tiles never move), and the
// kRepackAbort rollback contract.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "runtime/api.hpp"
#include "runtime/repacker.hpp"
#include "util/error.hpp"

namespace presp::runtime {
namespace {

const char* kSocText = R"(
[soc]
name = repack_sim
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_b
r1c2 = empty
)";

soc::AcceleratorRegistry test_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 15'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 3;
    spec.latency.startup_cycles = 40;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

/// Starting columns of non-overlapping full-height CLB column pairs: the
/// relocation slots the tests scatter regions across.
std::vector<int> clb_pair_slots(const fabric::Device& device) {
  std::vector<int> slots;
  int col = 0;
  while (col + 1 < device.num_columns()) {
    if (device.column_type(col) == fabric::ColumnType::kClb &&
        device.column_type(col + 1) == fabric::ColumnType::kClb) {
      slots.push_back(col);
      col += 2;
    } else {
      ++col;
    }
  }
  return slots;
}

class RepackerFixture : public ::testing::Test {
 protected:
  RepackerFixture()
      : registry_(test_registry()),
        soc_(netlist::SocConfig::parse(kSocText), registry_),
        store_(soc_.memory()),
        manager_(soc_, store_),
        device_(fabric::Device::vc707()),
        plan_(device_),
        slots_(clb_pair_slots(device_)) {
    for (const int tile : {3, 4})
      for (const char* module : {"acc_a", "acc_b"})
        store_.add(tile, module, 250'000);
    buf_ = soc_.memory().allocate("buf", 1 << 16);
  }

  /// Claims a full-height width-2 region for `tile` at pair slot `i`.
  fabric::Pblock claim_slot(int tile, std::size_t i) {
    const int col = slots_.at(i);
    const fabric::Pblock p{col, col + 1, 0, device_.region_rows() - 1};
    plan_.claim(tile, p);
    return p;
  }

  soc::AccelTask task() const {
    soc::AccelTask t;
    t.src = buf_;
    t.dst = buf_ + 32'768;
    t.items = 500;
    return t;
  }

  /// Loads `module` on `tile` (runs one task) and settles the kernel.
  void load(int tile, const std::string& module) {
    Completion done(soc_.kernel());
    manager_.run(tile, module, task(), done);
    soc_.kernel().run();
    ASSERT_TRUE(done.ok());
  }

  /// One synchronous repack pass.
  void run_pass(Repacker& repacker) {
    Completion done(soc_.kernel());
    repacker.pass(done);
    soc_.kernel().run();
    ASSERT_TRUE(done.triggered());
    EXPECT_TRUE(done.ok());
  }

  soc::AcceleratorRegistry registry_;
  soc::Soc soc_;
  BitstreamStore store_;
  ReconfigurationManager manager_;
  fabric::Device device_;
  floorplan::DynamicFloorplan plan_;
  std::vector<int> slots_;
  std::uint64_t buf_ = 0;
};

TEST_F(RepackerFixture, OptionsAreValidated) {
  RepackerOptions bad;
  bad.interval_cycles = 0;
  EXPECT_THROW(Repacker(soc_, manager_, plan_, bad), InvalidArgument);
  bad = {};
  bad.max_migrations_per_pass = 0;
  EXPECT_THROW(Repacker(soc_, manager_, plan_, bad), InvalidArgument);
  bad = {};
  bad.migration_budget = 0;
  EXPECT_THROW(Repacker(soc_, manager_, plan_, bad), InvalidArgument);
}

TEST_F(RepackerFixture, MigratesIdleLoadedTileThroughReprogram) {
  ASSERT_GE(slots_.size(), 4u);
  const auto home = claim_slot(3, slots_.size() - 1);
  load(3, "acc_a");
  const double frag_before = plan_.fragmentation().ratio();
  const auto repacks_before = manager_.stats().repacks;

  Repacker repacker(soc_, manager_, plan_);
  run_pass(repacker);

  EXPECT_EQ(repacker.stats().passes, 1u);
  EXPECT_EQ(repacker.stats().migrations, 1u);
  ASSERT_TRUE(plan_.region(3).has_value());
  EXPECT_LT(plan_.region(3)->col_lo, home.col_lo);
  EXPECT_LE(plan_.fragmentation().ratio(), frag_before);
  // The commit went through the regular DFXC path as a forced reprogram.
  EXPECT_EQ(manager_.stats().repacks, repacks_before + 1);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(manager_.driver(3), "acc_a");

  // Readback equivalence: the reprogrammed partition verifies against
  // the golden image of the module that was migrated.
  bool ok = false;
  Completion verify(soc_.kernel());
  manager_.verify_partition(3, "acc_a", &ok, verify);
  soc_.kernel().run();
  ASSERT_TRUE(verify.triggered());
  EXPECT_TRUE(ok);
}

TEST_F(RepackerFixture, EmptyRegionMovesWithoutReprogram) {
  claim_slot(3, slots_.size() - 1);
  Repacker repacker(soc_, manager_, plan_);
  run_pass(repacker);
  EXPECT_EQ(repacker.stats().migrations, 1u);
  EXPECT_EQ(manager_.stats().repacks, 0u);  // nothing loaded, no reprogram
  EXPECT_EQ(plan_.region(3)->col_lo, slots_.front());
}

TEST_F(RepackerFixture, PinnedTileIsNeverMoved) {
  const auto home = claim_slot(3, slots_.size() - 1);
  Repacker repacker(soc_, manager_, plan_);
  repacker.pin(3);
  EXPECT_TRUE(repacker.pinned(3));
  run_pass(repacker);

  EXPECT_EQ(repacker.stats().migrations, 0u);
  EXPECT_EQ(repacker.stats().skipped_pinned, 1u);
  EXPECT_EQ(plan_.region(3)->col_lo, home.col_lo);

  repacker.unpin(3);
  run_pass(repacker);
  EXPECT_EQ(repacker.stats().migrations, 1u);
  EXPECT_LT(plan_.region(3)->col_lo, home.col_lo);
}

TEST_F(RepackerFixture, InFlightTileIsNeverMoved) {
  const auto home = claim_slot(3, slots_.size() - 1);
  load(3, "acc_a");
  Repacker repacker(soc_, manager_, plan_);

  Completion run_done(soc_.kernel());
  Completion pass_done(soc_.kernel());
  auto seq = [&]() -> sim::Process {
    manager_.run(3, "acc_a", task(), run_done);
    // The request holds the tile lock; a pass in this window must skip.
    co_await sim::Delay(soc_.kernel(), 50);
    repacker.pass(pass_done);
    co_await pass_done.wait();
    EXPECT_EQ(plan_.region(3)->col_lo, home.col_lo);
    co_await run_done.wait();
  };
  seq();
  soc_.kernel().run();

  ASSERT_TRUE(run_done.ok());
  EXPECT_EQ(repacker.stats().skipped_busy, 1u);
  EXPECT_EQ(repacker.stats().migrations, 0u);
  EXPECT_EQ(plan_.region(3)->col_lo, home.col_lo);

  // Once the request retires the same tile migrates normally.
  run_pass(repacker);
  EXPECT_EQ(repacker.stats().migrations, 1u);
}

TEST_F(RepackerFixture, RepackAbortRollsBackAndLeavesFloorplanUnchanged) {
  const auto home = claim_slot(3, slots_.size() - 1);
  load(3, "acc_a");

  fault::FaultInjector injector;
  injector.arm({fault::FaultSite::kRepackAbort, -1, -1, 1});
  Repacker repacker(soc_, manager_, plan_);
  repacker.set_fault_injector(&injector);

  const auto repacks_before = manager_.stats().repacks;
  run_pass(repacker);

  // Invariant 3: the abort fires after staging, before commit — the
  // region map must be exactly as it was.
  EXPECT_EQ(repacker.stats().aborts, 1u);
  EXPECT_EQ(repacker.stats().migrations, 0u);
  EXPECT_EQ(plan_.region(3)->col_lo, home.col_lo);
  EXPECT_EQ(manager_.stats().repacks, repacks_before);  // never reprogrammed
  const auto site = static_cast<int>(fault::FaultSite::kRepackAbort);
  EXPECT_EQ(injector.stats().injected[site], 1u);
  EXPECT_EQ(injector.stats().observed[site], 1u);

  // The one-shot fault is consumed; the next pass commits the move.
  run_pass(repacker);
  EXPECT_EQ(repacker.stats().migrations, 1u);
  EXPECT_LT(plan_.region(3)->col_lo, home.col_lo);
}

TEST_F(RepackerFixture, MaxMigrationsPerPassBoundsTheWork) {
  ASSERT_GE(slots_.size(), 6u);
  claim_slot(3, slots_.size() - 1);
  claim_slot(4, slots_.size() - 3);
  RepackerOptions options;
  options.max_migrations_per_pass = 1;
  Repacker repacker(soc_, manager_, plan_, options);

  run_pass(repacker);
  EXPECT_EQ(repacker.stats().migrations, 1u);
  run_pass(repacker);
  EXPECT_EQ(repacker.stats().migrations, 2u);
}

TEST_F(RepackerFixture, MigrationBudgetStopsAPassAfterRepeatedAborts) {
  claim_slot(3, slots_.size() - 1);
  claim_slot(4, slots_.size() - 3);

  fault::FaultInjector injector;
  injector.arm({fault::FaultSite::kRepackAbort, -1, -1, 1});
  injector.arm({fault::FaultSite::kRepackAbort, -1, -1, 1});
  RepackerOptions options;
  options.migration_budget = 1;
  Repacker repacker(soc_, manager_, plan_, options);
  repacker.set_fault_injector(&injector);

  run_pass(repacker);
  // The first abort exhausts the budget; the second candidate is never
  // attempted (one armed fault left) and nothing moved.
  EXPECT_EQ(repacker.stats().aborts, 1u);
  EXPECT_EQ(repacker.stats().migrations, 0u);
  EXPECT_EQ(injector.pending(), 1u);
}

TEST_F(RepackerFixture, BackgroundProcessDefragmentsOnItsInterval) {
  const auto home = claim_slot(3, slots_.size() - 1);
  RepackerOptions options;
  options.interval_cycles = 1'000;
  options.frag_threshold = 0.0;
  Repacker background(soc_, manager_, plan_, options);

  background.process();
  soc_.kernel().run_until(10'000);
  EXPECT_GE(background.stats().passes, 1u);
  EXPECT_EQ(background.stats().migrations, 1u);
  EXPECT_LT(plan_.region(3)->col_lo, home.col_lo);
  background.stop();
}

TEST_F(RepackerFixture, ThresholdKeepsACompactFabricUntouched) {
  claim_slot(3, slots_.size() - 1);
  RepackerOptions options;
  options.interval_cycles = 1'000;
  // Above any reachable ratio: the loop must idle without passing.
  options.frag_threshold = 1.0;
  Repacker repacker(soc_, manager_, plan_, options);
  repacker.process();
  soc_.kernel().run_until(10'000);
  EXPECT_EQ(repacker.stats().passes, 0u);
  EXPECT_EQ(repacker.stats().migrations, 0u);
  repacker.stop();
}

}  // namespace
}  // namespace presp::runtime
