// Tests for system bring-up (boot_system) and the flow report writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/reference_designs.hpp"
#include "core/report.hpp"
#include "runtime/boot.hpp"
#include "util/log.hpp"

namespace presp {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

const char* kSocText = R"(
[soc]
name = boot
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_b
r1c2 = empty
)";

soc::AcceleratorRegistry registry() {
  soc::AcceleratorRegistry r;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 11'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    r.add(spec);
  }
  return r;
}

TEST(BootTest, FullConfigThenPreloadsInitialModules) {
  auto reg = registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), reg);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  store.add(3, "acc_a", 130'000);
  store.add(4, "acc_b", 130'000);

  runtime::BootReport report;
  sim::SimEvent done(soc.kernel());
  runtime::boot_system(soc, manager, 19'500'000,
                       {{3, "acc_a"}, {4, "acc_b"}}, &report, done);
  soc.kernel().run();

  EXPECT_TRUE(done.triggered());
  EXPECT_EQ(report.preloaded_modules, 2);
  // Full config: 19.5 MB / 16 B per cycle at 78 MHz ~ 15.6 ms.
  EXPECT_NEAR(report.full_config_seconds, 19.5e6 / 16.0 / 78e6, 1e-4);
  EXPECT_GT(report.preload_seconds, 0.0);
  EXPECT_EQ(soc.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(soc.reconf_tile(4).module(), "acc_b");
  EXPECT_EQ(manager.stats().reconfigurations, 2u);
}

TEST(BootTest, PreloadsSerializeOnThePrc) {
  auto reg = registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), reg);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  store.add(3, "acc_a", 400'000);
  store.add(4, "acc_b", 400'000);

  runtime::BootReport report;
  sim::SimEvent done(soc.kernel());
  runtime::boot_system(soc, manager, 1'000'000,
                       {{3, "acc_a"}, {4, "acc_b"}}, &report, done);
  soc.kernel().run();
  // Two 400 KB images through one ICAP: preload takes at least the two
  // ICAP streams back-to-back.
  const double icap_s =
      2.0 * 400'000.0 / soc.options().icap_bytes_per_cycle / 78e6;
  EXPECT_GE(report.preload_seconds, icap_s);
  EXPECT_GT(manager.stats().prc_wait_cycles, 0);
}

TEST(BootTest, RejectsBadArguments) {
  auto reg = registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), reg);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  sim::SimEvent done(soc.kernel());
  EXPECT_THROW(runtime::boot_system(soc, manager, 0, {}, nullptr, done),
               InvalidArgument);
}

// ------------------------------------------------------------- report

TEST(ReportTest, ContainsAllSections) {
  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(core::characterization_soc(2));
  const std::string report = core::flow_report(result, device);
  EXPECT_NE(report.find("design:   soc_2"), std::string::npos);
  EXPECT_NE(report.find("class:    1.2"), std::string::npos);
  EXPECT_NE(report.find("fully-parallel"), std::string::npos);
  EXPECT_NE(report.find("flow total"), std::string::npos);
  EXPECT_NE(report.find("conv2d"), std::string::npos);
  // Model-only run: no physical section.
  EXPECT_EQ(report.find("fmax"), std::string::npos);
}

TEST(ReportTest, PhysicalSectionWhenRouted) {
  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.pnr.placer.temperature_steps = 5;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 30;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(core::characterization_soc(3));
  const std::string report = core::flow_report(result, device);
  EXPECT_NE(report.find("fmax"), std::string::npos);
  EXPECT_NE(report.find("full bitstream"), std::string::npos);
  EXPECT_NE(report.find("pblock[cols"), std::string::npos);
}

TEST(ReportTest, WritesToFile) {
  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(core::characterization_soc(1));
  const std::string path = ::testing::TempDir() + "/report.txt";
  core::write_flow_report(result, device, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "PR-ESP implementation report");
  std::remove(path.c_str());
  EXPECT_THROW(
      core::write_flow_report(result, device, "/nonexistent/dir/r.txt"),
      InvalidArgument);
}

}  // namespace
}  // namespace presp
