// Failure injection and recovery: CRC errors on the ICAP path, partition
// blanking, and the DPR sequencing rules the architecture enforces.
#include <gtest/gtest.h>

#include "runtime/api.hpp"
#include "util/error.hpp"

namespace presp::runtime {
namespace {

const char* kSocText = R"(
[soc]
name = resilience
device = vc707
rows = 2
cols = 2

[tiles]
r0c0 = cpu
r0c1 = mem
r1c0 = aux
r1c1 = reconf:acc_a,acc_b
)";

soc::AcceleratorRegistry test_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 12'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    spec.latency.startup_cycles = 30;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

class ResilienceFixture : public ::testing::Test {
 protected:
  ResilienceFixture()
      : registry_(test_registry()),
        soc_(netlist::SocConfig::parse(kSocText), registry_),
        store_(soc_.memory()),
        manager_(soc_, store_) {
    image_a_ = &store_.add(3, "acc_a", 140'000);
    store_.add(3, "acc_b", 150'000);
    store_.add_blank(3, 120'000);
    buf_ = soc_.memory().allocate("buf", 1 << 16);
  }

  soc::AccelTask task() const {
    soc::AccelTask t;
    t.src = buf_;
    t.dst = buf_ + 32'768;
    t.items = 200;
    return t;
  }

  soc::AcceleratorRegistry registry_;
  soc::Soc soc_;
  BitstreamStore store_;
  ReconfigurationManager manager_;
  const BitstreamImage* image_a_ = nullptr;
  std::uint64_t buf_ = 0;
};

TEST_F(ResilienceFixture, CrcErrorIsRetriedTransparently) {
  soc_.memory().corrupt_blob(image_a_->address);
  sim::SimEvent done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_EQ(manager_.stats().crc_retries, 1u);
  EXPECT_EQ(soc_.aux().crc_errors(), 1u);
  // The retry succeeded: exactly one effective reconfiguration.
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(ResilienceFixture, CrcErrorLeavesPartitionUntouched) {
  // Direct DFXC interaction: a corrupted transfer must not swap the
  // module or mark the controller done.
  soc_.memory().corrupt_blob(image_a_->address);
  std::uint64_t irq = 0;
  auto proc = [&]() -> sim::Process {
    auto& cpu = soc_.cpu();
    co_await cpu.write_reg(3, soc::kRegDecouple, 1);
    co_await cpu.write_reg(2, soc::kRegDfxcBsAddr, image_a_->address);
    co_await cpu.write_reg(2, soc::kRegDfxcBsBytes, image_a_->bytes);
    co_await cpu.write_reg(2, soc::kRegDfxcTarget, 3);
    co_await cpu.write_reg(2, soc::kRegDfxcTrigger, 1);
    irq = co_await cpu.irq_from(2).receive();
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(irq & 0xFF, soc::kIrqReconfError);
  EXPECT_TRUE(soc_.reconf_tile(3).module().empty());
  EXPECT_EQ(soc_.aux().reconfigurations(), 0u);
  // DFXC reports the error state until re-triggered.
  std::uint64_t status = 0;
  auto read_status = [&]() -> sim::Process {
    status = co_await soc_.cpu().read_reg(2, soc::kRegDfxcStatus);
  };
  read_status();
  soc_.kernel().run();
  EXPECT_EQ(status, 2u);
}

TEST_F(ResilienceFixture, PersistentCorruptionExhaustsRetries) {
  // Re-corrupt on every fetch by interposing: corrupt, run, corrupt again
  // from a parallel process each time the DFXC reports an error.
  soc_.memory().corrupt_blob(image_a_->address);
  auto saboteur = [&]() -> sim::Process {
    // Each time the blob's corruption is consumed, re-arm it (a stuck
    // upstream corruption source).
    while (true) {
      co_await sim::Delay(soc_.kernel(), 500);
      soc_.memory().corrupt_blob(image_a_->address);
    }
  };
  saboteur();
  sim::SimEvent done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  EXPECT_THROW(soc_.kernel().run_until(50'000'000), Error);
  EXPECT_FALSE(done.triggered());
  EXPECT_GE(manager_.stats().crc_retries, 2u);
}

TEST_F(ResilienceFixture, ClearPartitionBlanksAndUnloadsDriver) {
  sim::SimEvent loaded(soc_.kernel());
  manager_.run(3, "acc_a", task(), loaded);
  soc_.kernel().run();
  ASSERT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  ASSERT_EQ(manager_.driver(3), "acc_a");

  sim::SimEvent cleared(soc_.kernel());
  manager_.clear_partition(3, cleared);
  soc_.kernel().run();
  EXPECT_TRUE(cleared.triggered());
  EXPECT_TRUE(soc_.reconf_tile(3).module().empty());
  EXPECT_TRUE(manager_.driver(3).empty());

  // Starting the accelerator on a blanked partition is rejected by the
  // wrapper.
  const auto rejected0 = soc_.reconf_tile(3).rejected_commands();
  auto poke = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, soc::kRegCmd, 1);
  };
  poke();
  soc_.kernel().run();
  EXPECT_EQ(soc_.reconf_tile(3).rejected_commands(), rejected0 + 1);
}

TEST_F(ResilienceFixture, ClearPartitionOnEmptyTileIsIdempotent) {
  sim::SimEvent cleared(soc_.kernel());
  manager_.clear_partition(3, cleared);
  soc_.kernel().run();
  EXPECT_TRUE(cleared.triggered());
  EXPECT_EQ(soc_.aux().reconfigurations(), 0u);  // nothing to do
}

TEST_F(ResilienceFixture, BlankedPartitionDropsConfiguredPower) {
  sim::SimEvent loaded(soc_.kernel());
  manager_.run(3, "acc_a", task(), loaded);
  soc_.kernel().run();
  const double conf_before = soc_.energy().breakdown().configured;

  sim::SimEvent cleared(soc_.kernel());
  manager_.clear_partition(3, cleared);
  soc_.kernel().run();

  // Idle for a while: configured energy must stay flat once blanked.
  const double conf_at_clear = soc_.energy().breakdown().configured;
  auto idle = [&]() -> sim::Process {
    co_await sim::Delay(soc_.kernel(), 10'000'000);
  };
  idle();
  soc_.kernel().run();
  const double conf_after = soc_.energy().breakdown().configured;
  EXPECT_GT(conf_at_clear, 0.0);
  EXPECT_GT(conf_before, 0.0);
  EXPECT_NEAR(conf_after, conf_at_clear, 1e-9);
}

TEST_F(ResilienceFixture, DfxcBusyIgnoresSecondTrigger) {
  // Trigger a long reconfiguration, then trigger again while busy: the
  // second trigger must be ignored (DFXC_STATUS == 1).
  auto proc = [&]() -> sim::Process {
    auto& cpu = soc_.cpu();
    co_await cpu.write_reg(3, soc::kRegDecouple, 1);
    co_await cpu.write_reg(2, soc::kRegDfxcBsAddr, image_a_->address);
    co_await cpu.write_reg(2, soc::kRegDfxcBsBytes, image_a_->bytes);
    co_await cpu.write_reg(2, soc::kRegDfxcTarget, 3);
    co_await cpu.write_reg(2, soc::kRegDfxcTrigger, 1);
    co_await cpu.write_reg(2, soc::kRegDfxcTrigger, 1);  // while busy
    (void)co_await cpu.irq_from(2).receive();
    co_await cpu.write_reg(3, soc::kRegDecouple, 0);
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);
}

}  // namespace
}  // namespace presp::runtime
