// Failure injection and recovery: CRC errors on the ICAP path, partition
// blanking, watchdog recovery from injected stalls/hangs/SEUs, tile
// quarantine + re-routing, and the DPR sequencing rules the architecture
// enforces.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "runtime/api.hpp"
#include "util/error.hpp"

namespace presp::runtime {
namespace {

const char* kSocText = R"(
[soc]
name = resilience
device = vc707
rows = 2
cols = 2

[tiles]
r0c0 = cpu
r0c1 = mem
r1c0 = aux
r1c1 = reconf:acc_a,acc_b
)";

soc::AcceleratorRegistry test_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 12'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    spec.latency.startup_cycles = 30;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

class ResilienceFixture : public ::testing::Test {
 protected:
  ResilienceFixture()
      : registry_(test_registry()),
        soc_(netlist::SocConfig::parse(kSocText), registry_),
        store_(soc_.memory()),
        manager_(soc_, store_) {
    image_a_ = &store_.add(3, "acc_a", 140'000);
    store_.add(3, "acc_b", 150'000);
    store_.add_blank(3, 120'000);
    buf_ = soc_.memory().allocate("buf", 1 << 16);
  }

  soc::AccelTask task() const {
    soc::AccelTask t;
    t.src = buf_;
    t.dst = buf_ + 32'768;
    t.items = 200;
    return t;
  }

  soc::AcceleratorRegistry registry_;
  soc::Soc soc_;
  BitstreamStore store_;
  ReconfigurationManager manager_;
  const BitstreamImage* image_a_ = nullptr;
  std::uint64_t buf_ = 0;
};

TEST_F(ResilienceFixture, CrcErrorIsRetriedTransparently) {
  soc_.memory().corrupt_blob(image_a_->address);
  sim::SimEvent done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_EQ(manager_.stats().crc_retries, 1u);
  EXPECT_EQ(soc_.aux().crc_errors(), 1u);
  // The retry succeeded: exactly one effective reconfiguration.
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(ResilienceFixture, CrcErrorLeavesPartitionUntouched) {
  // Direct DFXC interaction: a corrupted transfer must not swap the
  // module or mark the controller done.
  soc_.memory().corrupt_blob(image_a_->address);
  std::uint64_t irq = 0;
  auto proc = [&]() -> sim::Process {
    auto& cpu = soc_.cpu();
    co_await cpu.write_reg(3, soc::kRegDecouple, 1);
    co_await cpu.write_reg(2, soc::kRegDfxcBsAddr, image_a_->address);
    co_await cpu.write_reg(2, soc::kRegDfxcBsBytes, image_a_->bytes);
    co_await cpu.write_reg(2, soc::kRegDfxcTarget, 3);
    co_await cpu.write_reg(2, soc::kRegDfxcTrigger, 1);
    irq = co_await cpu.irq_from(2).receive();
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(irq & 0xFF, soc::kIrqReconfError);
  EXPECT_TRUE(soc_.reconf_tile(3).module().empty());
  EXPECT_EQ(soc_.aux().reconfigurations(), 0u);
  // DFXC reports the error state until re-triggered.
  std::uint64_t status = 0;
  auto read_status = [&]() -> sim::Process {
    status = co_await soc_.cpu().read_reg(2, soc::kRegDfxcStatus);
  };
  read_status();
  soc_.kernel().run();
  EXPECT_EQ(status, 2u);
}

TEST_F(ResilienceFixture, PersistentCorruptionEscalatesInsteadOfThrowing) {
  // Re-corrupt on every fetch by interposing: corrupt, run, corrupt again
  // from a parallel process each time the DFXC reports an error. The
  // request must not throw across the coroutine: it surfaces
  // kCrcExhausted through the completion, quarantines the tile and leaves
  // the partition blanked with the greybox image.
  soc_.memory().corrupt_blob(image_a_->address);
  auto saboteur = [&]() -> sim::Process {
    // Each time the blob's corruption is consumed, re-arm it (a stuck
    // upstream corruption source).
    while (true) {
      co_await sim::Delay(soc_.kernel(), 500);
      soc_.memory().corrupt_blob(image_a_->address);
    }
  };
  saboteur();
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run_until(50'000'000);
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kCrcExhausted);
  EXPECT_FALSE(done.ok());
  EXPECT_GE(manager_.stats().crc_retries, 2u);
  EXPECT_EQ(manager_.stats().reconfigurations_failed, 1u);
  EXPECT_EQ(manager_.stats().quarantines, 1u);
  EXPECT_EQ(manager_.health().health(3), TileHealth::kQuarantined);
  // The escalation blanked the partition (the blank image's blob is a
  // different address, untouched by the saboteur) and dropped the driver.
  EXPECT_TRUE(soc_.reconf_tile(3).module().empty());
  EXPECT_TRUE(manager_.driver(3).empty());
  EXPECT_EQ(manager_.stats().runs, 0u);
}

TEST_F(ResilienceFixture, QuarantinedTileRefusesNewWork) {
  manager_.health().quarantine(3);
  Completion done(soc_.kernel());
  manager_.ensure_module(3, "acc_a", done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kQuarantined);
  // No other reconfigurable tile exists, so run() reports the same.
  Completion ran(soc_.kernel());
  manager_.run(3, "acc_a", task(), ran);
  soc_.kernel().run();
  ASSERT_TRUE(ran.triggered());
  EXPECT_EQ(ran.status(), RequestStatus::kQuarantined);
  EXPECT_EQ(manager_.stats().runs, 0u);
  // Rehabilitation re-admits the tile (as degraded) and work flows again.
  manager_.rehabilitate(3);
  EXPECT_EQ(manager_.health().health(3), TileHealth::kDegraded);
  Completion again(soc_.kernel());
  manager_.run(3, "acc_a", task(), again);
  soc_.kernel().run();
  ASSERT_TRUE(again.triggered());
  EXPECT_EQ(again.status(), RequestStatus::kOk);
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(ResilienceFixture, ClearPartitionBlanksAndUnloadsDriver) {
  sim::SimEvent loaded(soc_.kernel());
  manager_.run(3, "acc_a", task(), loaded);
  soc_.kernel().run();
  ASSERT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  ASSERT_EQ(manager_.driver(3), "acc_a");

  sim::SimEvent cleared(soc_.kernel());
  manager_.clear_partition(3, cleared);
  soc_.kernel().run();
  EXPECT_TRUE(cleared.triggered());
  EXPECT_TRUE(soc_.reconf_tile(3).module().empty());
  EXPECT_TRUE(manager_.driver(3).empty());

  // Starting the accelerator on a blanked partition is rejected by the
  // wrapper.
  const auto rejected0 = soc_.reconf_tile(3).rejected_commands();
  auto poke = [&]() -> sim::Process {
    co_await soc_.cpu().write_reg(3, soc::kRegCmd, 1);
  };
  poke();
  soc_.kernel().run();
  EXPECT_EQ(soc_.reconf_tile(3).rejected_commands(), rejected0 + 1);
}

TEST_F(ResilienceFixture, ClearPartitionOnEmptyTileIsIdempotent) {
  sim::SimEvent cleared(soc_.kernel());
  manager_.clear_partition(3, cleared);
  soc_.kernel().run();
  EXPECT_TRUE(cleared.triggered());
  EXPECT_EQ(soc_.aux().reconfigurations(), 0u);  // nothing to do
}

TEST_F(ResilienceFixture, BlankedPartitionDropsConfiguredPower) {
  sim::SimEvent loaded(soc_.kernel());
  manager_.run(3, "acc_a", task(), loaded);
  soc_.kernel().run();
  const double conf_before = soc_.energy().breakdown().configured;

  sim::SimEvent cleared(soc_.kernel());
  manager_.clear_partition(3, cleared);
  soc_.kernel().run();

  // Idle for a while: configured energy must stay flat once blanked.
  const double conf_at_clear = soc_.energy().breakdown().configured;
  auto idle = [&]() -> sim::Process {
    co_await sim::Delay(soc_.kernel(), 10'000'000);
  };
  idle();
  soc_.kernel().run();
  const double conf_after = soc_.energy().breakdown().configured;
  EXPECT_GT(conf_at_clear, 0.0);
  EXPECT_GT(conf_before, 0.0);
  EXPECT_NEAR(conf_after, conf_at_clear, 1e-9);
}

TEST_F(ResilienceFixture, DfxcBusyIgnoresSecondTrigger) {
  // Trigger a long reconfiguration, then trigger again while busy: the
  // second trigger must be dropped (nacked with ack payload 1), counted
  // in the DFXC's dropped-trigger stat, and must not disturb the
  // in-flight transfer.
  std::uint64_t second_ack = 0;
  auto proc = [&]() -> sim::Process {
    auto& cpu = soc_.cpu();
    co_await cpu.write_reg(3, soc::kRegDecouple, 1);
    co_await cpu.write_reg(2, soc::kRegDfxcBsAddr, image_a_->address);
    co_await cpu.write_reg(2, soc::kRegDfxcBsBytes, image_a_->bytes);
    co_await cpu.write_reg(2, soc::kRegDfxcTarget, 3);
    co_await cpu.write_reg(2, soc::kRegDfxcTrigger, 1);
    second_ack = co_await cpu.write_reg(2, soc::kRegDfxcTrigger, 1);
    (void)co_await cpu.irq_from(2).receive();
    co_await cpu.write_reg(3, soc::kRegDecouple, 0);
  };
  proc();
  soc_.kernel().run();
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);
  EXPECT_EQ(second_ack, 1u);  // nack: the trigger was refused
  EXPECT_EQ(soc_.aux().dropped_triggers(), 1u);
}

// ---------------------------------------------------------------------------
// Injected cross-layer faults (src/fault): watchdog recovery, health
// transitions and re-routing.

class FaultDrillFixture : public ResilienceFixture {
 protected:
  FaultDrillFixture() { soc_.set_fault_injector(&injector_); }

  void arm(fault::FaultSite site, int tile, std::uint64_t trigger_count = 1,
           int plane = -1) {
    injector_.arm({site, tile, plane, trigger_count});
  }

  fault::FaultInjector injector_;
};

TEST_F(FaultDrillFixture, WatchdogRecoversIcapStall) {
  arm(fault::FaultSite::kIcapStall, 3);
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_EQ(done.tile(), 3);
  // The stalled transfer was detected by the reconfiguration watchdog,
  // aborted with a DFXC reset, and retried successfully.
  EXPECT_GE(manager_.stats().watchdog_fires, 1u);
  EXPECT_EQ(soc_.aux().icap_stalls(), 1u);
  EXPECT_GE(soc_.aux().resets(), 1u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(manager_.stats().runs, 1u);
  EXPECT_EQ(soc_.reconf_tile(3).invocations(), 1u);
  EXPECT_EQ(injector_.pending(), 0u);
  EXPECT_GT(manager_.stats().recovery_cycles, 0);
}

TEST_F(FaultDrillFixture, WatchdogRecoversDfxcHang) {
  arm(fault::FaultSite::kDfxcHang, 3);
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_GE(manager_.stats().watchdog_fires, 1u);
  EXPECT_GE(soc_.aux().resets(), 1u);
  // The hung attempt never swapped the module; only the retry counts.
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(FaultDrillFixture, HungAcceleratorIsRepairedByRewrite) {
  arm(fault::FaultSite::kAccelHang, 3);
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_EQ(soc_.reconf_tile(3).hung_runs(), 1u);
  EXPECT_EQ(manager_.stats().hung_run_repairs, 1u);
  EXPECT_GE(manager_.stats().watchdog_fires, 1u);
  // The wedged datapath never computed: exactly one completed invocation.
  EXPECT_EQ(soc_.reconf_tile(3).invocations(), 1u);
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(FaultDrillFixture, StuckDecouplerReleaseIsRetried) {
  arm(fault::FaultSite::kDecouplerStuck, 3);
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_EQ(soc_.reconf_tile(3).stuck_decouples(), 1u);
  EXPECT_EQ(manager_.stats().stuck_decouple_retries, 1u);
  EXPECT_FALSE(soc_.reconf_tile(3).decoupled());
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(FaultDrillFixture, SeuAtStartIsRepairedByRewrite) {
  arm(fault::FaultSite::kSeuFlip, 3);
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_EQ(soc_.reconf_tile(3).seu_upsets(), 1u);
  EXPECT_FALSE(soc_.reconf_tile(3).config_upset());  // rewrite cleared it
  EXPECT_EQ(manager_.stats().cmd_retries, 1u);
  // Initial load + repair rewrite.
  EXPECT_EQ(soc_.aux().reconfigurations(), 2u);
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(FaultDrillFixture, ScrubDetectsAndRepairsSeu) {
  Completion prep(soc_.kernel());
  manager_.ensure_module(3, "acc_a", prep);
  soc_.kernel().run();
  ASSERT_TRUE(prep.ok());

  soc_.reconf_tile(3).inject_seu();
  Completion scrubbed(soc_.kernel());
  manager_.scrub(3, scrubbed);
  soc_.kernel().run();
  ASSERT_TRUE(scrubbed.triggered());
  EXPECT_EQ(scrubbed.status(), RequestStatus::kOk);
  EXPECT_EQ(manager_.stats().scrubs, 1u);
  EXPECT_EQ(manager_.stats().seu_repairs, 1u);
  EXPECT_GE(manager_.stats().readbacks, 1u);
  EXPECT_FALSE(soc_.reconf_tile(3).config_upset());
  EXPECT_EQ(soc_.reconf_tile(3).module(), "acc_a");

  // A second scrub finds a clean partition: no extra repair.
  Completion clean(soc_.kernel());
  manager_.scrub(3, clean);
  soc_.kernel().run();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(manager_.stats().scrubs, 2u);
  EXPECT_EQ(manager_.stats().seu_repairs, 1u);
}

TEST_F(FaultDrillFixture, LostDoneInterruptRecoveredFromStatusRegister) {
  // Poison the second packet on the interrupt plane: the first is the
  // reconfiguration-done interrupt, the second the accelerator's done.
  arm(fault::FaultSite::kNocCorrupt, -1, 2,
      static_cast<int>(noc::Plane::kInterrupt));
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_EQ(soc_.cpu().dropped_irqs(), 1u);
  EXPECT_GE(manager_.stats().watchdog_fires, 1u);
  EXPECT_EQ(manager_.stats().lost_irq_recoveries, 1u);
  // Non-idempotence guard: the status register was accepted instead of
  // re-running the kernel.
  EXPECT_EQ(soc_.reconf_tile(3).invocations(), 1u);
  EXPECT_EQ(manager_.stats().runs, 1u);
}

TEST_F(FaultDrillFixture, LostReconfInterruptRecoveredFromStatusRegister) {
  arm(fault::FaultSite::kNocCorrupt, -1, 1,
      static_cast<int>(noc::Plane::kInterrupt));
  Completion done(soc_.kernel());
  manager_.run(3, "acc_a", task(), done);
  soc_.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_GE(manager_.stats().watchdog_fires, 1u);
  EXPECT_GE(manager_.stats().lost_irq_recoveries, 1u);
  EXPECT_EQ(soc_.aux().reconfigurations(), 1u);  // not re-transferred
  EXPECT_EQ(manager_.stats().runs, 1u);
}

// Two reconfigurable tiles: exhausting the retry budget on one quarantines
// it and re-routes the request to the healthy sibling.
const char* kRerouteSocText = R"(
[soc]
name = reroute
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_b
r1c2 = empty
)";

TEST(QuarantineReroute, BudgetExhaustionReroutesToHealthyTile) {
  soc::AcceleratorRegistry registry = test_registry();
  soc::Soc soc(netlist::SocConfig::parse(kRerouteSocText), registry);
  BitstreamStore store(soc.memory());
  for (const int tile : {3, 4}) {
    store.add(tile, "acc_a", 140'000);
    store.add_blank(tile, 120'000);
  }
  ManagerOptions options;
  options.watchdog_run_cycles = 200'000;  // keep the drill short
  ReconfigurationManager manager(soc, store, options);
  fault::FaultInjector injector;
  soc.set_fault_injector(&injector);
  // retry_budget = 3: the fourth consecutive hang on tile 3 exhausts it.
  for (int i = 0; i < 4; ++i)
    injector.arm({fault::FaultSite::kAccelHang, 3, -1, 1});

  const std::uint64_t buf = soc.memory().allocate("buf", 1 << 16);
  soc::AccelTask task;
  task.src = buf;
  task.dst = buf + 32'768;
  task.items = 200;

  Completion done(soc.kernel());
  manager.run(3, "acc_a", task, done);
  soc.kernel().run();
  ASSERT_TRUE(done.triggered());
  EXPECT_EQ(done.status(), RequestStatus::kOk);
  EXPECT_EQ(done.tile(), 4);  // re-routed to the healthy sibling
  EXPECT_EQ(manager.stats().reroutes, 1u);
  EXPECT_EQ(manager.stats().quarantines, 1u);
  EXPECT_EQ(manager.health().health(3), TileHealth::kQuarantined);
  EXPECT_TRUE(manager.health().usable(4));
  // Repairs ran for the three in-budget hangs; the fourth escalated.
  EXPECT_EQ(manager.stats().hung_run_repairs, 3u);
  // The quarantined tile was left blanked; the sibling hosts the module.
  EXPECT_TRUE(soc.reconf_tile(3).module().empty());
  EXPECT_EQ(soc.reconf_tile(4).module(), "acc_a");
  EXPECT_EQ(soc.reconf_tile(4).invocations(), 1u);
  EXPECT_EQ(manager.stats().runs, 1u);
  EXPECT_EQ(injector.pending(), 0u);

  // ensure_module on the quarantined tile reports kQuarantined without
  // touching the hardware.
  const std::uint64_t reconfs = soc.aux().reconfigurations();
  Completion refused(soc.kernel());
  manager.ensure_module(3, "acc_a", refused);
  soc.kernel().run();
  ASSERT_TRUE(refused.triggered());
  EXPECT_EQ(refused.status(), RequestStatus::kQuarantined);
  EXPECT_EQ(soc.aux().reconfigurations(), reconfs);
}

}  // namespace
}  // namespace presp::runtime
