// Tests for the independent placement verifier and the readback
// verification path.
#include <gtest/gtest.h>

#include "pnr/verify.hpp"
#include "runtime/api.hpp"

namespace presp {
namespace {

// ---------------------------------------------------- placement verify

netlist::Netlist two_cell_netlist() {
  netlist::Netlist nl("v");
  nl.add_cell({"a", netlist::CellKind::kLogic, {100, 0, 0, 0}, ""});
  nl.add_cell({"b", netlist::CellKind::kLogic, {100, 0, 0, 0}, ""});
  nl.add_net({"n", 0, {1}, 8});
  return nl;
}

int first_clb_column(const fabric::Device& device) {
  for (int c = 0; c < device.num_columns(); ++c)
    if (device.column_type(c) == fabric::ColumnType::kClb) return c;
  return -1;
}

TEST(PlacementVerifyTest, AcceptsLegalPlacement) {
  const auto device = fabric::Device::vc707();
  const auto nl = two_cell_netlist();
  const int clb = first_clb_column(device);
  pnr::Placement placement;
  placement.locations = {{clb, 0}, {clb, 1}};
  EXPECT_TRUE(pnr::placement_legal(device, nl, placement));
}

TEST(PlacementVerifyTest, FlagsUnplacedAndOutOfBounds) {
  const auto device = fabric::Device::vc707();
  const auto nl = two_cell_netlist();
  pnr::Placement placement;
  placement.locations = {{-1, -1}, {device.num_columns() + 3, 0}};
  const auto violations = pnr::verify_placement(device, nl, placement);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].rule, "pnr.unplaced-cell");
  EXPECT_EQ(violations[0].loc.object, "cell.a");
  EXPECT_EQ(violations[1].rule, "pnr.out-of-bounds");
  EXPECT_EQ(violations[1].severity, lint::Severity::kError);
}

TEST(PlacementVerifyTest, FlagsClockSpineAndCapacity) {
  const auto device = fabric::Device::vc707();
  int clock_col = -1;
  for (int c = 0; c < device.num_columns(); ++c)
    if (device.column_type(c) == fabric::ColumnType::kClock) clock_col = c;
  netlist::Netlist nl("v");
  nl.add_cell({"spine", netlist::CellKind::kLogic, {50, 0, 0, 0}, ""});
  nl.add_cell({"fat", netlist::CellKind::kLogic, {500, 0, 0, 0}, ""});
  const int clb = first_clb_column(device);
  pnr::Placement placement;
  placement.locations = {{clock_col, 0}, {clb, 0}};
  const auto violations = pnr::verify_placement(device, nl, placement);
  bool spine = false;
  bool capacity = false;
  for (const auto& v : violations) {
    spine |= v.rule == "pnr.illegal-column";
    capacity |= v.rule == "pnr.capacity-overflow";
  }
  EXPECT_TRUE(spine);
  EXPECT_TRUE(capacity);  // 500 LUTs in a 400-LUT cell
}

TEST(PlacementVerifyTest, RegionAndKeepoutRules) {
  const auto device = fabric::Device::vc707();
  const auto nl = two_cell_netlist();
  const int clb = first_clb_column(device);
  pnr::Placement placement;
  placement.locations = {{clb, 0}, {clb, 1}};
  pnr::PlacementConstraints constraints;
  constraints.region = fabric::Pblock{clb, clb, 0, 0};  // row 1 is outside
  auto violations =
      pnr::verify_placement(device, nl, placement, constraints);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "pnr.outside-region");
  EXPECT_EQ(violations[0].loc.object, "cell.b");

  pnr::PlacementConstraints keepouts;
  keepouts.keepouts.push_back(fabric::Pblock{clb, clb, 1, 1});
  violations = pnr::verify_placement(device, nl, placement, keepouts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "pnr.inside-keepout");
}

TEST(PlacementVerifyTest, FixedCellsExemptFromConstraints) {
  const auto device = fabric::Device::vc707();
  const auto nl = two_cell_netlist();
  const int clb = first_clb_column(device);
  pnr::Placement placement;
  placement.locations = {{clb, 1}, {clb, 0}};
  pnr::PlacementConstraints constraints;
  constraints.region = fabric::Pblock{clb, clb, 0, 0};
  constraints.fixed.emplace_back(0, pnr::GridLoc{clb, 1});
  const auto violations =
      pnr::verify_placement(device, nl, placement, constraints);
  EXPECT_TRUE(violations.empty());
}

TEST(PlacementVerifyTest, PlacerOutputAlwaysVerifies) {
  // The optimizer's results must satisfy the independent checker.
  const auto device = fabric::Device::vc707();
  netlist::Netlist nl("big");
  for (int i = 0; i < 150; ++i)
    nl.add_cell({"c" + std::to_string(i),
                 netlist::CellKind::kLogic,
                 {180, 100, 0, 0},
                 ""});
  for (int i = 0; i + 1 < 150; ++i)
    nl.add_net({"n" + std::to_string(i), static_cast<netlist::CellId>(i),
                {static_cast<netlist::CellId>(i + 1)}, 16});
  pnr::PlacementConstraints constraints;
  constraints.keepouts.push_back(fabric::Pblock{20, 60, 0, 3});
  pnr::PlacerOptions opt;
  opt.temperature_steps = 8;
  const auto result = pnr::Placer(device, opt).place(nl, constraints);
  const auto violations =
      pnr::verify_placement(device, nl, result.placement, constraints);
  for (const auto& v : violations)
    ADD_FAILURE() << "[" << v.rule << "] " << v.message;
}

// -------------------------------------------------- readback verify

const char* kSocText = R"(
[soc]
name = readback
device = vc707
rows = 2
cols = 2

[tiles]
r0c0 = cpu
r0c1 = mem
r1c0 = aux
r1c1 = reconf:acc_a,acc_b
)";

soc::AcceleratorRegistry registry() {
  soc::AcceleratorRegistry r;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 9'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    r.add(spec);
  }
  return r;
}

TEST(ReadbackTest, VerifyPassesForResidentModule) {
  auto reg = registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), reg);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  store.add(3, "acc_a", 120'000);
  store.add(3, "acc_b", 120'000);

  sim::SimEvent loaded(soc.kernel());
  manager.ensure_module(3, "acc_a", loaded);
  soc.kernel().run();

  bool ok = false;
  sim::SimEvent done(soc.kernel());
  manager.verify_partition(3, "acc_a", &ok, done);
  soc.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_TRUE(ok);
  EXPECT_EQ(manager.stats().readbacks, 1u);
}

TEST(ReadbackTest, VerifyFailsForMismatchedImage) {
  auto reg = registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), reg);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  store.add(3, "acc_a", 120'000);
  store.add(3, "acc_b", 120'000);

  sim::SimEvent loaded(soc.kernel());
  manager.ensure_module(3, "acc_a", loaded);
  soc.kernel().run();

  // Verify against acc_b's golden image: the fabric holds acc_a.
  bool ok = true;
  sim::SimEvent done(soc.kernel());
  manager.verify_partition(3, "acc_b", &ok, done);
  soc.kernel().run();
  EXPECT_TRUE(done.triggered());
  EXPECT_FALSE(ok);
}

TEST(ReadbackTest, ReadbackTakesIcapTime) {
  auto reg = registry();
  soc::Soc soc(netlist::SocConfig::parse(kSocText), reg);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  store.add(3, "acc_a", 800'000);

  sim::SimEvent loaded(soc.kernel());
  manager.ensure_module(3, "acc_a", loaded);
  soc.kernel().run();
  const auto t0 = soc.kernel().now();

  bool ok = false;
  sim::SimEvent done(soc.kernel());
  manager.verify_partition(3, "acc_a", &ok, done);
  soc.kernel().run();
  EXPECT_TRUE(ok);
  const auto icap_cycles = static_cast<sim::Time>(
      800'000.0 / soc.options().icap_bytes_per_cycle);
  EXPECT_GE(soc.kernel().now() - t0, icap_cycles);
}

}  // namespace
}  // namespace presp
