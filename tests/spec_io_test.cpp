// Tests for user-defined accelerator specifications in configuration
// files (hls/spec_io).
#include <gtest/gtest.h>

#include "hls/estimator.hpp"
#include "hls/spec_io.hpp"
#include "util/error.hpp"

namespace presp::hls {
namespace {

const char* kText = R"(
[soc]
name = x

[accelerator edge_detect]
flow = vivado_hls
ops = mul16:9, add16:8
pes = 12
address_generators = 4
fsm_states = 14
buffer_luts = 900
scratchpad_kb = 32
words_in_per_item = 0.5
words_out_per_item = 0.25

[accelerator fir]
ops = mac32
pes = 64
)";

TEST(SpecIoTest, ParsesFullSection) {
  const auto cfg = Config::parse(kText);
  const KernelSpec spec =
      kernel_spec_from_config(cfg, "accelerator edge_detect");
  EXPECT_EQ(spec.name, "edge_detect");
  EXPECT_EQ(spec.flow, HlsFlow::kVivadoHls);
  ASSERT_EQ(spec.pe_ops.size(), 2u);
  EXPECT_EQ(spec.pe_ops[0].kind, OpKind::kMul16);
  EXPECT_EQ(spec.pe_ops[0].count, 9);
  EXPECT_EQ(spec.pe_ops[1].kind, OpKind::kAdd16);
  EXPECT_EQ(spec.num_pes, 12);
  EXPECT_EQ(spec.scratchpad_bytes, 32 * 1024);
  EXPECT_DOUBLE_EQ(spec.words_in_per_item, 0.5);
}

TEST(SpecIoTest, DefaultsApplied) {
  const auto cfg = Config::parse(kText);
  const KernelSpec spec = kernel_spec_from_config(cfg, "accelerator fir");
  EXPECT_EQ(spec.flow, HlsFlow::kStratusHls);
  EXPECT_EQ(spec.pe_ops.size(), 1u);
  EXPECT_EQ(spec.pe_ops[0].count, 1);  // bare token
  EXPECT_EQ(spec.address_generators, 1);
  EXPECT_EQ(spec.fsm_states, 8);
}

TEST(SpecIoTest, RegistersAllSectionsIntoLibrary) {
  const auto cfg = Config::parse(kText);
  auto lib = netlist::ComponentLibrary::with_builtins();
  const auto specs = register_kernels_from_config(cfg, lib);
  EXPECT_EQ(specs.size(), 2u);
  EXPECT_TRUE(lib.has("edge_detect"));
  EXPECT_TRUE(lib.has("fir"));
  EXPECT_TRUE(lib.get("fir").reconfigurable);
  EXPECT_EQ(lib.get("fir").resources.luts,
            estimate(specs[1]).resources.luts);
}

TEST(SpecIoTest, RoundTripThroughConfig) {
  const auto cfg = Config::parse(kText);
  const KernelSpec spec =
      kernel_spec_from_config(cfg, "accelerator edge_detect");
  Config out;
  kernel_spec_to_config(spec, out);
  const KernelSpec again =
      kernel_spec_from_config(out, "accelerator edge_detect");
  EXPECT_EQ(again.num_pes, spec.num_pes);
  EXPECT_EQ(again.pe_ops.size(), spec.pe_ops.size());
  EXPECT_EQ(again.scratchpad_bytes, spec.scratchpad_bytes);
  EXPECT_EQ(estimate(again).resources, estimate(spec).resources);
}

TEST(SpecIoTest, OperatorTableCoversEveryKind) {
  // to_string and op_kind_from_string must be inverses for all operators.
  for (int k = 0; k <= static_cast<int>(OpKind::kLutFunc); ++k) {
    const auto kind = static_cast<OpKind>(k);
    EXPECT_EQ(op_kind_from_string(to_string(kind)), kind);
  }
}

TEST(SpecIoTest, MalformedInputsRejected) {
  EXPECT_THROW(parse_op("bogus:2"), ConfigError);
  EXPECT_THROW(parse_op("mac16:0"), ConfigError);
  EXPECT_THROW(parse_op("mac16:x"), ConfigError);

  auto lib = netlist::ComponentLibrary::with_builtins();
  // Missing pes.
  EXPECT_THROW(register_kernels_from_config(
                   Config::parse("[accelerator a]\nops = fadd\n"), lib),
               ConfigError);
  // No ops.
  EXPECT_THROW(register_kernels_from_config(
                   Config::parse("[accelerator b]\nops = \npes = 2\n"),
                   lib),
               ConfigError);
  // Unknown flow.
  EXPECT_THROW(
      register_kernels_from_config(
          Config::parse(
              "[accelerator c]\nops = fadd\npes = 2\nflow = quartus\n"),
          lib),
      ConfigError);
  // Nameless section.
  EXPECT_THROW(kernel_spec_from_config(
                   Config::parse("[accelerator ]\nops = fadd\npes = 1\n"),
                   "accelerator "),
               ConfigError);
}

}  // namespace
}  // namespace presp::hls
