// Unit tests for the task-level execution engine: work-stealing pool,
// deterministically-chunked parallel_for, nested fork-join groups, and the
// TaskGraph DAG scheduler (dependencies, priorities, cancellation,
// exception propagation, per-task timing).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"

namespace presp::exec {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.stats().executed, 1000u);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitFromInsideATaskIsExecuted) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i)
      pool.submit([&count] { ++count; });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount) {
  const auto chunks_with = [](ThreadPool* pool) {
    std::mutex mutex;
    std::vector<std::pair<long long, long long>> chunks;
    parallel_for(pool, 3, 1000, 64, [&](long long lo, long long hi) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool pool(4);
  const auto serial = chunks_with(nullptr);
  const auto parallel = chunks_with(&pool);
  EXPECT_EQ(serial, parallel);
  // Exact cover of [3, 1000) in 64-wide chunks.
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.front().first, 3);
  EXPECT_EQ(serial.back().second, 1000);
  for (std::size_t i = 1; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].first, serial[i - 1].second);
}

TEST(ParallelFor, ChunkIndexedReductionIsBitIdentical) {
  // The contract every kernel reduction relies on: per-chunk partials
  // folded in chunk order give the same floating-point result at any
  // parallelism level.
  std::vector<float> data(100'000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = 1.0f / static_cast<float>(i + 1);
  constexpr long long kGrain = 1 << 12;
  const auto reduce_with = [&](ThreadPool* pool) {
    const long long n = static_cast<long long>(data.size());
    std::vector<double> partial(
        static_cast<std::size_t>((n + kGrain - 1) / kGrain), 0.0);
    parallel_for(pool, 0, n, kGrain, [&](long long lo, long long hi) {
      double acc = 0.0;
      for (long long i = lo; i < hi; ++i)
        acc += static_cast<double>(data[static_cast<std::size_t>(i)]);
      partial[static_cast<std::size_t>(lo / kGrain)] = acc;
    });
    double sum = 0.0;
    for (const double p : partial) sum += p;
    return sum;
  };
  ThreadPool two(2);
  ThreadPool eight(8);
  const double serial = reduce_with(nullptr);
  EXPECT_EQ(serial, reduce_with(&two));
  EXPECT_EQ(serial, reduce_with(&eight));
}

TEST(TaskGroup, NestedForkJoinFromInsideAPoolTask) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &leaves] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j)
        inner.run([&leaves] { ++leaves; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskGroup, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int order = 0;
  group.run([&] { EXPECT_EQ(order++, 0); });
  group.run([&] { EXPECT_EQ(order++, 1); });
  group.wait();
  EXPECT_EQ(order, 2);
}

TEST(TaskGraph, DiamondDependenciesRespected) {
  std::mutex mutex;
  std::vector<char> order;
  const auto record = [&](char c) {
    std::lock_guard<std::mutex> lock(mutex);
    order.push_back(c);
  };
  TaskGraph graph;
  const TaskId a = graph.add("a", [&] { record('a'); });
  const TaskId b = graph.add("b", [&] { record('b'); }, {a});
  const TaskId c = graph.add("c", [&] { record('c'); }, {a});
  const TaskId d = graph.add("d", [&] { record('d'); }, {b, c});

  ThreadPool pool(4);
  graph.run(&pool);

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 'a');
  EXPECT_EQ(order.back(), 'd');
  for (const TaskId id : {a, b, c, d})
    EXPECT_EQ(graph.report(id).status, TaskStatus::kDone);
  EXPECT_GE(graph.makespan_seconds(), 0.0);
  EXPECT_GE(graph.busy_seconds(), 0.0);
}

TEST(TaskGraph, SerialRunFollowsPriorityThenInsertionOrder) {
  std::vector<int> order;
  TaskGraph graph;
  graph.add("low", [&] { order.push_back(0); }, {}, 1);
  graph.add("high", [&] { order.push_back(1); }, {}, 10);
  graph.add("mid-first", [&] { order.push_back(2); }, {}, 5);
  graph.add("mid-second", [&] { order.push_back(3); }, {}, 5);
  graph.run(nullptr);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(TaskGraph, CancelSkipsNotYetStartedTasks) {
  TaskGraph graph;
  int ran = 0;
  const TaskId first = graph.add("first", [&] {
    ++ran;
    graph.cancel();
  });
  const TaskId second = graph.add("second", [&] { ++ran; }, {first});
  const TaskId third = graph.add("third", [&] { ++ran; }, {second});
  graph.run(nullptr);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(graph.cancelled());
  EXPECT_EQ(graph.report(first).status, TaskStatus::kDone);
  EXPECT_EQ(graph.report(second).status, TaskStatus::kCancelled);
  EXPECT_EQ(graph.report(third).status, TaskStatus::kCancelled);
}

TEST(TaskGraph, FirstExceptionCancelsRestAndRethrows) {
  TaskGraph graph;
  int ran = 0;
  const TaskId boom = graph.add(
      "boom", [] { throw std::runtime_error("synthesis failed"); });
  const TaskId after = graph.add("after", [&] { ++ran; }, {boom});
  EXPECT_THROW(graph.run(nullptr), std::runtime_error);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(graph.report(boom).status, TaskStatus::kFailed);
  EXPECT_EQ(graph.report(after).status, TaskStatus::kCancelled);
}

TEST(TaskGraph, ExceptionPropagatesFromPoolRun) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<int> ran{0};
  const TaskId boom = graph.add(
      "boom", [] { throw std::runtime_error("route failed"); });
  for (int i = 0; i < 8; ++i)
    graph.add("dep" + std::to_string(i), [&ran] { ++ran; }, {boom});
  EXPECT_THROW(graph.run(&pool), std::runtime_error);
  // Everything downstream of the failure was skipped.
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, RecordsPerTaskTiming) {
  TaskGraph graph;
  const TaskId slow = graph.add("slow", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  const TaskId fast = graph.add("fast", [] {}, {slow});
  graph.run(nullptr);
  EXPECT_GE(graph.report(slow).seconds, 0.004);
  // `fast` started after `slow` finished.
  EXPECT_GE(graph.report(fast).start_seconds,
            graph.report(slow).start_seconds + graph.report(slow).seconds -
                1e-9);
  EXPECT_GE(graph.makespan_seconds(), graph.report(slow).seconds);
  EXPECT_GE(graph.busy_seconds(), graph.report(slow).seconds);
  EXPECT_EQ(graph.report(slow).name, "slow");
}

TEST(TaskGraph, RunTwiceThrows) {
  TaskGraph graph;
  graph.add("t", [] {});
  graph.run(nullptr);
  EXPECT_THROW(graph.run(nullptr), std::logic_error);
}

TEST(TaskGraph, StealingActuallyHappensUnderImbalance) {
  // One long chain submitted by a single producer plus many small tasks:
  // with 4 workers some tasks must migrate. This is a smoke test that the
  // deques + steal path work; counts are nondeterministic by design.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 256; ++i)
    group.run([&count] {
      volatile int x = 0;
      for (int j = 0; j < 1000; ++j) x = x + j;
      ++count;
    });
  group.wait();
  EXPECT_EQ(count.load(), 256);
  EXPECT_EQ(pool.stats().executed, 256u);
}

TEST(ThreadPool, MutexDequeBaselineExecutesIdentically) {
  ThreadPool::Options options;
  options.threads = 4;
  options.mutex_deques = true;
  ThreadPool pool(options);
  EXPECT_TRUE(pool.mutex_deques());
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 512; ++i) group.run([&count] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 512);
  EXPECT_EQ(pool.stats().executed, 512u);
}

TEST(ThreadPool, LockFreeIsTheDefaultUnlessBuildFlagSet) {
  ThreadPool pool(2);
#if defined(PRESP_EXEC_MUTEX_DEQUE)
  EXPECT_TRUE(pool.mutex_deques());
#else
  EXPECT_FALSE(pool.mutex_deques());
#endif
}

TEST(ThreadPool, StatsExposeStealFailuresAndParkTransitions) {
  ThreadPool pool(4);
  {
    // Burst of work, then a quiet period: workers must park, and their
    // empty-probe sweeps must register as steal failures.
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i)
      group.run([] {
        volatile int x = 0;
        for (int j = 0; j < 500; ++j) x = x + j;
      });
    group.wait();
  }
  pool.wait_idle();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.executed, 64u);
  // Workers that raced for the last tasks probed empty deques.
  EXPECT_GT(stats.steal_failures, 0u);
  // Unparks never exceed parks (a park must precede its unpark).
  EXPECT_LE(stats.unparks, stats.parks + 4);
}

}  // namespace
}  // namespace presp::exec
