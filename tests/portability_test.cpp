// Cross-device portability (the paper's flow targets VC707, VCU118 and
// VCU128), configuration file I/O, floorplan visualization, and flow
// timing closure reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "floorplan/visualize.hpp"
#include "netlist/config_io.hpp"
#include "util/log.hpp"

namespace presp {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

// ------------------------------------------------------- device sweep

class DeviceSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DeviceSweep, FloorplanLegalOnEveryBoard) {
  const fabric::Device device = std::string(GetParam()) == "vc707"
                                    ? fabric::Device::vc707()
                                    : (std::string(GetParam()) == "vcu118"
                                           ? fabric::Device::vcu118()
                                           : fabric::Device::vcu128());
  const floorplan::Floorplanner planner(device);
  std::vector<floorplan::PartitionRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back({"RT_" + std::to_string(i + 1),
                    {30'000 + 2'000 * i, 30'000, 16, 64}});
  floorplan::FloorplanOptions opt;
  opt.refine_iterations = 40;
  const auto plan = planner.plan(reqs, {90'000, 90'000, 200, 100}, opt);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(planner.legal(plan.pblocks[i], reqs[i].demand));
    for (std::size_t j = i + 1; j < reqs.size(); ++j)
      EXPECT_FALSE(plan.pblocks[i].overlaps(plan.pblocks[j]));
  }
}

TEST_P(DeviceSweep, FlowRunsEndToEnd) {
  const std::string name = GetParam();
  const fabric::Device device =
      name == "vc707" ? fabric::Device::vc707()
                      : (name == "vcu118" ? fabric::Device::vcu118()
                                          : fabric::Device::vcu128());
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  auto config = core::characterization_soc(2);
  config.device = name;
  const auto result = flow.run(config);
  EXPECT_GT(result.total_minutes, 0.0);
  EXPECT_EQ(result.plan.pblocks.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Boards, DeviceSweep,
                         ::testing::Values("vc707", "vcu118", "vcu128"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(DeviceSweepTest, BiggerDeviceShrinksKappaAndChangesClass) {
  // The same SoC on a 4x bigger part: static fraction drops, gamma is
  // unchanged, and the kappa >> alpha relation (a ratio) is also
  // unchanged — so the class is stable but the absolute pressure drops.
  const auto lib = core::characterization_library();
  const auto rtl = netlist::elaborate(core::characterization_soc(2), lib);
  const auto small = fabric::Device::vc707();
  const auto big = fabric::Device::vcu118();
  const auto m_small = core::compute_metrics(rtl, lib, small);
  const auto m_big = core::compute_metrics(rtl, lib, big);
  EXPECT_LT(m_big.kappa, m_small.kappa * 0.3);
  EXPECT_NEAR(m_big.gamma, m_small.gamma, 1e-9);
  EXPECT_EQ(core::classify(m_small), core::classify(m_big));
}

// ------------------------------------------------------- timing report

TEST(FlowTimingTest, PhysicalRunReportsFmaxAndMeetsTarget) {
  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.pnr.placer.temperature_steps = 6;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 40;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(core::characterization_soc(3));
  ASSERT_TRUE(result.physical_ok);
  EXPECT_GT(result.achieved_fmax_mhz, 0.0);
  // The paper's system runs at 78 MHz; the routed design must close it.
  EXPECT_TRUE(result.timing_met)
      << "fmax " << result.achieved_fmax_mhz << " MHz";
}

TEST(FlowTimingTest, ModelOnlyRunReportsNoTiming) {
  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  const auto result = flow.run(core::characterization_soc(3));
  EXPECT_EQ(result.achieved_fmax_mhz, 0.0);
  EXPECT_FALSE(result.timing_met);
}

// --------------------------------------------------------- config I/O

TEST(ConfigIoTest, SaveLoadRoundTrip) {
  const auto config = core::characterization_soc(2);
  const std::string path = ::testing::TempDir() + "/soc2.esp_config";
  netlist::save_soc_config(config, path);
  const auto loaded = netlist::load_soc_config(path);
  EXPECT_EQ(loaded.name, config.name);
  EXPECT_EQ(loaded.rows, config.rows);
  EXPECT_EQ(loaded.num_reconfigurable_partitions(),
            config.num_reconfigurable_partitions());
  for (std::size_t i = 0; i < config.tiles.size(); ++i) {
    EXPECT_EQ(loaded.tiles[i].type, config.tiles[i].type);
    EXPECT_EQ(loaded.tiles[i].accelerators, config.tiles[i].accelerators);
  }
  std::remove(path.c_str());
}

TEST(ConfigIoTest, MissingFileReported) {
  EXPECT_THROW(netlist::load_soc_config("/nonexistent/dir/x.cfg"),
               InvalidArgument);
}

TEST(ConfigIoTest, MalformedFileReported) {
  const std::string path = ::testing::TempDir() + "/bad.esp_config";
  std::ofstream(path) << "[soc\nrows=2\n";
  EXPECT_THROW(netlist::load_soc_config(path), ConfigError);
  std::remove(path.c_str());
}

// ------------------------------------------------------ visualization

TEST(VisualizeTest, RendersGridWithPblockLetters) {
  const auto device = fabric::Device::vc707();
  const std::vector<fabric::Pblock> pblocks{{5, 30, 0, 1}, {40, 70, 2, 2}};
  const std::string art = floorplan::visualize(
      device, pblocks, {"RT_1", "RT_2"});
  EXPECT_NE(art.find('A'), std::string::npos);
  EXPECT_NE(art.find('B'), std::string::npos);
  EXPECT_NE(art.find("A=RT_1"), std::string::npos);
  // One line per clock-region row plus the legend.
  EXPECT_EQ(static_cast<int>(std::count(art.begin(), art.end(), '\n')),
            device.region_rows() + 1);
}

TEST(VisualizeTest, ColumnTypesVisibleWithoutPblocks) {
  const auto device = fabric::Device::vc707();
  floorplan::VisualizeOptions opt;
  opt.cols_per_char = 1;
  const std::string art = floorplan::visualize(device, {}, {}, opt);
  EXPECT_NE(art.find('b'), std::string::npos);  // BRAM columns
  EXPECT_NE(art.find('d'), std::string::npos);  // DSP columns
  EXPECT_NE(art.find('|'), std::string::npos);  // clocking spine
  EXPECT_NE(art.find('i'), std::string::npos);  // I/O
}

TEST(VisualizeTest, RejectsBadOptions) {
  const auto device = fabric::Device::vc707();
  floorplan::VisualizeOptions opt;
  opt.cols_per_char = 0;
  EXPECT_THROW(floorplan::visualize(device, {}, {}, opt), InvalidArgument);
  EXPECT_THROW(floorplan::visualize(device,
                                    std::vector<fabric::Pblock>(27)),
               InvalidArgument);
}

}  // namespace
}  // namespace presp
