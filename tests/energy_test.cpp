// EnergyMeter unit tests: integration of configured power over simulated
// time, per-component accumulation, and the power-constant knobs.
#include <gtest/gtest.h>

#include "soc/energy.hpp"

namespace presp::soc {
namespace {

PowerConstants constants() {
  PowerConstants c;
  c.clock_mhz = 100.0;  // 1 cycle = 10 ns, easy arithmetic
  c.device_baseline_w = 1.0;
  c.configured_w_per_lut = 1e-6;
  c.active_w_per_lut = 2e-6;
  c.icap_w = 0.5;
  c.noc_j_per_flit = 1e-9;
  c.cpu_active_w = 0.25;
  return c;
}

TEST(EnergyMeterTest, BaselineIntegratesOverTime) {
  sim::Kernel kernel;
  EnergyMeter meter(kernel, constants());
  kernel.schedule(100'000'000, [] {});  // 1 simulated second at 100 MHz
  kernel.run();
  EXPECT_NEAR(meter.breakdown().baseline, 1.0, 1e-9);
  EXPECT_NEAR(meter.total_joules(), 1.0, 1e-9);
}

TEST(EnergyMeterTest, ConfiguredPowerFollowsLoadChanges) {
  sim::Kernel kernel;
  EnergyMeter meter(kernel, constants());
  // 100k LUTs configured for 0.5 s, then blanked for 0.5 s.
  meter.on_configured_change(100'000);
  kernel.schedule(50'000'000, [&] { meter.on_configured_change(-100'000); });
  kernel.schedule(100'000'000, [] {});
  kernel.run();
  // 100k LUT * 1 uW/LUT = 0.1 W for 0.5 s = 0.05 J.
  EXPECT_NEAR(meter.breakdown().configured, 0.05, 1e-9);
}

TEST(EnergyMeterTest, ActiveEnergyIsPerCycleNotPerWallclock) {
  sim::Kernel kernel;
  EnergyMeter meter(kernel, constants());
  meter.on_active(50'000, 1'000'000);  // 50k LUTs active for 10 ms
  // 50k * 2uW = 0.1 W for 0.01 s = 1 mJ.
  EXPECT_NEAR(meter.breakdown().active, 1e-3, 1e-12);
}

TEST(EnergyMeterTest, IcapNocCpuComponents) {
  sim::Kernel kernel;
  EnergyMeter meter(kernel, constants());
  meter.on_icap(1'000'000);    // 10 ms at 0.5 W = 5 mJ
  meter.on_noc_flits(1'000);   // 1000 flits * 1 nJ = 1 uJ
  meter.on_cpu_busy(400'000);  // 4 ms at 0.25 W = 1 mJ
  const auto b = meter.breakdown();
  EXPECT_NEAR(b.icap, 5e-3, 1e-12);
  EXPECT_NEAR(b.noc, 1e-6, 1e-15);
  EXPECT_NEAR(b.cpu, 1e-3, 1e-12);
}

TEST(EnergyMeterTest, TotalIsSumOfComponents) {
  sim::Kernel kernel;
  EnergyMeter meter(kernel, constants());
  meter.on_configured_change(10'000);
  meter.on_active(10'000, 100'000);
  meter.on_icap(100'000);
  kernel.schedule(1'000'000, [] {});
  kernel.run();
  const auto b = meter.breakdown();
  EXPECT_NEAR(meter.total_joules(),
              b.baseline + b.configured + b.active + b.icap + b.noc +
                  b.dram + b.cpu,
              1e-12);
}

TEST(EnergyMeterTest, BreakdownIsIdempotent) {
  sim::Kernel kernel;
  EnergyMeter meter(kernel, constants());
  meter.on_configured_change(10'000);
  kernel.schedule(1'000'000, [] {});
  kernel.run();
  const double first = meter.total_joules();
  const double second = meter.total_joules();
  EXPECT_DOUBLE_EQ(first, second);
}

// Power-constant sweep: energy scales linearly with each knob.
class EnergyScalingFixture : public ::testing::TestWithParam<double> {};

TEST_P(EnergyScalingFixture, ConfiguredEnergyScalesWithPerLutPower) {
  const double scale = GetParam();
  sim::Kernel kernel;
  PowerConstants c = constants();
  c.configured_w_per_lut *= scale;
  EnergyMeter meter(kernel, c);
  meter.on_configured_change(100'000);
  kernel.schedule(10'000'000, [] {});
  kernel.run();
  EXPECT_NEAR(meter.breakdown().configured, 0.01 * scale, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, EnergyScalingFixture,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace presp::soc
