// Architectural coverage beyond the paper's evaluation configurations:
// monolithic accelerator tiles, SLM tiles, the CVA6 core option, larger
// grids, and the oracle strategy extension.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "hls/library.hpp"
#include "netlist/rtl.hpp"
#include "util/log.hpp"

namespace presp {
namespace {

class QuietEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);  // NOLINT

const char* kMixedSoc = R"(
[soc]
name = mixed
device = vc707
rows = 3
cols = 3

[tiles]
r0c0 = cpu:cva6
r0c1 = mem
r0c2 = aux
r1c0 = accel:sort
r1c1 = reconf:conv2d,gemm
r1c2 = slm
r2c0 = reconf:fft
r2c1 = empty
r2c2 = mem
)";

netlist::ComponentLibrary lib() { return core::characterization_library(); }

TEST(ArchitectureTest, MonolithicAcceleratorTileIsStatic) {
  const auto library = lib();
  const auto rtl =
      netlist::elaborate(netlist::SocConfig::parse(kMixedSoc), library);
  // Two reconfigurable partitions only; the accel tile's sort is static.
  EXPECT_EQ(rtl.partitions().size(), 2u);
  const auto static_r = rtl.static_resources(library);
  // Static includes the monolithic sort accelerator.
  EXPECT_GT(static_r.luts,
            library.get("sort").resources.luts +
                library.get(netlist::ComponentLibrary::kCva6).resources.luts);
}

TEST(ArchitectureTest, Cva6CostsMoreThanLeon3) {
  const auto library = lib();
  auto leon_cfg = netlist::SocConfig::parse(kMixedSoc);
  leon_cfg.tile(0, 0).cpu_core = netlist::CpuCore::kLeon3;
  const auto rtl_cva6 =
      netlist::elaborate(netlist::SocConfig::parse(kMixedSoc), library);
  const auto rtl_leon = netlist::elaborate(leon_cfg, library);
  EXPECT_GT(rtl_cva6.static_resources(library).luts,
            rtl_leon.static_resources(library).luts + 20'000);
}

TEST(ArchitectureTest, SlmTileContributesBramHeavyStatic) {
  const auto library = lib();
  const auto rtl =
      netlist::elaborate(netlist::SocConfig::parse(kMixedSoc), library);
  const auto static_r = rtl.static_resources(library);
  EXPECT_GT(static_r.bram36,
            library.get(netlist::ComponentLibrary::kSlmTileLogic)
                .resources.bram36);
}

TEST(ArchitectureTest, MultipleMemTilesAllowed) {
  const auto library = lib();
  const auto config = netlist::SocConfig::parse(kMixedSoc);
  EXPECT_EQ(config.count(netlist::TileType::kMem), 2);
  EXPECT_NO_THROW(netlist::elaborate(config, library));
}

TEST(ArchitectureTest, FlowHandlesMixedSocEndToEnd) {
  const auto library = lib();
  const auto device = fabric::Device::vc707();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, library, opt);
  const auto result = flow.run(netlist::SocConfig::parse(kMixedSoc));
  EXPECT_EQ(result.plan.pblocks.size(), 2u);
  EXPECT_EQ(result.modules.size(), 3u);  // conv2d, gemm, fft
  EXPECT_GT(result.total_minutes, 0.0);
}

TEST(ArchitectureTest, LargeGridElaborates) {
  netlist::SocConfig config;
  config.name = "big";
  config.rows = 5;
  config.cols = 6;
  config.tiles.assign(30, netlist::TileSpec{});
  config.tile(0, 0).type = netlist::TileType::kCpu;
  config.tile(0, 1).type = netlist::TileType::kMem;
  config.tile(0, 2).type = netlist::TileType::kAux;
  for (int i = 3; i < 30; ++i) {
    auto& tile = config.tiles[static_cast<std::size_t>(i)];
    tile.type = netlist::TileType::kReconf;
    tile.accelerators = {"mac"};
  }
  config.validate();
  const auto library = lib();
  const auto rtl = netlist::elaborate(config, library);
  EXPECT_EQ(rtl.partitions().size(), 27u);
  const auto device = fabric::Device::vc707();
  const auto metrics = core::compute_metrics(rtl, library, device);
  EXPECT_EQ(core::classify(metrics), core::DesignClass::kClass11);
}

// --------------------------------------------------- oracle extension

TEST(OracleStrategyTest, NeverWorseThanTable1Choice) {
  const auto library = lib();
  const auto device = fabric::Device::vc707();
  const core::RuntimeModel model(device);
  for (const int soc : {1, 2, 3, 4}) {
    const auto rtl =
        netlist::elaborate(core::characterization_soc(soc), library);
    core::StrategyInputs in;
    in.metrics = core::compute_metrics(rtl, library, device);
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        in.module_luts.push_back(
            netlist::SocRtl::module_resources(library, m).luts);
    in.static_region_luts =
        device.total().luts -
        static_cast<long long>(1.3 *
                               static_cast<double>(in.metrics.reconf_luts));
    const auto table1 = core::choose_strategy(in, model);
    const auto oracle = core::choose_strategy_oracle(in, model);
    EXPECT_LE(oracle.predicted_minutes,
              table1.predicted_minutes + 1e-9)
        << "SOC_" << soc;
    // The oracle agrees with Table I on the clear-cut classes.
    if (soc == 1) EXPECT_EQ(oracle.strategy, core::Strategy::kSerial);
    if (soc == 2)
      EXPECT_EQ(oracle.strategy, core::Strategy::kFullyParallel);
  }
}

TEST(OracleStrategyTest, ScansIntermediateTaus) {
  const auto device = fabric::Device::vc707();
  const core::RuntimeModel model(device);
  core::StrategyInputs in;
  in.metrics.num_partitions = 6;
  in.metrics.kappa = 0.13;
  in.metrics.alpha_av = 0.10;
  in.metrics.gamma = 4.0;
  in.metrics.static_luts = 40'000;
  in.metrics.reconf_luts = 160'000;
  in.module_luts = {40'000, 35'000, 30'000, 25'000, 20'000, 10'000};
  in.static_region_luts = 90'000;
  const auto oracle = core::choose_strategy_oracle(in, model);
  EXPECT_GE(oracle.tau, 2);
  EXPECT_LE(oracle.tau, 6);
  EXPECT_EQ(oracle.groups.size(), static_cast<std::size_t>(oracle.tau));
}

}  // namespace
}  // namespace presp
