// Reproduces paper Fig. 3: the WAMI-App dataflow with per-accelerator
// LUT consumption and execution-time profile. As in the paper, each
// kernel is profiled on a minimal 2x2 SoC with a single accelerator tile
// targeting the VC707 (full SoC simulation: register programming, DMA
// over the NoC, compute, completion interrupt).
#include <cstdio>

#include "hls/estimator.hpp"
#include "runtime/api.hpp"
#include "wami/accelerators.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Fig. 3: WAMI accelerator profiles (LUTs, exec time)",
                "PR-ESP (DATE'23) Fig. 3");

  const wami::WamiWorkload workload{128, 128};
  const auto registry = wami::wami_accelerator_registry(workload);

  std::printf("Dataflow: 1->2->{3,4}; 4->5; 3->6; 6->{7,9}; 5->9; 7->8;\n");
  std::printf("          {8,9}->10; 10->11; 11->12   (2x2 SoC, VC707)\n\n");

  TextTable table({"idx", "kernel", "LUTs", "DSP", "BRAM",
                   "exec ms/frame", "pbs KB (est)"});
  for (int k = 1; k <= wami::kNumKernels; ++k) {
    // Minimal 2x2 SoC hosting just this kernel.
    netlist::SocConfig config;
    config.name = "profile";
    config.rows = 2;
    config.cols = 2;
    config.tiles.assign(4, netlist::TileSpec{});
    config.tile(0, 0).type = netlist::TileType::kCpu;
    config.tile(0, 1).type = netlist::TileType::kMem;
    config.tile(1, 0).type = netlist::TileType::kAux;
    config.tile(1, 1).type = netlist::TileType::kReconf;
    config.tile(1, 1).accelerators = {wami::kernel_name(k)};

    soc::Soc soc(config, registry);
    runtime::BitstreamStore store(soc.memory());
    runtime::ReconfigurationManager manager(soc, store);
    const std::size_t pbs =
        static_cast<std::size_t>(registry.get(wami::kernel_name(k)).luts * 11);
    store.add(3, wami::kernel_name(k), pbs);
    const auto buf = soc.memory().allocate("buf", 8u << 20);

    soc::AccelTask task;
    task.src = buf;
    task.dst = buf + (4u << 20);
    task.items = wami::kernel_items(k, workload);
    task.aux = static_cast<std::uint64_t>(k);

    sim::SimEvent done(soc.kernel());
    manager.run(3, wami::kernel_name(k), task, done);
    soc.kernel().run();

    const auto& tile = soc.reconf_tile(3);
    const double exec_ms = static_cast<double>(tile.busy_cycles()) /
                           (config.clock_mhz * 1e3);
    const auto resources =
        hls::estimate(wami::wami_kernel_spec(k)).resources;
    table.add_row({TextTable::integer(k), wami::kernel_name(k),
                   TextTable::integer(resources.luts),
                   TextTable::integer(resources.dsp),
                   TextTable::integer(resources.bram36),
                   TextTable::num(exec_ms, 2),
                   TextTable::num(static_cast<double>(pbs) / 1024.0, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Note: the paper's Fig. 3 per-kernel annotations are not legible in\n"
      "the available copy; these profiles are re-derived with the same\n"
      "methodology (single-accelerator 2x2 SoC on VC707) and drive the\n"
      "Fig. 4 experiment. Frame: 128x128 (scaled; see EXPERIMENTS.md).\n");
  return 0;
}
