// Reproduces paper Table III: the Vivado characterization — compilation
// time of SOC_1..SOC_4 under different levels of P&R parallelism (tau).
// Wall-clock minutes come from the calibrated runtime model, composed per
// schedule exactly as the flow does; the *winner per class* is the
// reproduction target (boldface cells of the paper's table).
#include <cstdio>

#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "bench_util.hpp"

using namespace presp;

namespace {

struct PaperRow {
  int soc;
  double alpha, kappa, gamma;
  // Paper T_tot per tau (0 = not reported).
  std::map<int, double> paper_total;
  int paper_best_tau;
};

}  // namespace

int main() {
  bench::header(
      "Table III: Vivado characterization under different parallelism",
      "PR-ESP (DATE'23) Table III");

  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);

  const PaperRow rows[] = {
      {1, 0.8, 27.0, 0.48,
       {{1, 89}, {2, 110}, {3, 105}, {4, 97}, {5, 94}, {16, 93}}, 1},
      {2, 10.1, 27.2, 1.47, {{1, 181}, {2, 173}, {3, 166}, {4, 152}}, 4},
      {3, 9.6, 27.1, 1.07, {{1, 158}, {2, 134}, {3, 137}}, 2},
      {4, 10.8, 11.5, 4.1,
       {{1, 163}, {2, 130}, {3, 105}, {4, 100}, {5, 94}}, 5},
  };

  for (const PaperRow& row : rows) {
    const auto config = core::characterization_soc(row.soc);
    const auto result = flow.run(config);
    const auto rtl = netlist::elaborate(config, lib);
    std::vector<long long> mods;
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        mods.push_back(netlist::SocRtl::module_resources(lib, m).luts);

    std::printf(
        "SOC_%d: alpha_av=%.1f%% (paper %.1f)  kappa=%.1f%% (paper %.1f)  "
        "gamma=%.2f (paper %.2f)  class=%s\n",
        row.soc, result.metrics.alpha_av * 100, row.alpha,
        result.metrics.kappa * 100, row.kappa, result.metrics.gamma,
        row.gamma, core::to_string(result.decision.design_class));

    TextTable table({"tau", "t_static", "omega", "T_tot (paper)"});
    double best = 1e18;
    int best_tau = 0;
    for (const auto& [tau, paper_total] : row.paper_total) {
      if (tau > static_cast<int>(mods.size())) continue;
      const core::Strategy strategy =
          tau == 1 ? core::Strategy::kSerial
                   : (tau == static_cast<int>(mods.size())
                          ? core::Strategy::kFullyParallel
                          : core::Strategy::kSemiParallel);
      const auto eval = core::evaluate_schedule(
          flow.model(), result.metrics.static_luts,
          result.plan.static_capacity.luts, mods, strategy, tau);
      if (eval.total < best) {
        best = eval.total;
        best_tau = tau;
      }
      table.add_row({TextTable::integer(tau),
                     TextTable::num(eval.t_static, 0),
                     TextTable::num(eval.omega, 0),
                     bench::vs_paper(eval.total, paper_total)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "  measured best: tau=%d | paper best: tau=%d | PR-ESP chooses: %s "
        "(tau=%d)\n\n",
        best_tau, row.paper_best_tau,
        core::to_string(result.decision.strategy), result.decision.tau);
  }
  std::printf(
      "Shape check: serial wins Class 1.1, fully-parallel wins Classes 1.2\n"
      "and 2.1. Class 1.3 is a near-tie in the paper (134 vs 137 min) and\n"
      "in this model (within ~7%%); see EXPERIMENTS.md.\n");
  return 0;
}
