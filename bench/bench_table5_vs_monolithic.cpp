// Reproduces paper Table V: full implementation time (synthesis + P&R) of
// the WAMI SoCs in PR-ESP vs their equivalent implementation in Xilinx's
// standard single-instance DPR flow.
#include <cstdio>

#include "core/flow.hpp"
#include "wami/accelerators.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Table V: PR-ESP vs standard-flow compile time",
                "PR-ESP (DATE'23) Table V");

  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);

  struct PaperRow {
    char soc;
    double presp_synth, presp_tstatic, presp_omega, presp_total;
    const char* tau;
    double mono_synth, mono_pnr, mono_total;
  };
  const PaperRow rows[] = {
      {'A', 47, 98, 52, 197, "fully-par", 91, 152, 243},
      {'B', 54, 135, 0, 189, "serial", 60, 124, 184},
      {'C', 42, 88, 64, 194, "semi-par", 74, 129, 203},
      {'D', 49, 48, 71, 168, "fully-par", 81, 141, 222},
  };

  TextTable table({"SoC", "synth (paper)", "t_static (paper)",
                   "max omega (paper)", "T_tot (paper)", "strategy",
                   "mono synth (paper)", "mono P&R (paper)",
                   "mono T (paper)", "improvement"});
  for (const PaperRow& row : rows) {
    const auto config = wami::table4_soc(row.soc);
    const auto ours = flow.run(config);
    const auto mono = flow.run_standard(config);
    const double improvement =
        100.0 * (mono.total_minutes - ours.total_minutes) /
        mono.total_minutes;
    const double paper_improvement =
        100.0 * (row.mono_total - row.presp_total) / row.mono_total;
    table.add_row(
        {std::string("SoC_") + row.soc,
         bench::vs_paper(ours.synth_makespan_minutes, row.presp_synth),
         bench::vs_paper(ours.t_static_minutes, row.presp_tstatic),
         bench::vs_paper(ours.omega_minutes, row.presp_omega),
         bench::vs_paper(ours.total_minutes, row.presp_total),
         core::to_string(ours.decision.strategy),
         bench::vs_paper(mono.synth_minutes, row.mono_synth),
         bench::vs_paper(mono.pnr_minutes, row.mono_pnr),
         bench::vs_paper(mono.total_minutes, row.mono_total),
         bench::vs_paper(improvement, paper_improvement, 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: PR-ESP wins clearly on Classes 1.2 (SoC_A) and 2.1 (SoC_D),\n"
      "modestly on Class 1.3 (SoC_C), and is near parity on Class 1.1\n"
      "(SoC_B) — matching the paper's 19%% / 24%% / 4.4%% / -2.5%%.\n");
  return 0;
}
