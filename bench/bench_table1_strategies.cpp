// Reproduces paper Table I: the size-driven implementation strategy matrix
// over (kappa vs alpha_av) x gamma. For each cell we construct a synthetic
// design whose metrics land in the cell and report the strategy the PR-ESP
// algorithm selects; the two empty cells are verified to be impossible
// metric combinations.
#include <cstdio>

#include "core/strategy.hpp"
#include "util/error.hpp"
#include "bench_util.hpp"

using namespace presp;

namespace {

const char* run_cell(double kappa, double alpha, double gamma,
                     const core::RuntimeModel& model) {
  core::StrategyInputs in;
  const double device_luts = 303'600.0;
  const int n = std::max(1, static_cast<int>(gamma * kappa / alpha + 0.5));
  in.metrics.num_partitions = n;
  in.metrics.kappa = kappa;
  in.metrics.alpha_av = alpha;
  in.metrics.gamma = gamma;
  in.metrics.static_luts = static_cast<long long>(kappa * device_luts);
  in.metrics.reconf_luts =
      static_cast<long long>(gamma * static_cast<double>(in.metrics.static_luts));
  for (int i = 0; i < n; ++i)
    in.module_luts.push_back(in.metrics.reconf_luts / n);
  in.static_region_luts = static_cast<long long>(
      device_luts - 1.2 * static_cast<double>(in.metrics.reconf_luts));
  try {
    const auto decision = core::choose_strategy(in, model);
    return core::to_string(decision.strategy);
  } catch (const InvalidArgument&) {
    return "-";
  }
}

}  // namespace

int main() {
  bench::header("Table I: size-driven implementation strategies",
                "PR-ESP (DATE'23) Table I");

  const auto device = fabric::Device::vc707();
  const core::RuntimeModel model(device);

  struct Row {
    const char* label;
    double kappa;
    double alpha;
    const char* paper[3];  // gamma <1, ~1, >1
  };
  // Representative metric points per row of the paper's matrix.
  const Row rows[] = {
      {"kappa ~ alpha_av", 0.12, 0.11, {"-", "serial", "fully-parallel"}},
      {"kappa >> alpha_av", 0.28, 0.05,
       {"serial", "semi-parallel", "semi/fully-parallel"}},
      {"kappa << alpha_av", 0.06, 0.14, {"-", "serial", "fully-parallel"}},
  };
  const double gammas[3] = {0.6, 1.0, 1.8};
  const char* gamma_labels[3] = {"gamma < 1", "gamma ~ 1", "gamma > 1"};

  TextTable table({"", gamma_labels[0], gamma_labels[1], gamma_labels[2]});
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.label};
    for (int g = 0; g < 3; ++g) {
      std::string measured = run_cell(row.kappa, row.alpha, gammas[g], model);
      // Single-partition Group-2 gamma~1 designs are Class 2.2 (serial) by
      // construction; the synthetic generator above produces them.
      cells.push_back(measured + "  [paper: " + row.paper[g] + "]");
    }
    table.add_row(cells);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Note: the paper's 'semi/fully-parallel' cell is resolved by the\n"
      "runtime model at flow time; both answers are consistent with the\n"
      "published matrix.\n");
  return 0;
}
