// Ablation: value of the size-driven strategy choice. Compares PR-ESP's
// per-class decision against fixed policies (always-serial, always-fully-
// parallel, always-semi-parallel) across all eight evaluation SoCs, plus
// the LPT grouping against naive round-robin for semi-parallel runs.
#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "wami/accelerators.hpp"
#include "bench_util.hpp"

using namespace presp;

namespace {

struct Design {
  std::string name;
  netlist::SocConfig config;
  const netlist::ComponentLibrary* lib;
};

struct DesignData {
  core::FlowResult chosen;
  std::vector<long long> mods;
};

DesignData analyze(const core::PrEspFlow& flow,
                   const netlist::ComponentLibrary& lib,
                   const netlist::SocConfig& config) {
  DesignData data;
  data.chosen = flow.run(config);
  const auto rtl = netlist::elaborate(config, lib);
  for (const auto& p : rtl.partitions())
    for (const auto& m : p.modules)
      data.mods.push_back(netlist::SocRtl::module_resources(lib, m).luts);
  return data;
}

double fixed_policy(const core::PrEspFlow& flow, const DesignData& data,
                    core::Strategy strategy, int tau) {
  return core::evaluate_schedule(
             flow.model(), data.chosen.metrics.static_luts,
             data.chosen.plan.static_capacity.luts, data.mods, strategy,
             tau == 0 ? static_cast<int>(data.mods.size()) : tau)
      .total;
}

}  // namespace

int main() {
  bench::header("Ablation: size-driven strategy choice vs fixed policies",
                "the key distinction from fixed-parallelism flows [7]");

  const auto device = fabric::Device::vc707();
  const auto char_lib = core::characterization_library();
  const auto wami_lib = wami::wami_library();

  std::vector<Design> designs;
  for (int i = 1; i <= 4; ++i)
    designs.push_back({"SOC_" + std::to_string(i),
                       core::characterization_soc(i), &char_lib});
  for (const char soc : {'A', 'B', 'C', 'D'})
    designs.push_back({std::string("SoC_") + soc, wami::table4_soc(soc),
                       &wami_lib});

  TextTable table({"design", "PR-ESP (chosen)", "always serial",
                   "always semi (tau=2)", "always fully", "regret %"});
  double total_presp = 0.0;
  double total_best_fixed_sum[3] = {0, 0, 0};
  for (const Design& design : designs) {
    core::FlowOptions opt;
    opt.run_physical = false;
    const core::PrEspFlow flow(device, *design.lib, opt);
    const auto data = analyze(flow, *design.lib, design.config);
    const auto& chosen = data.chosen;
    const double serial =
        fixed_policy(flow, data, core::Strategy::kSerial, 1);
    const double semi =
        fixed_policy(flow, data, core::Strategy::kSemiParallel, 2);
    const double fully =
        fixed_policy(flow, data, core::Strategy::kFullyParallel, 0);
    const double best = std::min({serial, semi, fully});
    const double regret =
        100.0 * (chosen.pnr_total_minutes - best) / best;
    total_presp += chosen.pnr_total_minutes;
    total_best_fixed_sum[0] += serial;
    total_best_fixed_sum[1] += semi;
    total_best_fixed_sum[2] += fully;
    table.add_row({design.name,
                   TextTable::num(chosen.pnr_total_minutes, 0) + " (" +
                       core::to_string(chosen.decision.strategy) + ")",
                   TextTable::num(serial, 0), TextTable::num(semi, 0),
                   TextTable::num(fully, 0), TextTable::num(regret, 1)});
  }
  table.add_row({"TOTAL", TextTable::num(total_presp, 0),
                 TextTable::num(total_best_fixed_sum[0], 0),
                 TextTable::num(total_best_fixed_sum[1], 0),
                 TextTable::num(total_best_fixed_sum[2], 0), ""});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "No fixed policy wins everywhere: always-serial loses badly on\n"
      "Classes 1.2/2.1, always-fully loses on Class 1.1. The size-driven\n"
      "choice tracks the per-design best within a few percent.\n\n");

  // Grouping policy for semi-parallel runs.
  std::printf("Semi-parallel grouping: LPT vs round-robin (tau=2)\n");
  TextTable grouping({"design", "LPT makespan", "round-robin makespan",
                      "LPT gain %"});
  for (const Design& design : designs) {
    const auto rtl = netlist::elaborate(design.config, *design.lib);
    std::vector<long long> mods;
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        mods.push_back(
            netlist::SocRtl::module_resources(*design.lib, m).luts);
    if (mods.size() < 3) continue;
    const core::RuntimeModel model(device);
    const auto metrics = core::compute_metrics(rtl, *design.lib, device);
    const long long region =
        device.total().luts -
        static_cast<long long>(1.2 * static_cast<double>(metrics.reconf_luts));

    std::vector<std::vector<long long>> lpt_groups;
    for (const auto& g : core::balanced_groups(mods, 2)) {
      std::vector<long long> luts;
      for (const auto i : g) luts.push_back(mods[i]);
      lpt_groups.push_back(luts);
    }
    std::vector<std::vector<long long>> rr_groups(2);
    for (std::size_t i = 0; i < mods.size(); ++i)
      rr_groups[i % 2].push_back(mods[i]);

    const double lpt =
        model.predict_parallel(metrics.static_luts, region, lpt_groups);
    const double rr =
        model.predict_parallel(metrics.static_luts, region, rr_groups);
    grouping.add_row({design.name, TextTable::num(lpt, 1),
                      TextTable::num(rr, 1),
                      TextTable::num(100.0 * (rr - lpt) / rr, 1)});
  }
  std::printf("%s\n", grouping.render().c_str());
  return 0;
}
