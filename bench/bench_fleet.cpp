// Fleet soak: an open-loop synthetic tenant population against a
// sharded DPR fleet (src/fleet) under injected shard stalls, burst
// overloads and accelerator hangs. Exercises the full robustness
// surface: token-bucket admission, deadline shedding, request
// coalescing, software fallback and the shard/tile circuit breakers.
//
// Hard acceptance criteria (the bench exits non-zero on violation):
//   - zero lost completions: every submitted request reaches a terminal
//     outcome (completed, fallback or a typed shed) on every seed;
//   - zero unexplained sheds: every shed carries a FleetError reason;
//   - the injected stalls actually freeze shards and at least one
//     circuit breaker opens (traffic demonstrably diverted);
//   - re-running the first seed reproduces an identical digest.
//
// Emits BENCH_fleet.json (exact p50/p99/p999 completion latency, shed
// rate, coalesce rate, breaker transition counts) for the bench
// workflow's required-field gate. tools/run_tier1.sh's `fleet` stage
// runs a short configuration of this soak.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/load.hpp"
#include "netlist/netlist.hpp"
#include "ops/http.hpp"
#include "ops/server.hpp"
#include "ops/sources.hpp"
#include "soc/accelerator.hpp"

using namespace presp;
using namespace presp::fleet;

namespace {

// One shard: the smallest SoC with a reconfiguration controller and two
// reconfigurable tiles (grid indices 3 and 4) sharing both modules, so
// routing always has a sibling to divert to.
const char* kShardSocText = R"(
[soc]
name = fleet_shard
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_b
r1c2 = empty
)";

soc::AcceleratorRegistry make_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 12'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    spec.latency.startup_cycles = 30;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

/// --repack: run the soak with each shard's background repacker live
/// (DESIGN.md defrag). The determinism replay reuses the same
/// topology, so the digest equality then also covers migrations.
bool g_repack = false;

FleetTopology soak_topology() {
  FleetTopology topo;
  topo.shards = 4;
  topo.quantum_cycles = 4'000;
  topo.repack = g_repack;
  topo.repack_interval_cycles = 2 * topo.quantum_cycles;
  topo.repack_frag_threshold = 0.0;
  topo.coalesce_limit = 4;
  topo.service_estimate_cycles = 90'000;
  topo.fallback_latency_cycles = 200'000;
  topo.stall_cycles = 240'000;  // 60 quanta per injected stall
  topo.burst_multiplier = 6;
  // Deadlines tight enough that a stalled shard visibly misses them; the
  // best-effort class is squeezed (short deadline, shallow queue) so its
  // software-fallback degradation path shows up in the soak.
  topo.classes[static_cast<int>(QosClass::kRealtime)].deadline_quanta = 60;
  topo.classes[static_cast<int>(QosClass::kStandard)].deadline_quanta = 150;
  topo.classes[static_cast<int>(QosClass::kBestEffort)].deadline_quanta = 100;
  topo.classes[static_cast<int>(QosClass::kBestEffort)].queue_bound = 48;
  topo.breaker.window = 8;
  topo.breaker.failure_threshold = 0.5;
  topo.breaker.open_base_cycles = 40'000;
  topo.breaker.open_max_cycles = 640'000;
  topo.breaker.half_open_probes = 2;
  return topo;
}

struct SeedOutcome {
  std::uint64_t seed = 0;
  FleetStats stats;
  std::vector<long long> latencies;  // hardware completions, cycles
  bool drained = false;
  std::string digest;
};

/// Hand-off between the soak loop and the ops server's /health source:
/// run_seed() points it at the live fleet for the duration of one seed;
/// the server worker snapshots it under the same mutex, so the fleet can
/// never be torn down with a snapshot in flight.
struct FleetHandle {
  std::mutex mutex;
  FleetManager* fleet = nullptr;

  void set(FleetManager* f) {
    std::lock_guard<std::mutex> lock(mutex);
    fleet = f;
  }
  std::string health_json() {
    std::lock_guard<std::mutex> lock(mutex);
    if (fleet == nullptr) return "{\"health\":null}";
    return ops::fleet_health_json(fleet->ops_snapshot());
  }
};

/// Seeded chaos plan for one soak run: two chained stalls wedge one
/// shard long enough for its breaker to open, a later stall hits a
/// second shard, two burst windows overload admission and a handful of
/// accelerator hangs exercise the watchdog/quarantine path underneath
/// the tile breakers.
void arm_chaos(fault::FaultInjector& injector, std::uint64_t seed,
               int quanta, int shards) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto within = [&](int lo, int hi) {
    return static_cast<std::uint64_t>(
        lo + static_cast<int>(rng.next_below(
                 static_cast<std::uint64_t>(hi - lo))));
  };
  const int victim = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(shards)));
  // kShardStall is consulted once per quantum per non-stalled shard, so
  // trigger_count N fires at quantum N; a count-1 spec armed behind it
  // re-fires on the next consultation, chaining the stall.
  injector.arm({fault::FaultSite::kShardStall, victim, -1,
                within(10, quanta / 4 + 11)});
  injector.arm({fault::FaultSite::kShardStall, victim, -1, 1});
  injector.arm({fault::FaultSite::kShardStall, (victim + 1) % shards, -1,
                within(quanta / 2, quanta * 3 / 4 + 1)});
  // kBurstOverload is consulted once per quantum by the load generator.
  injector.arm({fault::FaultSite::kBurstOverload, -1, -1,
                within(5, quanta / 3 + 6)});
  injector.arm({fault::FaultSite::kBurstOverload, -1, -1,
                within(quanta / 3, quanta / 2 + 1)});
  for (int i = 0; i < 4; ++i)
    injector.arm({fault::FaultSite::kAccelHang, 3 + (i % 2), -1,
                  within(1, 16)});
}

SeedOutcome run_seed(std::uint64_t seed, int quanta,
                     FleetHandle* handle = nullptr) {
  const FleetTopology topo = soak_topology();
  fault::FaultInjector injector;
  arm_chaos(injector, seed, quanta, topo.shards);

  const netlist::SocConfig config = netlist::SocConfig::parse(kShardSocText);
  const soc::AcceleratorRegistry registry = make_registry();
  runtime::ManagerOptions manager_options;
  manager_options.watchdog_run_cycles = 200'000;  // hang recovery: 50 quanta
  FleetManager fleet(topo, config, registry, seed, &injector,
                     manager_options);
  if (handle != nullptr) handle->set(&fleet);
  fleet.add_module("acc_a", 140'000);
  fleet.add_module("acc_b", 150'000);

  LoadOptions load_options;
  load_options.seed = seed;
  load_options.arrivals_per_quantum = 1.0;
  load_options.modules = {"acc_a", "acc_b"};
  SyntheticLoad load(load_options);

  for (int q = 0; q < quanta; ++q) {
    std::vector<FleetRequest> batch =
        load.generate(fleet.now(), topo.burst_multiplier, &injector);
    if (load.burst_active())
      fleet.note_burst_arrivals(batch.size());
    for (FleetRequest& request : batch) fleet.submit(std::move(request));
    fleet.step();
  }

  SeedOutcome out;
  out.seed = seed;
  // Budget covers the chained stalls plus every open->half-open backoff.
  out.drained = fleet.drain(4 * quanta + 2'000);
  out.stats = fleet.stats();
  for (const FleetOutcome& outcome : fleet.outcomes()) {
    if (outcome.kind == OutcomeKind::kOk ||
        outcome.kind == OutcomeKind::kCoalescedOk)
      out.latencies.push_back(static_cast<long long>(outcome.latency));
  }
  std::ostringstream digest;
  digest << fleet.digest() << " generated=" << load.generated()
         << " drained=" << (out.drained ? 1 : 0);
  out.digest = digest.str();
  if (handle != nullptr) handle->set(nullptr);
  return out;
}

/// Exact nearest-rank percentile over a sorted sample vector.
long long percentile(const std::vector<long long>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  // bench_fleet [first_seed [num_seeds [quanta]]] [--json out.json]
  //             [--repack]         (background defragmentation live)
  //             [--ops-port <n>]   (0 = ephemeral; serves /metrics,
  //                                /health, /trace/summary, /events and
  //                                soaks them with 8 SSE clients)
  std::string json_path = "BENCH_fleet.json";
  int ops_port = -1;  // < 0: no ops server
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--ops-port" && i + 1 < argc) {
      ops_port = std::atoi(argv[++i]);
    } else if (arg == "--repack") {
      g_repack = true;
    } else {
      positional.push_back(arg);
    }
  }
  const std::uint64_t first_seed =
      positional.size() > 0 ? std::strtoull(positional[0].c_str(), nullptr, 10)
                            : 1;
  const int num_seeds =
      std::max(1, positional.size() > 1 ? std::atoi(positional[1].c_str())
                                        : 4);
  const int quanta =
      std::max(50, positional.size() > 2 ? std::atoi(positional[2].c_str())
                                         : 600);

  bench::header("Fleet soak: sharded DPR service under stalls, bursts and "
                "hangs",
                "fleet robustness layer (DESIGN.md fleet service: admission, "
                "shedding, breakers)");

  // Optional live-ops overlay: serve telemetry from the running soak and
  // hammer it with 8 concurrent SSE subscribers (client 0 deliberately
  // slow, with a shrunken receive window, to force ring drops) plus a
  // GET poller that validates /metrics, /health and /trace/summary
  // mid-soak. The determinism replay at the end runs with no server
  // attached, so digest equality proves the observers perturbed nothing.
  FleetHandle handle;
  std::unique_ptr<ops::OpsServer> server;
  constexpr int kSseClients = 8;
  std::vector<std::thread> sse_threads;
  std::vector<ops::SseStreamResult> sse_results(kSseClients);
  std::thread poller;
  std::atomic<bool> poll_stop{false};
  std::atomic<bool> drain_fast{false};
  std::atomic<std::uint64_t> endpoint_checks{0};
  std::atomic<std::uint64_t> endpoint_failures{0};
  if (ops_port >= 0) {
    ops::OpsOptions options;
    options.enabled = true;
    options.bind = "127.0.0.1";
    options.port = ops_port;
    options.workers = kSseClients + 4;
    options.max_connections = kSseClients + 8;
    options.sse_buffer_events = 8;   // small ring: slow client must drop
    options.publish_interval_ms = 2;
    server = std::make_unique<ops::OpsServer>(options);
    server->set_health_source([&handle] { return handle.health_json(); });
    server->start();
    std::printf("ops server on 127.0.0.1:%d (%d SSE clients, client 0 "
                "slow)\n\n",
                server->port(), kSseClients);
    const int port = server->port();
    for (int c = 0; c < kSseClients; ++c)
      sse_threads.emplace_back([c, port, &sse_results, &drain_fast] {
        // Client 0: 300 ms between reads through a ~1 KiB receive
        // buffer, so the server-side worker blocks and its ring fills.
        // Once the soak is over it drains its backlog at full speed
        // (`drain_fast`) so teardown is not paced by its slowness.
        sse_results[static_cast<std::size_t>(c)] = ops::sse_stream(
            port, "/events", c == 0 ? 300 : 0, 120'000,
            c == 0 ? 1024 : 0, &drain_fast);
      });
    poller = std::thread([port, &poll_stop, &endpoint_checks,
                          &endpoint_failures] {
      const char* targets[] = {"/metrics", "/health", "/trace/summary",
                               "/metrics/prometheus"};
      while (!poll_stop.load(std::memory_order_relaxed)) {
        for (const char* target : targets) {
          int status = 0;
          std::string body;
          const bool ok = ops::http_get(port, target, &status, &body) &&
                          status == 200 && !body.empty();
          const bool json_ok =
              std::string(target) == "/metrics/prometheus" || body[0] == '{';
          endpoint_checks.fetch_add(1, std::memory_order_relaxed);
          if (!ok || !json_ok)
            endpoint_failures.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  TextTable table({"seed", "submitted", "ok", "fallback", "failed", "shed",
                   "coalesced", "opens", "reopens", "stalls", "p99 cycles"});
  FleetStats totals;
  std::vector<long long> latencies;
  std::vector<std::string> digests;
  bool all_conserved = true;
  bool all_explained = true;
  bool all_drained = true;

  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    SeedOutcome out = run_seed(seed, quanta, server ? &handle : nullptr);
    digests.push_back(out.digest);
    all_conserved = all_conserved && out.stats.conserved();
    all_explained = all_explained && out.stats.sheds_explained();
    all_drained = all_drained && out.drained;

    totals.submitted += out.stats.submitted;
    totals.completed_ok += out.stats.completed_ok;
    totals.completed_fallback += out.stats.completed_fallback;
    totals.completed_failed += out.stats.completed_failed;
    totals.shed_total += out.stats.shed_total;
    for (int e = 0; e < kNumFleetErrors; ++e)
      totals.shed_by_reason[e] += out.stats.shed_by_reason[e];
    totals.coalesced += out.stats.coalesced;
    totals.coalesce_requeues += out.stats.coalesce_requeues;
    totals.deadline_misses += out.stats.deadline_misses;
    totals.breaker_opens += out.stats.breaker_opens;
    totals.breaker_half_opens += out.stats.breaker_half_opens;
    totals.breaker_closes += out.stats.breaker_closes;
    totals.breaker_reopens += out.stats.breaker_reopens;
    totals.stall_quanta += out.stats.stall_quanta;
    totals.burst_arrivals += out.stats.burst_arrivals;
    totals.probe_rehabilitations += out.stats.probe_rehabilitations;

    std::sort(out.latencies.begin(), out.latencies.end());
    table.add_row(
        {TextTable::integer(static_cast<long long>(seed)),
         TextTable::integer(static_cast<long long>(out.stats.submitted)),
         TextTable::integer(static_cast<long long>(out.stats.completed_ok)),
         TextTable::integer(
             static_cast<long long>(out.stats.completed_fallback)),
         TextTable::integer(
             static_cast<long long>(out.stats.completed_failed)),
         TextTable::integer(static_cast<long long>(out.stats.shed_total)),
         TextTable::integer(static_cast<long long>(out.stats.coalesced)),
         TextTable::integer(static_cast<long long>(out.stats.breaker_opens)),
         TextTable::integer(
             static_cast<long long>(out.stats.breaker_reopens)),
         TextTable::integer(static_cast<long long>(out.stats.stall_quanta)),
         TextTable::integer(percentile(out.latencies, 0.99))});
    latencies.insert(latencies.end(), out.latencies.begin(),
                     out.latencies.end());
  }
  std::printf("%s\n", table.render().c_str());

  std::sort(latencies.begin(), latencies.end());
  const long long p50 = percentile(latencies, 0.50);
  const long long p99 = percentile(latencies, 0.99);
  const long long p999 = percentile(latencies, 0.999);
  const double shed_rate =
      totals.submitted == 0
          ? 0.0
          : static_cast<double>(totals.shed_total) /
                static_cast<double>(totals.submitted);
  const double coalesce_rate =
      totals.submitted == 0
          ? 0.0
          : static_cast<double>(totals.coalesced) /
                static_cast<double>(totals.submitted);
  const double miss_rate =
      totals.submitted == 0
          ? 0.0
          : static_cast<double>(totals.deadline_misses) /
                static_cast<double>(totals.submitted);

  TextTable sheds({"shed reason", "count"});
  for (int e = 1; e < kNumFleetErrors; ++e)
    sheds.add_row({to_string(static_cast<FleetError>(e)),
                   TextTable::integer(
                       static_cast<long long>(totals.shed_by_reason[e]))});
  std::printf("%s\n", sheds.render().c_str());

  std::printf("latency (hardware completions, cycles): p50 %lld  p99 %lld  "
              "p999 %lld  (%zu samples)\n",
              p50, p99, p999, latencies.size());
  std::printf("shed rate %.4f  coalesce rate %.4f  deadline miss rate %.4f  "
              "breaker opens %llu (reopens %llu)  stall quanta %llu  "
              "fallbacks %llu\n",
              shed_rate, coalesce_rate, miss_rate,
              static_cast<unsigned long long>(totals.breaker_opens),
              static_cast<unsigned long long>(totals.breaker_reopens),
              static_cast<unsigned long long>(totals.stall_quanta),
              static_cast<unsigned long long>(totals.completed_fallback));

  // Tear down the ops overlay before the determinism replay: the first
  // pass ran under live observers, the replay runs with no server at
  // all, so a digest match means serving telemetry perturbed nothing.
  ops::OpsServer::Stats ops_stats;
  std::uint64_t sse_received = 0;
  std::uint64_t sse_min = 0;
  if (server) {
    // The soak itself usually overflows the slow client's ring; if the
    // timing was merciful, force the issue with a bounded burst of fat
    // probe events (the pump keeps publishing while client 0 sleeps on
    // a full receive window).
    for (int i = 0; i < 2'000 && server->stats().sse_dropped == 0; ++i) {
      server->publish("probe", std::string(4096, 'x'));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    poll_stop.store(true, std::memory_order_relaxed);
    poller.join();
    server->stop();
    drain_fast.store(true, std::memory_order_relaxed);
    for (std::thread& t : sse_threads) t.join();
    ops_stats = server->stats();
    server.reset();
    sse_min = sse_results[0].events;
    for (const ops::SseStreamResult& r : sse_results) {
      sse_received += r.events;
      sse_min = std::min(sse_min, r.events);
    }
    std::printf("ops: %llu requests (%llu rejected)  %llu endpoint checks "
                "(%llu failed)  SSE: %llu published, %llu received across "
                "%d clients (min %llu), %llu dropped at slow consumers\n",
                static_cast<unsigned long long>(ops_stats.requests),
                static_cast<unsigned long long>(ops_stats.rejected),
                static_cast<unsigned long long>(endpoint_checks.load()),
                static_cast<unsigned long long>(endpoint_failures.load()),
                static_cast<unsigned long long>(ops_stats.sse_published),
                static_cast<unsigned long long>(sse_received), kSseClients,
                static_cast<unsigned long long>(sse_min),
                static_cast<unsigned long long>(ops_stats.sse_dropped));
  }

  // Determinism self-check: the first seed, replayed, must reproduce its
  // digest bit-for-bit.
  const SeedOutcome replay = run_seed(first_seed, quanta);
  const bool deterministic = replay.digest == digests.front();
  std::printf("determinism replay (seed %llu): %s\n",
              static_cast<unsigned long long>(first_seed),
              deterministic ? "identical" : "MISMATCH");
  if (!deterministic)
    std::printf("  first : %s\n  replay: %s\n", digests.front().c_str(),
                replay.digest.c_str());

  std::ofstream json(json_path);
  json << "{\n  \"first_seed\": " << first_seed
       << ",\n  \"seeds\": " << num_seeds
       << ",\n  \"quanta_per_seed\": " << quanta
       << ",\n  \"shards\": " << soak_topology().shards
       << ",\n  \"submitted\": " << totals.submitted
       << ",\n  \"completed_ok\": " << totals.completed_ok
       << ",\n  \"completed_fallback\": " << totals.completed_fallback
       << ",\n  \"completed_failed\": " << totals.completed_failed
       << ",\n  \"shed_total\": " << totals.shed_total
       << ",\n  \"shed_rate\": " << shed_rate
       << ",\n  \"coalesced\": " << totals.coalesced
       << ",\n  \"coalesce_rate\": " << coalesce_rate
       << ",\n  \"coalesce_requeues\": " << totals.coalesce_requeues
       << ",\n  \"p50_cycles\": " << p50
       << ",\n  \"p99_cycles\": " << p99
       << ",\n  \"p999_cycles\": " << p999
       << ",\n  \"latency_samples\": " << latencies.size()
       << ",\n  \"deadline_miss_rate\": " << miss_rate
       << ",\n  \"breaker_opens\": " << totals.breaker_opens
       << ",\n  \"breaker_half_opens\": " << totals.breaker_half_opens
       << ",\n  \"breaker_closes\": " << totals.breaker_closes
       << ",\n  \"breaker_reopens\": " << totals.breaker_reopens
       << ",\n  \"stall_quanta\": " << totals.stall_quanta
       << ",\n  \"burst_arrivals\": " << totals.burst_arrivals
       << ",\n  \"probe_rehabilitations\": " << totals.probe_rehabilitations
       << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"ops_enabled\": " << (ops_port >= 0 ? "true" : "false")
       << ",\n  \"ops_requests\": " << ops_stats.requests
       << ",\n  \"ops_rejected\": " << ops_stats.rejected
       << ",\n  \"ops_endpoint_checks\": " << endpoint_checks.load()
       << ",\n  \"ops_endpoint_failures\": " << endpoint_failures.load()
       << ",\n  \"ops_sse_clients\": " << ops_stats.sse_clients
       << ",\n  \"ops_sse_events\": " << ops_stats.sse_published
       << ",\n  \"ops_sse_received\": " << sse_received
       << ",\n  \"ops_sse_dropped\": " << ops_stats.sse_dropped
       << "\n}\n";
  std::printf("bench_fleet: wrote %s\n", json_path.c_str());

  const bool stalled = totals.stall_quanta > 0;
  const bool diverted = totals.breaker_opens >= 1;
  // With the ops overlay, additionally require: every endpoint probe got
  // valid JSON mid-soak, all 8 SSE clients subscribed and received
  // events, and the slow client's drops were counted (never silent).
  const bool ops_ok =
      ops_port < 0 ||
      (endpoint_failures.load() == 0 && endpoint_checks.load() > 0 &&
       ops_stats.sse_clients >= kSseClients && sse_min > 0 &&
       ops_stats.sse_dropped > 0);
  std::printf("acceptance: zero lost completions: %s  sheds explained: %s  "
              "drained: %s  stalls injected: %s  breaker diverted: %s  "
              "deterministic: %s  ops overlay: %s\n",
              all_conserved ? "yes" : "NO", all_explained ? "yes" : "NO",
              all_drained ? "yes" : "NO", stalled ? "yes" : "NO",
              diverted ? "yes" : "NO", deterministic ? "yes" : "NO",
              ops_port < 0 ? "off" : (ops_ok ? "yes" : "NO"));
  return (all_conserved && all_explained && all_drained && stalled &&
          diverted && deterministic && ops_ok)
             ? 0
             : 1;
}
