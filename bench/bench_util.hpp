// Shared helpers for the reproduction benches. Every bench prints the
// paper's published values next to the measured ones so the output can be
// diffed against the publication table by eye; EXPERIMENTS.md records the
// same numbers.
#pragma once

#include <cstdio>
#include <string>

#include "util/log.hpp"
#include "util/table.hpp"

namespace presp::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  presp::set_log_level(presp::LogLevel::kWarn);
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("=====================================================\n");
}

/// "measured (paper P)" cell formatting.
inline std::string vs_paper(double measured, double paper, int precision = 0) {
  return presp::TextTable::num(measured, precision) + " (" +
         presp::TextTable::num(paper, precision) + ")";
}

}  // namespace presp::bench
