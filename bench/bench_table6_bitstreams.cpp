// Reproduces paper Table VI: the partitioning of WAMI accelerators into
// the reconfigurable tiles of SoC_X / SoC_Y / SoC_Z and the compressed
// partial-bitstream size generated per tile. Runs the full physical flow
// (floorplan, placement, routing, bitstream generation with compression).
//
// The paper reports one pbs size per tile; we report the largest member's
// compressed image (the tile's sizing representative) plus the range over
// members.
#include <algorithm>
#include <cstdio>

#include "core/flow.hpp"
#include "wami/accelerators.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Table VI: accelerator partitioning and pbs sizes",
                "PR-ESP (DATE'23) Table VI");

  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.pnr.placer.temperature_steps = 5;
  opt.pnr.placer.moves_per_cell = 1;
  opt.floorplan.refine_iterations = 30;
  const core::PrEspFlow flow(device, lib, opt);

  // Paper pbs sizes in KB per tile.
  const std::map<char, std::vector<int>> paper_kb = {
      {'X', {328, 245}}, {'Y', {283, 247, 378}}, {'Z', {305, 359, 317, 397}}};

  for (const char which : {'X', 'Y', 'Z'}) {
    const auto config = wami::table6_soc(which);
    const auto result = flow.run(config);
    const auto partitions = wami::table6_partitions(which);

    std::printf("SoC_%c (%d reconfigurable tiles), physical flow %s\n",
                which, static_cast<int>(partitions.size()),
                result.physical_ok ? "OK" : "FAILED");
    TextTable table({"tile", "WAMI accs", "pbs KB measured (paper)",
                     "member range KB"});
    for (std::size_t t = 0; t < partitions.size(); ++t) {
      const std::string rt = "RT_" + std::to_string(t + 1);
      std::string accs = "{";
      std::size_t max_pbs = 0;
      std::size_t min_pbs = ~std::size_t{0};
      for (std::size_t i = 0; i < partitions[t].size(); ++i) {
        const int k = partitions[t][i];
        accs += (i ? "," : "") + std::to_string(k);
        const auto& impl = result.module(rt, wami::kernel_name(k));
        max_pbs = std::max(max_pbs, impl.pbs_compressed_bytes);
        min_pbs = std::min(min_pbs, impl.pbs_compressed_bytes);
      }
      accs += "}";
      table.add_row(
          {rt, accs,
           bench::vs_paper(static_cast<double>(max_pbs) / 1024.0,
                           paper_kb.at(which)[t]),
           TextTable::num(static_cast<double>(min_pbs) / 1024.0, 0) + ".." +
               TextTable::num(static_cast<double>(max_pbs) / 1024.0, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "Shape: every tile's compressed partial bitstream lands in the\n"
      "paper's few-hundred-KB band, scaling with the tile's pblock area.\n");
  return 0;
}
