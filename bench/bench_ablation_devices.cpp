// Ablation: device portability. The flow targets all three of the paper's
// evaluation boards (VC707, VCU118, VCU128). The same SoC moves across
// classes as the device grows — the static fraction kappa shrinks while
// gamma is device-independent — which shifts the size-driven strategy and
// the value of parallel compilation.
#include <cstdio>

#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "floorplan/visualize.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Ablation: the flow across VC707 / VCU118 / VCU128",
                "Section IV (floorplanning targets all three boards)");

  const auto lib = core::characterization_library();
  const struct {
    const char* name;
    fabric::Device device;
  } boards[] = {
      {"vc707", fabric::Device::vc707()},
      {"vcu118", fabric::Device::vcu118()},
      {"vcu128", fabric::Device::vcu128()},
  };

  TextTable table({"board", "LUTs", "kappa %", "gamma", "class", "strategy",
                   "PR-ESP min", "standard min", "saving %"});
  for (const auto& board : boards) {
    core::FlowOptions opt;
    opt.run_physical = false;
    const core::PrEspFlow flow(board.device, lib, opt);
    auto config = core::characterization_soc(2);
    config.device = board.name;
    const auto result = flow.run(config);
    const auto standard = flow.run_standard(config);
    table.add_row(
        {board.name, TextTable::integer(board.device.total().luts),
         TextTable::num(result.metrics.kappa * 100, 1),
         TextTable::num(result.metrics.gamma, 2),
         core::to_string(result.decision.design_class),
         core::to_string(result.decision.strategy),
         TextTable::num(result.total_minutes, 0),
         TextTable::num(standard.total_minutes, 0),
         TextTable::num(100.0 *
                            (standard.total_minutes - result.total_minutes) /
                            standard.total_minutes,
                        1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The same SoC_2 occupies 27%% of the VC707 but only ~7%% of the\n"
      "UltraScale+ parts: congestion pressure disappears, every run gets\n"
      "cheaper, and the absolute value of parallel compilation shrinks\n"
      "with it. gamma (and therefore the class structure) is a property\n"
      "of the design, not the board.\n\n");

  // Floorplan footprint on the small vs large board.
  for (const char* name : {"vc707", "vcu118"}) {
    const fabric::Device device = std::string(name) == "vc707"
                                      ? fabric::Device::vc707()
                                      : fabric::Device::vcu118();
    const floorplan::Floorplanner planner(device);
    const auto rtl =
        netlist::elaborate(core::characterization_soc(2), lib);
    std::vector<floorplan::PartitionRequest> reqs;
    std::vector<std::string> names;
    for (int p = 0; p < static_cast<int>(rtl.partitions().size()); ++p) {
      reqs.push_back(
          {rtl.partitions()[p].name, rtl.partition_demand(lib, p)});
      names.push_back(rtl.partitions()[p].name +
                      "(" + rtl.partitions()[p].modules.front() + ")");
    }
    floorplan::FloorplanOptions fopt;
    fopt.refine_iterations = 60;
    const auto plan = planner.plan(reqs, rtl.static_resources(lib), fopt);
    std::printf("SOC_2 floorplan on %s (waste %.1f kLUT-eq):\n%s\n",
                device.name().c_str(), plan.waste / 1000.0,
                floorplan::visualize(device, plan.pblocks, names,
                                     {3, true})
                    .c_str());
  }
  return 0;
}
