// Ablation: runtime-system design choices on the WAMI workload (SoC_Y):
//   - bitstream compression on/off (reconfiguration latency impact),
//   - interrupt-driven Linux manager vs bare-metal polling driver,
//   - software fallback cost sweep for unmapped kernels (the
//     "non-interleaved reconfiguration" penalty of few-tile SoCs).
#include <cstdio>

#include "wami/app.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Ablation: runtime manager and reconfiguration choices",
                "Section V software stack / Fig. 4 workload");

  // 1. Compression: compressed vs raw partial bitstreams.
  {
    std::printf("Bitstream compression (SoC_Y, 3 frames, 128x128):\n");
    TextTable table({"pbs mode", "ms/frame", "ICAP MB moved", "J/frame"});
    for (const bool compressed : {true, false}) {
      wami::WamiAppOptions opt;
      opt.frames = 3;
      opt.verify = false;
      if (!compressed) {
        // Uncompressed images: ~4.1x the compressed transport size (the
        // measured mean raw/compressed ratio of the Table VI tiles).
        opt.pbs_bytes.assign(12, 0);
        for (int k = 1; k <= 12; ++k) {
          const auto registry =
              wami::wami_accelerator_registry(opt.workload);
          opt.pbs_bytes[static_cast<std::size_t>(k - 1)] =
              static_cast<std::size_t>(
                  registry.get(wami::kernel_name(k)).luts * 45);
        }
      }
      wami::WamiApp app('Y', opt);
      const auto r = app.run();
      table.add_row({compressed ? "compressed" : "raw",
                     TextTable::num(r.seconds_per_frame * 1e3, 2),
                     TextTable::num(static_cast<double>(r.icap_bytes) / 1e6,
                                    1),
                     TextTable::num(r.joules_per_frame, 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // 2. Software-fallback cost sweep: how the few-tile SoC_X degrades as
  // unmapped kernels become more expensive on the CPU.
  {
    std::printf(
        "Software-fallback cost sweep (kernels outside the mapping):\n");
    TextTable table({"cpu factor", "SoC_X ms/frame", "SoC_Y ms/frame",
                     "SoC_Z ms/frame", "X vs Z"});
    for (const double factor : {1.0, 2.0, 4.0, 8.0}) {
      double ms[3];
      int i = 0;
      for (const char which : {'X', 'Y', 'Z'}) {
        wami::WamiAppOptions opt;
        opt.frames = 2;
        opt.verify = false;
        opt.cpu_fallback_factor = factor;
        wami::WamiApp app(which, opt);
        ms[i++] = app.run().seconds_per_frame * 1e3;
      }
      table.add_row({TextTable::num(factor, 1), TextTable::num(ms[0], 2),
                     TextTable::num(ms[1], 2), TextTable::num(ms[2], 2),
                     TextTable::num(ms[0] / ms[2], 2)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "SoC_X (2 tiles, 2 unmapped kernels incl. change detection)\n"
        "degrades fastest: exactly the paper's observation that few-tile\n"
        "mappings pay for work that cannot be interleaved.\n\n");
  }

  // 3. Interrupt-driven manager vs bare-metal polling.
  {
    std::printf("Linux manager (IRQ) vs bare-metal (polling), SoC_Y RT_1:\n");
    TextTable table({"driver", "total ms for 8 invocations", "MMIO ops"});
    const auto registry =
        wami::wami_accelerator_registry(wami::WamiWorkload{});
    const auto partitions = wami::table6_partitions('Y');
    const auto& members = partitions[0];
    for (const bool baremetal : {false, true}) {
      soc::Soc soc(wami::table6_soc('Y'), registry);
      runtime::BitstreamStore store(soc.memory());
      const int tile = soc.reconf_tiles()[0]->index();
      for (const int k : members)
        store.add(tile, wami::kernel_name(k),
                  static_cast<std::size_t>(200'000));
      const auto buf = soc.memory().allocate("ablation_buf", 4u << 20);
      soc::AccelTask task;
      task.src = buf;
      task.dst = buf + (2u << 20);
      task.items = 4'096;
      task.aux = 2;  // timing-only invocation of the grayscale node

      runtime::ReconfigurationManager manager(soc, store);
      runtime::BareMetalDriver driver(soc, store);
      const auto t0 = soc.kernel().now();
      const auto ops0 = soc.cpu().reg_ops();
      auto job = [&]() -> sim::Process {
        for (int rep = 0; rep < 2; ++rep) {
          for (const int k : members) {
            sim::SimEvent done(soc.kernel());
            if (baremetal) {
              driver.run(tile, wami::kernel_name(k), task, done);
            } else {
              manager.run(tile, wami::kernel_name(k), task, done);
            }
            co_await done.wait();
          }
        }
      };
      job();
      soc.kernel().run();
      table.add_row(
          {baremetal ? "bare-metal (poll)" : "Linux manager (IRQ)",
           TextTable::num(static_cast<double>(soc.kernel().now() - t0) /
                              (soc.config().clock_mhz * 1e3),
                          2),
           TextTable::integer(
               static_cast<long long>(soc.cpu().reg_ops() - ops0))});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
