// Reproduces paper Table II: post-synthesis LUT utilization of the
// characterization accelerators, the CPU tile and the static part, on the
// VC707 device model.
#include <cstdio>

#include "core/reference_designs.hpp"
#include "hls/estimator.hpp"
#include "hls/library.hpp"
#include "netlist/rtl.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Table II: resource utilization of the accelerators",
                "PR-ESP (DATE'23) Table II");

  const auto lib = core::characterization_library();

  TextTable table({"block", "LUTs (measured)", "LUTs (paper)", "delta %"});
  const struct {
    const char* name;
    double paper;
  } blocks[] = {
      {"mac", 2'450},       {"conv2d", 36'741}, {"gemm", 30'617},
      {"fft", 33'690},      {"sort", 20'468},
  };
  for (const auto& b : blocks) {
    const double measured =
        static_cast<double>(lib.get(b.name).resources.luts);
    table.add_row({b.name, TextTable::num(measured, 0),
                   TextTable::num(b.paper, 0),
                   TextTable::num(100.0 * (measured - b.paper) / b.paper, 2)});
  }

  // CPU tile and static parts, from the elaborated SOC_2.
  const auto rtl = netlist::elaborate(core::characterization_soc(2), lib);
  const double cpu_tile =
      static_cast<double>(
          lib.get(netlist::ComponentLibrary::kLeon3).resources.luts +
          lib.get(netlist::ComponentLibrary::kTileSocket).resources.luts);
  const double static_luts =
      static_cast<double>(rtl.static_resources(lib).luts);
  const double static_wo_cpu = static_luts - cpu_tile;
  const struct {
    const char* name;
    double measured;
    double paper;
  } aggregates[] = {
      {"CPU (Leon3 tile)", cpu_tile, 43'013},
      {"Static", static_luts, 82'267},
      {"Static (w/o CPU)", static_wo_cpu, 39'254},
  };
  for (const auto& a : aggregates)
    table.add_row({a.name, TextTable::num(a.measured, 0),
                   TextTable::num(a.paper, 0),
                   TextTable::num(100.0 * (a.measured - a.paper) / a.paper,
                                  2)});
  std::printf("%s\n", table.render().c_str());
  return 0;
}
