// Defrag chaos soak: the same seeded tenant churn is replayed against
// two fleets that differ in exactly one bit — `[fleet] repack` — while
// the repack-enabled run additionally has kRepackAbort faults armed
// against its background repacker. Proves the online-defragmentation
// tentpole end to end:
//
//   - the repacker actually defragments: mean fragmentation ratio after
//     the soak is strictly below the pre-soak ratio, with at least one
//     committed migration;
//   - migrations are invisible to tenants: the terminal workload outcome
//     of every request (hardware-ok / fallback / failed / typed shed,
//     keyed by request id) is bit-identical repacker-on vs repacker-off,
//     even with aborts injected mid-migration;
//   - the whole thing replays: re-running the first repack-on seed
//     reproduces the full fleet digest (which embeds the per-shard
//     frag=[...] and repack=[migrations,aborts,failures] state).
//
// Emits BENCH_defrag.json (frag_before/frag_after, migrations, p99
// completion latency with the repacker on vs off, bit_identical flag)
// for the bench workflow's required-field gate. tools/run_tier1.sh's
// `defrag` stage runs a short configuration of this soak.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/load.hpp"
#include "netlist/netlist.hpp"
#include "soc/accelerator.hpp"

using namespace presp;
using namespace presp::fleet;

namespace {

// One shard: the smallest SoC with a reconfiguration controller and two
// reconfigurable tiles (grid indices 3 and 4) sharing both modules, so
// the repacker always has an idle sibling region to compact.
const char* kShardSocText = R"(
[soc]
name = defrag_shard
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_b
r1c2 = empty
)";

soc::AcceleratorRegistry make_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 12'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 2;
    spec.latency.startup_cycles = 30;
    spec.latency.words_in_per_item = 1.0;
    spec.latency.words_out_per_item = 0.5;
    registry.add(spec);
  }
  return registry;
}

/// The soak topology, with `repack` as the single variable under test.
/// Deadlines are deliberately generous: the comparison isolates what the
/// repacker changes, so no request may be shed or failed merely because
/// a migration held a tile lock for a few extra cycles.
FleetTopology defrag_topology(bool repack_on) {
  FleetTopology topo;
  topo.shards = 4;
  topo.quantum_cycles = 4'000;
  topo.coalesce_limit = 4;
  topo.service_estimate_cycles = 90'000;
  topo.fallback_latency_cycles = 200'000;
  for (auto& cls : topo.classes) {
    cls.deadline_quanta = 10'000;
    cls.queue_bound = 4'096;
  }
  topo.repack = repack_on;
  // One repack opportunity every other quantum; migrate on any
  // fragmentation at all so a short soak still shows strict improvement.
  topo.repack_interval_cycles = 2 * topo.quantum_cycles;
  topo.repack_frag_threshold = 0.0;
  return topo;
}

struct ConfigOutcome {
  bool repack_on = false;
  FleetStats stats;
  std::vector<long long> latencies;  // hardware completions, cycles
  bool drained = false;
  bool conserved = false;
  bool explained = false;
  double frag_before = 0.0;  // mean over shards, pre-soak
  double frag_after = 0.0;   // mean over shards, post-drain
  std::uint64_t migrations = 0;
  std::uint64_t aborts = 0;
  std::uint64_t failures = 0;
  /// Full fleet digest (includes frag/repack state) — replay equality.
  std::string digest;
  /// Terminal workload outcome of every request, keyed by id and
  /// independent of timing, shard placement and coalescing: the on/off
  /// bit-identical comparison.
  std::string workload_digest;
};

double mean_frag(const FleetManager& fleet) {
  double sum = 0.0;
  for (int s = 0; s < fleet.num_shards(); ++s)
    sum += fleet.dynamic_floorplan(s) == nullptr
               ? 0.0
               : fleet.dynamic_floorplan(s)->fragmentation().ratio();
  return fleet.num_shards() == 0 ? 0.0 : sum / fleet.num_shards();
}

/// Outcome class for the tenant-visible digest. kOk and kCoalescedOk
/// collapse to the same class: whether a completion piggybacked on a
/// sibling's reconfiguration is a scheduling detail, not a result.
const char* outcome_class(const FleetOutcome& outcome) {
  switch (outcome.kind) {
    case OutcomeKind::kOk:
    case OutcomeKind::kCoalescedOk:
      return "ok";
    case OutcomeKind::kFallback:
      return "fallback";
    case OutcomeKind::kFailed:
      return "failed";
    case OutcomeKind::kShed:
      return "shed";
  }
  return "?";
}

ConfigOutcome run_config(std::uint64_t seed, int quanta, bool repack_on) {
  const FleetTopology topo = defrag_topology(repack_on);
  // Chaos plane: aborts are thrown at the repacker mid-migration. They
  // target the repack path only, so the repack-off run (which never
  // consults kRepackAbort) sees the exact same workload either way.
  fault::FaultInjector injector;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  for (int i = 0; i < 3; ++i)
    injector.arm({fault::FaultSite::kRepackAbort, -1, -1,
                  1 + static_cast<std::uint64_t>(rng.next_below(8))});

  const netlist::SocConfig config = netlist::SocConfig::parse(kShardSocText);
  const soc::AcceleratorRegistry registry = make_registry();
  FleetManager fleet(topo, config, registry, seed, &injector);
  fleet.add_module("acc_a", 140'000);
  fleet.add_module("acc_b", 150'000);

  ConfigOutcome out;
  out.repack_on = repack_on;
  out.frag_before = mean_frag(fleet);

  LoadOptions load_options;
  load_options.seed = seed;
  load_options.arrivals_per_quantum = 1.0;
  load_options.modules = {"acc_a", "acc_b"};
  SyntheticLoad load(load_options);

  for (int q = 0; q < quanta; ++q) {
    for (FleetRequest& request :
         load.generate(fleet.now(), topo.burst_multiplier, nullptr))
      fleet.submit(std::move(request));
    fleet.step();
  }
  out.drained = fleet.drain(4 * quanta + 2'000);
  out.stats = fleet.stats();
  out.conserved = out.stats.conserved();
  out.explained = out.stats.sheds_explained();
  out.frag_after = mean_frag(fleet);
  for (int s = 0; s < fleet.num_shards(); ++s) {
    if (fleet.repacker(s) == nullptr) continue;
    out.migrations += fleet.repacker(s)->stats().migrations;
    out.aborts += fleet.repacker(s)->stats().aborts;
    out.failures += fleet.repacker(s)->stats().failures;
  }
  for (const FleetOutcome& outcome : fleet.outcomes()) {
    if (outcome.kind == OutcomeKind::kOk ||
        outcome.kind == OutcomeKind::kCoalescedOk)
      out.latencies.push_back(static_cast<long long>(outcome.latency));
  }
  std::sort(out.latencies.begin(), out.latencies.end());

  // Retirement order is timing-dependent; key by request id so the
  // digest only changes if some request's terminal result changes.
  std::map<std::uint64_t, std::string> by_id;
  for (const FleetOutcome& outcome : fleet.outcomes()) {
    std::ostringstream line;
    line << outcome_class(outcome);
    if (outcome.kind == OutcomeKind::kShed)
      line << ":" << static_cast<int>(outcome.error);
    by_id[outcome.request_id] = line.str();
  }
  std::ostringstream workload;
  for (const auto& [id, cls] : by_id) workload << id << "=" << cls << ";";
  out.workload_digest = workload.str();

  std::ostringstream digest;
  digest << fleet.digest() << " generated=" << load.generated()
         << " drained=" << (out.drained ? 1 : 0);
  out.digest = digest.str();
  return out;
}

/// Exact nearest-rank percentile over a sorted sample vector.
long long percentile(const std::vector<long long>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  // bench_defrag [first_seed [num_seeds [quanta]]] [--json out.json]
  std::string json_path = "BENCH_defrag.json";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  const std::uint64_t first_seed =
      positional.size() > 0 ? std::strtoull(positional[0].c_str(), nullptr, 10)
                            : 1;
  const int num_seeds =
      std::max(1, positional.size() > 1 ? std::atoi(positional[1].c_str())
                                        : 3);
  const int quanta =
      std::max(40, positional.size() > 2 ? std::atoi(positional[2].c_str())
                                         : 300);

  bench::header(
      "Defrag soak: background repacker vs identical repack-off replay",
      "online fabric defragmentation (DESIGN.md defrag: relocatable "
      "bitstreams, region split/merge, background repacker)");

  TextTable table({"seed", "frag before", "frag after", "migrations",
                   "aborts", "p99 on", "p99 off", "identical"});
  double frag_before_sum = 0.0;
  double frag_after_sum = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t aborts = 0;
  std::uint64_t failures = 0;
  std::vector<long long> lat_on;
  std::vector<long long> lat_off;
  bool all_identical = true;
  bool all_improved = true;
  bool all_sound = true;  // conserved + explained + drained, both runs
  bool chaos_fired = false;
  std::string first_on_digest;

  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const ConfigOutcome on = run_config(seed, quanta, true);
    const ConfigOutcome off = run_config(seed, quanta, false);
    if (i == 0) first_on_digest = on.digest;

    const bool identical = on.workload_digest == off.workload_digest;
    all_identical = all_identical && identical;
    all_improved =
        all_improved && on.migrations > 0 && on.frag_after < on.frag_before;
    for (const ConfigOutcome* run : {&on, &off})
      all_sound =
          all_sound && run->conserved && run->explained && run->drained;
    chaos_fired = chaos_fired || on.aborts > 0;
    if (!identical)
      std::printf("seed %llu workload mismatch:\n  on : %s\n  off: %s\n",
                  static_cast<unsigned long long>(seed),
                  on.workload_digest.c_str(), off.workload_digest.c_str());

    frag_before_sum += on.frag_before;
    frag_after_sum += on.frag_after;
    migrations += on.migrations;
    aborts += on.aborts;
    failures += on.failures;
    lat_on.insert(lat_on.end(), on.latencies.begin(), on.latencies.end());
    lat_off.insert(lat_off.end(), off.latencies.begin(), off.latencies.end());
    table.add_row({TextTable::integer(static_cast<long long>(seed)),
                   TextTable::num(on.frag_before, 3),
                   TextTable::num(on.frag_after, 3),
                   TextTable::integer(static_cast<long long>(on.migrations)),
                   TextTable::integer(static_cast<long long>(on.aborts)),
                   TextTable::integer(percentile(on.latencies, 0.99)),
                   TextTable::integer(percentile(off.latencies, 0.99)),
                   identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  std::sort(lat_on.begin(), lat_on.end());
  std::sort(lat_off.begin(), lat_off.end());
  const double frag_before = frag_before_sum / num_seeds;
  const double frag_after = frag_after_sum / num_seeds;
  const long long p99_on = percentile(lat_on, 0.99);
  const long long p99_off = percentile(lat_off, 0.99);
  std::printf("fragmentation (mean over shards and seeds): %.4f -> %.4f  "
              "migrations %llu  aborts %llu  failures %llu\n",
              frag_before, frag_after,
              static_cast<unsigned long long>(migrations),
              static_cast<unsigned long long>(aborts),
              static_cast<unsigned long long>(failures));
  std::printf("p99 completion latency: repack on %lld  off %lld  "
              "(delta %+lld cycles)\n",
              p99_on, p99_off, p99_on - p99_off);

  // Determinism self-check: the first repack-on seed, replayed, must
  // reproduce its digest — frag/repack state included — bit-for-bit.
  const ConfigOutcome replay = run_config(first_seed, quanta, true);
  const bool deterministic = replay.digest == first_on_digest;
  std::printf("determinism replay (seed %llu, repack on): %s\n",
              static_cast<unsigned long long>(first_seed),
              deterministic ? "identical" : "MISMATCH");
  if (!deterministic)
    std::printf("  first : %s\n  replay: %s\n", first_on_digest.c_str(),
                replay.digest.c_str());

  std::ofstream json(json_path);
  json << "{\n  \"first_seed\": " << first_seed
       << ",\n  \"seeds\": " << num_seeds
       << ",\n  \"quanta_per_seed\": " << quanta
       << ",\n  \"shards\": " << defrag_topology(true).shards
       << ",\n  \"frag_before\": " << frag_before
       << ",\n  \"frag_after\": " << frag_after
       << ",\n  \"migrations\": " << migrations
       << ",\n  \"repack_aborts\": " << aborts
       << ",\n  \"repack_failures\": " << failures
       << ",\n  \"p99_cycles_on\": " << p99_on
       << ",\n  \"p99_cycles_off\": " << p99_off
       << ",\n  \"latency_samples_on\": " << lat_on.size()
       << ",\n  \"latency_samples_off\": " << lat_off.size()
       << ",\n  \"bit_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"frag_improved\": " << (all_improved ? "true" : "false")
       << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << "\n}\n";
  std::printf("bench_defrag: wrote %s\n", json_path.c_str());

  std::printf("acceptance: frag strictly improved: %s  workload "
              "bit-identical on vs off: %s  abort chaos fired: %s  "
              "conserved/explained/drained: %s  deterministic: %s\n",
              all_improved ? "yes" : "NO", all_identical ? "yes" : "NO",
              chaos_fired ? "yes" : "NO", all_sound ? "yes" : "NO",
              deterministic ? "yes" : "NO");
  return (all_improved && all_identical && chaos_fired && all_sound &&
          deterministic)
             ? 0
             : 1;
}
