// Chaos soak: the WAMI application under randomized cross-layer fault
// injection (src/fault). Every seed expands into a deterministic
// FaultPlan mixing all six fault sites (ICAP stalls, DFX-controller
// hangs, stuck decouplers, accelerator hangs, SEU flips, NoC packet
// corruption); the runtime's watchdogs, health registry and software
// fallback must keep every frame bit-exact.
//
// Hard acceptance criteria (the bench exits non-zero on violation):
//   - >= 1000 faults injected in total, with every site represented;
//   - zero WAMI frames lost (every frame verifies bit-exactly);
//   - re-running a seed reproduces identical stats (determinism).
//
// tools/run_chaos.sh sweeps a seed range and diffs two runs of each seed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "wami/app.hpp"

using namespace presp;

namespace {

struct SeedOutcome {
  std::uint64_t seed = 0;
  std::uint64_t armed = 0;
  std::uint64_t injected_by_site[fault::kNumFaultSites] = {};
  std::uint64_t injected = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t reconfigurations = 0;
  long long recovery_cycles = 0;
  int frames_lost = 0;
  double ms_per_frame = 0.0;

  /// Stable digest for the determinism self-check and run_chaos.sh diffs.
  std::string digest() const {
    std::ostringstream out;
    out << "seed=" << seed << " injected=" << injected << " sites=[";
    for (int s = 0; s < fault::kNumFaultSites; ++s)
      out << (s == 0 ? "" : ",") << injected_by_site[s];
    out << "] fallbacks=" << fallbacks << " watchdogs=" << watchdog_fires
        << " reroutes=" << reroutes << " quarantines=" << quarantines
        << " scrub_repairs=" << scrub_repairs
        << " reconf=" << reconfigurations
        << " recovery_cycles=" << recovery_cycles
        << " frames_lost=" << frames_lost;
    return out.str();
  }
};

SeedOutcome run_seed(std::uint64_t seed, int faults) {
  fault::FaultInjector injector;

  wami::WamiAppOptions opt;
  opt.frames = 3;
  opt.workload = {64, 64};
  opt.lk_iterations = 2;
  // Keep the run-watchdog far above any legitimate 64x64 kernel run but
  // well below the default so hung-run recovery latency stays visible in
  // per-frame milliseconds rather than dominating them.
  opt.manager.watchdog_run_cycles = 5'000'000;
  opt.fault.injector = &injector;
  opt.fault.cross_tile_images = true;
  opt.fault.scrub_between_frames = true;
  opt.fault.rehabilitate_between_frames = true;

  wami::WamiApp app('X', opt);

  fault::FaultPlanOptions plan_options;
  plan_options.seed = seed;
  plan_options.faults = faults;
  for (const auto& tile : app.soc().reconf_tiles())
    plan_options.tiles.push_back(tile->index());
  plan_options.max_trigger_count = 12;
  fault::FaultPlan plan(plan_options);
  plan.arm(injector);

  const wami::WamiAppResult result = app.run();

  SeedOutcome out;
  out.seed = seed;
  out.armed = static_cast<std::uint64_t>(plan.specs().size());
  for (int s = 0; s < fault::kNumFaultSites; ++s)
    out.injected_by_site[s] = injector.stats().injected[s];
  out.injected = injector.stats().total_injected();
  out.fallbacks = result.software_fallbacks;
  out.watchdog_fires = result.watchdog_fires;
  out.reroutes = result.reroutes;
  out.quarantines = result.quarantines;
  out.scrub_repairs = result.scrub_repairs;
  out.reconfigurations = result.reconfigurations;
  out.recovery_cycles = app.manager().stats().recovery_cycles;
  out.frames_lost = result.frames_lost;
  out.ms_per_frame = result.seconds_per_frame * 1e3;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // bench_chaos [first_seed [num_seeds [faults_per_seed]]]
  const std::uint64_t first_seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const int num_seeds = std::max(1, argc > 2 ? std::atoi(argv[2]) : 16);
  const int faults_per_seed =
      std::max(1, argc > 3 ? std::atoi(argv[3]) : 96);

  bench::header("Chaos soak: WAMI under randomized cross-layer faults",
                "robustness layer (DESIGN.md fault model and recovery "
                "matrix)");

  TextTable table({"seed", "armed", "injected", "fallbacks", "watchdogs",
                   "reroutes", "quar", "scrubfix", "recov ms", "frames lost",
                   "ms/frame"});
  std::uint64_t total_by_site[fault::kNumFaultSites] = {};
  std::uint64_t total_injected = 0;
  std::uint64_t total_watchdogs = 0;
  std::uint64_t total_fallbacks = 0;
  long long total_recovery_cycles = 0;
  int total_frames = 0;
  int total_frames_lost = 0;
  std::vector<std::string> digests;

  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const SeedOutcome out = run_seed(seed, faults_per_seed);
    digests.push_back(out.digest());
    for (int s = 0; s < fault::kNumFaultSites; ++s)
      total_by_site[s] += out.injected_by_site[s];
    total_injected += out.injected;
    total_watchdogs += out.watchdog_fires;
    total_fallbacks += out.fallbacks;
    total_recovery_cycles += out.recovery_cycles;
    total_frames += 3;
    total_frames_lost += out.frames_lost;
    // 78 MHz system clock (paper's VC707 system).
    const double recov_ms =
        static_cast<double>(out.recovery_cycles) / 78e6 * 1e3;
    table.add_row({TextTable::integer(static_cast<long long>(seed)),
                   TextTable::integer(static_cast<long long>(out.armed)),
                   TextTable::integer(static_cast<long long>(out.injected)),
                   TextTable::integer(static_cast<long long>(out.fallbacks)),
                   TextTable::integer(
                       static_cast<long long>(out.watchdog_fires)),
                   TextTable::integer(static_cast<long long>(out.reroutes)),
                   TextTable::integer(
                       static_cast<long long>(out.quarantines)),
                   TextTable::integer(
                       static_cast<long long>(out.scrub_repairs)),
                   TextTable::num(recov_ms, 2),
                   TextTable::integer(out.frames_lost),
                   TextTable::num(out.ms_per_frame, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  TextTable sites({"site", "injected"});
  for (int s = 0; s < fault::kNumFaultSites; ++s)
    sites.add_row({to_string(static_cast<fault::FaultSite>(s)),
                   TextTable::integer(
                       static_cast<long long>(total_by_site[s]))});
  sites.add_row({"total",
                 TextTable::integer(static_cast<long long>(total_injected))});
  std::printf("%s\n", sites.render().c_str());

  const double mean_recovery_ms =
      total_watchdogs == 0
          ? 0.0
          : static_cast<double>(total_recovery_cycles) /
                static_cast<double>(total_watchdogs) / 78e6 * 1e3;
  std::printf("frames: %d  lost: %d  fallback executions: %llu  "
              "mean recovery latency: %.2f ms/watchdog\n",
              total_frames, total_frames_lost,
              static_cast<unsigned long long>(total_fallbacks),
              mean_recovery_ms);

  // Determinism self-check: the first seed, replayed, must reproduce its
  // stats bit-for-bit.
  const SeedOutcome replay = run_seed(first_seed, faults_per_seed);
  const bool deterministic = replay.digest() == digests.front();
  std::printf("determinism replay (seed %llu): %s\n",
              static_cast<unsigned long long>(first_seed),
              deterministic ? "identical" : "MISMATCH");
  if (!deterministic) {
    std::printf("  first : %s\n  replay: %s\n", digests.front().c_str(),
                replay.digest().c_str());
  }

  // The 1000-fault floor and full site coverage apply to soak-scale
  // invocations (the default); short sweeps (tools/run_chaos.sh runs one
  // seed at a time) only need faults to fire, frames to survive and the
  // replay to match.
  const bool full_soak =
      static_cast<std::uint64_t>(num_seeds) *
          static_cast<std::uint64_t>(faults_per_seed) >=
      1000;
  // Coverage only over the SoC-model sites: the fleet-level sites have
  // zero weight in this plan and are exercised by bench_fleet instead.
  bool sites_covered = true;
  if (full_soak)
    for (int s = 0; s < fault::kNumSocFaultSites; ++s)
      sites_covered &= total_by_site[s] > 0;
  const bool enough = full_soak ? total_injected >= 1000 : total_injected > 0;
  const bool no_loss = total_frames_lost == 0;
  std::printf("acceptance (%s): injected %s: %s  all sites: %s  "
              "zero frames lost: %s\n",
              full_soak ? "soak" : "sweep", full_soak ? ">=1000" : ">0",
              enough ? "yes" : "NO", sites_covered ? "yes" : "NO",
              no_loss ? "yes" : "NO");
  return (enough && sites_covered && no_loss && deterministic) ? 0 : 1;
}
