// Reproduces paper Table IV: P&R parallelism evaluation on the WAMI SoCs
// (SoC_A..SoC_D). For each SoC the three strategies are evaluated and the
// one chosen by PR-ESP's size-driven algorithm is marked; the paper's
// boldface (chosen = fastest) is the reproduction target.
#include <cstdio>
#include <map>

#include "core/flow.hpp"
#include "wami/accelerators.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Table IV: P&R parallelism on the WAMI SoCs",
                "PR-ESP (DATE'23) Table IV");

  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);

  struct PaperRow {
    char soc;
    const char* accs;
    const char* cls;
    double alpha, kappa, gamma;
    double paper_fully, paper_semi, paper_serial;
    const char* paper_choice;
  };
  const PaperRow rows[] = {
      {'A', "{4,8,10,9}", "1.2", 9.2, 29.1, 1.26, 150, 186, 192,
       "fully-parallel"},
      {'B', "{2,3,11,1}", "1.1", 4.5, 28.3, 0.60, 143, 156, 135, "serial"},
      {'C', "{7,11,8,2}", "1.3", 5.5, 28.2, 0.97, 159, 152, 167,
       "semi-parallel"},
      {'D', "{4,5,9,2}+CPU", "2.1", 23.5, 12.2, 2.40, 119, 131, 142,
       "fully-parallel"},
  };

  for (const PaperRow& row : rows) {
    const auto config = wami::table4_soc(row.soc);
    const auto result = flow.run(config);
    const auto rtl = netlist::elaborate(config, lib);
    std::vector<long long> mods;
    for (const auto& p : rtl.partitions())
      for (const auto& m : p.modules)
        mods.push_back(netlist::SocRtl::module_resources(lib, m).luts);
    const long long region = result.plan.static_capacity.luts;

    std::printf(
        "SoC_%c %s (paper class %s): kappa=%.1f%% (paper %.1f) "
        "gamma=%.2f (paper %.2f)\n",
        row.soc, row.accs, row.cls, result.metrics.kappa * 100, row.kappa,
        result.metrics.gamma, row.gamma);

    const auto eval = [&](core::Strategy s, int tau) {
      return core::evaluate_schedule(flow.model(),
                                     result.metrics.static_luts, region,
                                     mods, s, tau);
    };
    const auto fully =
        eval(core::Strategy::kFullyParallel, static_cast<int>(mods.size()));
    const auto semi = eval(core::Strategy::kSemiParallel, 2);
    const auto serial = eval(core::Strategy::kSerial, 1);

    TextTable table({"strategy", "t_static", "omega", "T_P&R (paper)"});
    table.add_row({"fully-par", TextTable::num(fully.t_static, 0),
                   TextTable::num(fully.omega, 0),
                   bench::vs_paper(fully.total, row.paper_fully)});
    table.add_row({"semi-par (tau=2)", TextTable::num(semi.t_static, 0),
                   TextTable::num(semi.omega, 0),
                   bench::vs_paper(semi.total, row.paper_semi)});
    table.add_row({"serial", TextTable::num(serial.t_static, 0),
                   TextTable::num(0.0, 0),
                   bench::vs_paper(serial.total, row.paper_serial)});
    std::printf("%s", table.render().c_str());
    std::printf("  PR-ESP chooses: %s (paper: %s)\n\n",
                core::to_string(result.decision.strategy), row.paper_choice);
  }
  return 0;
}
