// Google-benchmark microbenchmarks of the PR-ESP engines: floorplanner
// candidate enumeration, annealing placer, negotiated-congestion router,
// NoC packet transport, bitstream compression, and the WAMI kernels.
//
// `bench_micro --exec-compare [out.json]` skips google-benchmark and runs
// the parallel-vs-serial comparison for the execution engine instead: the
// full DPR flow at 1 vs 8 pool threads and the WAMI per-frame pipeline at
// 1 vs 8 threads, cross-checking result checksums and emitting a
// machine-readable BENCH_exec.json (speedup, efficiency, task count).
//
// `bench_micro --store-compare [out.json]` runs a repeated-accelerator
// reconfiguration workload (two tiles cycling modules on one DFXC) under
// the serial combined transfer, the pipelined split fetch/program flow,
// and pipelined + LRU bitstream cache, comparing total simulated cycles
// and emitting BENCH_store.json (speedup, cache hit rate).
//
// `bench_micro --contention [out.json]` measures steal-heavy fine-grained
// task throughput at 1/2/8 pool threads, lock-free Chase-Lev deques vs
// the mutex-deque baseline, plus a cold/warm/one-module-modified flow
// cache comparison on the Table VI SoC_X; both sections also ride along
// inside BENCH_exec.json when --exec-compare runs.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "core/calibration.hpp"
#include "core/flow.hpp"
#include "exec/thread_pool.hpp"
#include "trace/metrics.hpp"
#include "floorplan/floorplanner.hpp"
#include "noc/noc.hpp"
#include "pnr/engine.hpp"
#include "runtime/api.hpp"
#include "util/log.hpp"
#include "wami/accelerators.hpp"
#include "wami/frame_generator.hpp"
#include "wami/kernels.hpp"
#include "wami/pipeline.hpp"

using namespace presp;

namespace {

void BM_FloorplanCandidates(benchmark::State& state) {
  const auto device = fabric::Device::vc707();
  const floorplan::Floorplanner planner(device);
  const fabric::ResourceVec demand{
      state.range(0), state.range(0), 16, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.candidates(demand));
  }
}
BENCHMARK(BM_FloorplanCandidates)->Arg(5'000)->Arg(30'000);

void BM_FloorplanPlanFourPartitions(benchmark::State& state) {
  const auto device = fabric::Device::vc707();
  const floorplan::Floorplanner planner(device);
  std::vector<floorplan::PartitionRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back({"RT_" + std::to_string(i), {25'000, 25'000, 16, 64}});
  floorplan::FloorplanOptions opt;
  opt.refine_iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(reqs, {83'000, 83'000, 100, 50},
                                          opt));
  }
}
BENCHMARK(BM_FloorplanPlanFourPartitions);

netlist::Netlist scrambled_netlist(int cells) {
  netlist::Netlist nl("bench");
  for (int i = 0; i < cells; ++i)
    nl.add_cell({"c" + std::to_string(i),
                 netlist::CellKind::kLogic,
                 {180, 180, 0, 0},
                 ""});
  for (int i = 0; i < cells; ++i) {
    const int j = (i * 53 + 17) % cells;
    if (j == i) continue;
    nl.add_net({"n" + std::to_string(i), static_cast<netlist::CellId>(i),
                {static_cast<netlist::CellId>(j)}, 32});
  }
  return nl;
}

void BM_PlacerAnneal(benchmark::State& state) {
  const auto device = fabric::Device::vc707();
  const auto nl = scrambled_netlist(static_cast<int>(state.range(0)));
  pnr::PlacerOptions opt;
  opt.temperature_steps = 10;
  opt.moves_per_cell = 2;
  const pnr::Placer placer(device, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer.place(nl, {}));
  }
}
BENCHMARK(BM_PlacerAnneal)->Arg(100)->Arg(400);

void BM_RouterNegotiation(benchmark::State& state) {
  const auto device = fabric::Device::vc707();
  const auto nl = scrambled_netlist(300);
  pnr::PlacerOptions popt;
  popt.temperature_steps = 4;
  popt.moves_per_cell = 1;
  const auto placed = pnr::Placer(device, popt).place(nl, {});
  const pnr::Router router(device);
  for (auto _ : state) {
    pnr::RoutingState rs(device);
    benchmark::DoNotOptimize(router.route(nl, placed.placement, rs));
  }
}
BENCHMARK(BM_RouterNegotiation);

void BM_NocTransport(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    noc::Noc noc(kernel, 3, 3);
    auto sink = [&]() -> sim::Process {
      while (true) (void)co_await noc.rx(8, noc::Plane::kDmaRsp).receive();
    };
    sink();
    for (int i = 0; i < 1'000; ++i)
      noc.send({noc::Plane::kDmaRsp, 0, 8, 64, 0, 0});
    kernel.run();
    benchmark::DoNotOptimize(noc.stats(noc::Plane::kDmaRsp).flits);
  }
}
BENCHMARK(BM_NocTransport);

void BM_RleCompress(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::uint32_t> words(100'000);
  for (auto& w : words)
    w = rng.next_bool(0.25) ? static_cast<std::uint32_t>(rng.next_u64() | 1)
                            : 0u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitstream::rle_compress(words));
  }
}
BENCHMARK(BM_RleCompress);

void BM_WamiLucasKanadeStep(benchmark::State& state) {
  wami::FrameGenerator gen(
      wami::SceneOptions{static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)), 1.0, -0.5, 2, 6,
                         2.0, 1.0, 5});
  const auto f0 = wami::grayscale(wami::debayer(gen.next_frame()));
  const auto f1 = wami::grayscale(wami::debayer(gen.next_frame()));
  for (auto _ : state) {
    wami::AffineParams p{};
    benchmark::DoNotOptimize(wami::lucas_kanade_step(f0, f1, p));
  }
}
BENCHMARK(BM_WamiLucasKanadeStep)->Arg(64)->Arg(128);

void BM_CalibrationFit(benchmark::State& state) {
  const auto device = fabric::Device::vc707();
  core::RuntimeModelConstants truth;
  truth.ts1 = 0.8;
  truth.m1 = 0.3;
  std::vector<core::Observation> observations;
  for (const long long s : {40'000LL, 80'000LL, 95'000LL}) {
    core::Observation serial;
    serial.static_luts = s;
    serial.static_region_luts = 260'000 - s;
    serial.groups = {{37'000, 31'000, 21'000}};
    serial.serial = true;
    serial.measured_minutes =
        core::predict_observation(device, truth, serial);
    observations.push_back(serial);
    core::Observation par = serial;
    par.serial = false;
    par.groups = {{37'000}, {31'000}, {21'000}};
    par.measured_minutes = core::predict_observation(device, truth, par);
    observations.push_back(par);
  }
  core::CalibrationOptions opt;
  opt.sweeps = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::fit_constants(device, observations, {}, opt));
  }
}
BENCHMARK(BM_CalibrationFit);

void BM_RuntimeReconfigurationSwap(benchmark::State& state) {
  // Simulated cost is fixed; this measures the *host* cost of simulating
  // one module swap + run through the full manager/NoC/DFXC path.
  const auto registry =
      wami::wami_accelerator_registry(wami::WamiWorkload{64, 64});
  for (auto _ : state) {
    soc::Soc soc(wami::table6_soc('X'), registry);
    runtime::BitstreamStore store(soc.memory());
    runtime::ReconfigurationManager manager(soc, store);
    const int tile = soc.reconf_tiles()[0]->index();
    store.add(tile, "debayer", 300'000);
    store.add(tile, "warp", 300'000);
    const auto buf = soc.memory().allocate("b", 1 << 20);
    soc::AccelTask task;
    task.src = buf;
    task.dst = buf + (1 << 19);
    task.items = 1'000;
    auto job = [&]() -> sim::Process {
      for (const char* m : {"debayer", "warp", "debayer"}) {
        sim::SimEvent done(soc.kernel());
        manager.run(tile, m, task, done);
        co_await done.wait();
      }
    };
    job();
    soc.kernel().run();
    benchmark::DoNotOptimize(soc.kernel().events_executed());
  }
}
BENCHMARK(BM_RuntimeReconfigurationSwap);

void BM_WamiGoldenFrame(benchmark::State& state) {
  wami::FrameGenerator gen(wami::SceneOptions{});
  const auto bayer = gen.next_frame();
  wami::GmmState gmm(128, 128);
  wami::AffineParams p{};
  for (auto _ : state) {
    const auto rgb = wami::debayer(bayer);
    const auto gray = wami::grayscale(rgb);
    wami::lucas_kanade_step(gray, gray, p);
    benchmark::DoNotOptimize(wami::change_detection(gray, gmm));
  }
}
BENCHMARK(BM_WamiGoldenFrame);

void BM_WamiChangeDetection(benchmark::State& state) {
  wami::FrameGenerator gen(wami::SceneOptions{});
  const auto frame = wami::grayscale(wami::debayer(gen.next_frame()));
  wami::GmmState gmm(frame.width(), frame.height());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wami::change_detection(frame, gmm));
  }
}
BENCHMARK(BM_WamiChangeDetection);

// ------------------------------------------------------ --exec-compare

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t flow_checksum(const core::FlowResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, bits_of(r.achieved_fmax_mhz));
  h = mix(h, static_cast<std::uint64_t>(r.full_bitstream_bytes));
  h = mix(h, bits_of(r.synth_makespan_minutes));
  h = mix(h, bits_of(r.pnr_total_minutes));
  for (const auto& m : r.modules) {
    h = mix(h, static_cast<std::uint64_t>(m.pbs_raw_bytes));
    h = mix(h, static_cast<std::uint64_t>(m.pbs_compressed_bytes));
    h = mix(h, static_cast<std::uint64_t>(m.utilization.luts));
    h = mix(h, m.routed ? 1u : 0u);
  }
  return h;
}

std::uint64_t wami_checksum(
    const std::vector<wami::PipelineFrameResult>& results) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& r : results) {
    for (const double p : r.params) h = mix(h, bits_of(p));
    h = mix(h, bits_of(r.residual));
    h = mix(h, static_cast<std::uint64_t>(r.changed_pixels));
    for (const float v : r.stabilized.pixels())
      h = mix(h, bits_of(static_cast<double>(v)));
  }
  return h;
}

struct ExecCompareRow {
  const char* name = "";
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  std::size_t tasks = 0;
  std::uint64_t steals = 0;           // parallel run's work-steal count
  std::uint64_t steal_failures = 0;   // parallel run's empty/lost probes
  std::uint64_t parks = 0;            // parallel run's worker sleeps
  std::uint64_t max_queue_depth = 0;  // parallel run's queue high-water
  bool checksum_match = false;
  double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

constexpr int kCompareThreads = 8;

ExecCompareRow compare_flow(double* model_speedup) {
  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  const auto run = [&](int threads, double* seconds) {
    core::FlowOptions opt;
    opt.exec_threads = threads;
    const core::PrEspFlow flow(device, lib, opt);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = flow.run(wami::table4_soc('A'));
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return result;
  };
  ExecCompareRow row;
  row.name = "flow_pnr_parallel_strategy";
  const auto serial = run(1, &row.serial_seconds);
  const auto parallel = run(kCompareThreads, &row.parallel_seconds);
  row.tasks = parallel.exec.tasks;
  row.steals = parallel.exec.steals;
  row.steal_failures = parallel.exec.steal_failures;
  row.parks = parallel.exec.parks;
  row.max_queue_depth = parallel.exec.max_queue_depth;
  row.checksum_match = flow_checksum(serial) == flow_checksum(parallel);
  *model_speedup = parallel.exec.model_speedup;
  return row;
}

ExecCompareRow compare_wami() {
  wami::SceneOptions scene;
  scene.width = 192;
  scene.height = 192;
  wami::FrameGenerator gen(scene);
  std::vector<wami::ImageU16> frames;
  for (int i = 0; i < 8; ++i) frames.push_back(gen.next_frame());
  const auto run = [&](int threads, double* seconds,
                       exec::ThreadPool::Stats* stats) {
    wami::PipelineOptions options;
    options.threads = threads;
    wami::WamiPipeline pipeline(options);
    const auto t0 = std::chrono::steady_clock::now();
    auto results = pipeline.process_batch(frames);
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    *stats = pipeline.pool_stats();
    return results;
  };
  ExecCompareRow row;
  row.name = "wami_pipeline";
  exec::ThreadPool::Stats serial_stats;
  exec::ThreadPool::Stats parallel_stats;
  const auto serial = run(1, &row.serial_seconds, &serial_stats);
  const auto parallel =
      run(kCompareThreads, &row.parallel_seconds, &parallel_stats);
  row.tasks = frames.size();
  row.steals = parallel_stats.stolen;
  row.steal_failures = parallel_stats.steal_failures;
  row.parks = parallel_stats.parks;
  row.max_queue_depth = parallel_stats.max_queue_depth;
  row.checksum_match = wami_checksum(serial) == wami_checksum(parallel);
  return row;
}

// ----------------------------------------------------- --store-compare

const char* kStoreSocText = R"(
[soc]
name = store_bench
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a,acc_b
r1c1 = reconf:acc_a,acc_c
r1c2 = empty
)";

soc::AcceleratorRegistry store_bench_registry() {
  soc::AcceleratorRegistry registry;
  for (const char* name : {"acc_a", "acc_b", "acc_c"}) {
    soc::AcceleratorSpec spec;
    spec.name = name;
    spec.luts = 15'000;
    spec.latency.items_per_beat = 1;
    spec.latency.ii = 3;
    spec.latency.startup_cycles = 40;
    registry.add(spec);
  }
  return registry;
}

sim::Process store_worker(soc::Soc& soc,
                          runtime::ReconfigurationManager& manager,
                          int tile, std::vector<std::string> modules,
                          int rounds) {
  for (int r = 0; r < rounds; ++r) {
    runtime::Completion done(soc.kernel());
    manager.ensure_module(
        tile, modules[static_cast<std::size_t>(r) % modules.size()], done);
    co_await done.wait();
  }
}

struct StoreRunResult {
  sim::Time cycles = 0;
  runtime::StoreStats store;
  std::uint64_t reconfigurations = 0;
  std::uint64_t pipelined_fetches = 0;
  double hit_rate() const {
    const double total = static_cast<double>(store.hits + store.misses);
    return total > 0.0 ? static_cast<double>(store.hits) / total : 0.0;
  }
};

constexpr std::size_t kStorePbsBytes = 250'000;
constexpr int kStoreRounds = 6;

/// Two tiles interleave reconfiguration requests on the single DFXC,
/// cycling modules (five distinct images total, so a 4-slot cache sees
/// both reuse hits and LRU evictions).
StoreRunResult run_store_workload(bool pipelined, int cache_slots) {
  auto registry = store_bench_registry();
  soc::Soc soc(netlist::SocConfig::parse(kStoreSocText), registry);
  runtime::StoreOptions store_options;
  store_options.cache_slots = cache_slots;
  runtime::BitstreamStore store(soc.memory(), store_options);
  runtime::ManagerOptions manager_options;
  manager_options.pipelined = pipelined;
  runtime::ReconfigurationManager manager(soc, store, manager_options);
  for (const int tile : {3, 4})
    for (const char* m : {"acc_a", "acc_b", "acc_c"})
      store.add(tile, m, kStorePbsBytes);
  store_worker(soc, manager, 3, {"acc_a", "acc_b"}, kStoreRounds);
  store_worker(soc, manager, 4, {"acc_a", "acc_c", "acc_b"}, kStoreRounds);
  soc.kernel().run();
  StoreRunResult result;
  result.cycles = soc.kernel().now();
  result.store = store.stats();
  result.reconfigurations = manager.stats().reconfigurations;
  result.pipelined_fetches = manager.stats().pipelined_fetches;
  return result;
}

int run_store_compare(const std::string& out_path) {
  presp::set_log_level(presp::LogLevel::kWarn);
  const StoreRunResult serial = run_store_workload(false, 0);
  const StoreRunResult pipelined = run_store_workload(true, 0);
  const StoreRunResult cached = run_store_workload(true, 4);
  const auto speedup = [&](const StoreRunResult& r) {
    return r.cycles > 0
               ? static_cast<double>(serial.cycles) /
                     static_cast<double>(r.cycles)
               : 0.0;
  };
  std::printf("store-compare: %d reconfigurations per tile x 2 tiles, "
              "%zu-byte images\n",
              kStoreRounds, kStorePbsBytes);
  std::printf("  %-22s %12s %10s\n", "variant", "sim cycles", "speedup");
  std::printf("  %-22s %12llu %9.2fx\n", "serial",
              static_cast<unsigned long long>(serial.cycles), 1.0);
  std::printf("  %-22s %12llu %9.2fx  (%llu staged fetches)\n", "pipelined",
              static_cast<unsigned long long>(pipelined.cycles),
              speedup(pipelined),
              static_cast<unsigned long long>(pipelined.pipelined_fetches));
  std::printf("  %-22s %12llu %9.2fx  (hit rate %.2f, %llu evictions)\n",
              "pipelined+cache(4)",
              static_cast<unsigned long long>(cached.cycles),
              speedup(cached), cached.hit_rate(),
              static_cast<unsigned long long>(cached.store.evictions));
  std::ofstream json(out_path);
  json << "{\n  \"rounds_per_tile\": " << kStoreRounds
       << ",\n  \"pbs_bytes\": " << kStorePbsBytes
       << ",\n  \"serial_cycles\": " << serial.cycles
       << ",\n  \"pipelined_cycles\": " << pipelined.cycles
       << ",\n  \"cached_cycles\": " << cached.cycles
       << ",\n  \"speedup\": " << speedup(pipelined)
       << ",\n  \"cached_speedup\": " << speedup(cached)
       << ",\n  \"pipelined_fetches\": " << pipelined.pipelined_fetches
       << ",\n  \"cache_slots\": 4"
       << ",\n  \"cache_hits\": " << cached.store.hits
       << ",\n  \"cache_misses\": " << cached.store.misses
       << ",\n  \"cache_evictions\": " << cached.store.evictions
       << ",\n  \"cache_hit_rate\": " << cached.hit_rate() << "\n}\n";
  std::printf("store-compare: wrote %s\n", out_path.c_str());
  const bool ok = pipelined.cycles < serial.cycles;
  if (!ok)
    std::printf("store-compare: PIPELINED FLOW NOT FASTER THAN SERIAL\n");
  return ok ? 0 : 1;
}

// --------------------------------------------------------- --contention
//
// Steal-heavy fine-grained throughput: one root task fans every tiny
// task out of a single worker's deque, so all other workers live on the
// steal path. Lock-free Chase-Lev deques vs the mutex-deque baseline
// (Options::mutex_deques) at 1/2/8 threads.

constexpr int kContentionTasks = 100'000;
constexpr int kContentionRounds = 3;

double contention_round(int threads, bool mutex_deques,
                        exec::ThreadPool::Stats* stats) {
  exec::ThreadPool::Options options;
  options.threads = threads;
  options.mutex_deques = mutex_deques;
  exec::ThreadPool pool(options);
  std::atomic<std::uint64_t> sink{0};
  const auto t0 = std::chrono::steady_clock::now();
  pool.submit([&] {
    for (int i = 0; i < kContentionTasks; ++i)
      pool.submit(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
  });
  pool.wait_idle();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  *stats = pool.stats();
  if (sink.load() != kContentionTasks)
    std::fprintf(stderr, "contention: LOST TASKS (%llu of %d ran)\n",
                 static_cast<unsigned long long>(sink.load()),
                 kContentionTasks);
  return seconds;
}

struct ContentionRow {
  int threads = 0;
  double lockfree_seconds = 0.0;
  double mutex_seconds = 0.0;
  std::uint64_t steals = 0;          // lock-free run
  std::uint64_t steal_failures = 0;  // lock-free run
  double speedup() const {
    return lockfree_seconds > 0.0 ? mutex_seconds / lockfree_seconds : 0.0;
  }
};

ContentionRow contention_sweep_at(int threads) {
  ContentionRow row;
  row.threads = threads;
  // Best-of-N to shave scheduler noise; stats come from the best round.
  for (int round = 0; round < kContentionRounds; ++round) {
    exec::ThreadPool::Stats stats;
    const double lockfree = contention_round(threads, false, &stats);
    if (round == 0 || lockfree < row.lockfree_seconds) {
      row.lockfree_seconds = lockfree;
      row.steals = stats.stolen;
      row.steal_failures = stats.steal_failures;
    }
    const double mutex = contention_round(threads, true, &stats);
    if (round == 0 || mutex < row.mutex_seconds) row.mutex_seconds = mutex;
  }
  return row;
}

std::vector<ContentionRow> run_contention_sweep() {
  std::vector<ContentionRow> rows;
  std::printf("contention: %d tasks fanned out of one deque, best of %d "
              "rounds (hardware threads: %u)\n",
              kContentionTasks, kContentionRounds,
              std::thread::hardware_concurrency());
  for (const int threads : {1, 2, 8}) {
    rows.push_back(contention_sweep_at(threads));
    const ContentionRow& row = rows.back();
    std::printf("  %d threads: lockfree %8.0f tasks/s  mutex %8.0f "
                "tasks/s  speedup %5.2fx  steals %llu  failed probes "
                "%llu\n",
                row.threads, kContentionTasks / row.lockfree_seconds,
                kContentionTasks / row.mutex_seconds, row.speedup(),
                static_cast<unsigned long long>(row.steals),
                static_cast<unsigned long long>(row.steal_failures));
  }
  return rows;
}

void contention_json(std::ostream& json,
                     const std::vector<ContentionRow>& rows) {
  json << "{\n    \"tasks\": " << kContentionTasks
       << ",\n    \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ContentionRow& row = rows[i];
    json << "      {\"threads\": " << row.threads
         << ", \"lockfree_seconds\": " << row.lockfree_seconds
         << ", \"mutex_seconds\": " << row.mutex_seconds
         << ", \"speedup\": " << row.speedup()
         << ", \"steals\": " << row.steals
         << ", \"steal_failures\": " << row.steal_failures << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "    ],\n    \"lockfree_speedup_at_8\": "
       << rows.back().speedup() << "\n  }";
}

// ------------------------------------------------- warm/cold flow cache
//
// Cold run of the Table VI SoC_X into a fresh cache directory, a warm
// re-run (everything hits), and a warm re-run after modifying one OoC
// module's footprint (everything else still hits).

struct FlowCacheBenchResult {
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double modified_seconds = 0.0;
  core::FlowCacheStats warm;
  core::FlowCacheStats modified;
  bool warm_matches_cold = false;
  double warm_reduction() const {
    return cold_seconds > 0.0 ? 1.0 - warm_seconds / cold_seconds : 0.0;
  }
  double modified_reduction() const {
    return cold_seconds > 0.0 ? 1.0 - modified_seconds / cold_seconds
                              : 0.0;
  }
};

constexpr const char* kFlowCacheModifiedModule = "warp";

FlowCacheBenchResult run_flow_cache_compare() {
  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  const auto soc = wami::table6_soc('X');
  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "presp_bench_flow_cache";
  std::filesystem::remove_all(cache_dir);

  core::FlowOptions opt;
  opt.cache.dir = cache_dir.string();
  const auto timed = [&](const netlist::ComponentLibrary& with_lib,
                         double* seconds) {
    const core::PrEspFlow flow(device, with_lib, opt);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = flow.run(soc);
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return result;
  };

  FlowCacheBenchResult out;
  const auto cold = timed(lib, &out.cold_seconds);
  const auto warm = timed(lib, &out.warm_seconds);
  out.warm = warm.cache;
  out.warm_matches_cold = flow_checksum(cold) == flow_checksum(warm);

  // Grow one module's LUT footprint slightly — small enough that the
  // floorplanner's column-quantized pblocks stay put (a demand jump that
  // moves the floorplan legitimately invalidates every P&R key).
  auto modified_lib = lib;
  netlist::BlockModel block = modified_lib.get(kFlowCacheModifiedModule);
  block.resources.luts += 16;
  modified_lib.register_block(block);
  const auto modified = timed(modified_lib, &out.modified_seconds);
  out.modified = modified.cache;

  std::filesystem::remove_all(cache_dir);
  std::printf("flow-cache: soc_x cold %.3fs, warm %.3fs (-%.0f%%, "
              "%llu hits), one module modified %.3fs (-%.0f%%, %llu "
              "hits / %llu misses), checksums %s\n",
              out.cold_seconds, out.warm_seconds,
              out.warm_reduction() * 100,
              static_cast<unsigned long long>(out.warm.hits),
              out.modified_seconds, out.modified_reduction() * 100,
              static_cast<unsigned long long>(out.modified.hits),
              static_cast<unsigned long long>(out.modified.misses),
              out.warm_matches_cold ? "match" : "DIFFER");
  return out;
}

void flow_cache_json(std::ostream& json,
                     const FlowCacheBenchResult& r) {
  json << "{\n    \"design\": \"soc_x\""
       << ",\n    \"modified_module\": \"" << kFlowCacheModifiedModule
       << "\",\n    \"cold_seconds\": " << r.cold_seconds
       << ",\n    \"warm_seconds\": " << r.warm_seconds
       << ",\n    \"modified_seconds\": " << r.modified_seconds
       << ",\n    \"warm_hits\": " << r.warm.hits
       << ",\n    \"warm_misses\": " << r.warm.misses
       << ",\n    \"modified_hits\": " << r.modified.hits
       << ",\n    \"modified_misses\": " << r.modified.misses
       << ",\n    \"warm_wall_reduction\": " << r.warm_reduction()
       << ",\n    \"modified_wall_reduction\": " << r.modified_reduction()
       << ",\n    \"warm_matches_cold\": "
       << (r.warm_matches_cold ? "true" : "false") << "\n  }";
}

int run_contention(const std::string& out_path) {
  presp::set_log_level(presp::LogLevel::kWarn);
  const auto rows = run_contention_sweep();
  const auto cache = run_flow_cache_compare();
  std::ofstream json(out_path);
  json << "{\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n  \"contention\": ";
  contention_json(json, rows);
  json << ",\n  \"flow_cache\": ";
  flow_cache_json(json, cache);
  json << "\n}\n";
  std::printf("contention: wrote %s\n", out_path.c_str());
  const bool ok = cache.warm_matches_cold && cache.warm.misses == 0;
  if (!ok) std::printf("contention: WARM RUN DID NOT FULLY REUSE CACHE\n");
  return ok ? 0 : 1;
}

int run_exec_compare(const std::string& out_path) {
  presp::set_log_level(presp::LogLevel::kWarn);
  std::printf("exec-compare: serial vs %d pool threads (hardware threads: "
              "%u)\n",
              kCompareThreads, std::thread::hardware_concurrency());
  double model_speedup = 1.0;
  const ExecCompareRow rows[] = {compare_flow(&model_speedup),
                                 compare_wami()};
  const auto contention_rows = run_contention_sweep();
  const auto flow_cache = run_flow_cache_compare();
  bool ok = flow_cache.warm_matches_cold && flow_cache.warm.misses == 0;
  std::ofstream json(out_path);
  json << "{\n  \"threads\": " << kCompareThreads
       << ",\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency()
       << ",\n  \"flow_model_speedup\": " << model_speedup
       << ",\n  \"cases\": [\n";
  // The same counters land in the metrics registry so the JSON carries a
  // uniform snapshot next to the per-case rows (run_bench.sh surfaces it).
  auto& registry = trace::MetricsRegistry::global();
  registry.reset();
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& row = rows[i];
    ok = ok && row.checksum_match;
    const double efficiency = row.speedup() / kCompareThreads;
    std::printf("  %-28s serial %8.3fs  parallel %8.3fs  speedup %5.2fx  "
                "tasks %zu  steals %llu  maxq %llu  checksums %s\n",
                row.name, row.serial_seconds, row.parallel_seconds,
                row.speedup(), row.tasks,
                static_cast<unsigned long long>(row.steals),
                static_cast<unsigned long long>(row.max_queue_depth),
                row.checksum_match ? "match" : "DIFFER");
    json << "    {\"name\": \"" << row.name << "\", \"serial_seconds\": "
         << row.serial_seconds << ", \"parallel_seconds\": "
         << row.parallel_seconds << ", \"speedup\": " << row.speedup()
         << ", \"efficiency\": " << efficiency << ", \"tasks\": "
         << row.tasks << ", \"steals\": " << row.steals
         << ", \"steal_failures\": " << row.steal_failures
         << ", \"parks\": " << row.parks
         << ", \"max_queue_depth\": " << row.max_queue_depth
         << ", \"checksum_match\": "
         << (row.checksum_match ? "true" : "false") << "}"
         << (i + 1 < 2 ? "," : "") << "\n";
    const std::string prefix = std::string("exec.") + row.name;
    registry.counter(prefix + ".steals").add(row.steals);
    registry.gauge(prefix + ".max_queue_depth")
        .set(static_cast<double>(row.max_queue_depth));
    registry.counter(prefix + ".steal_failures").add(row.steal_failures);
    registry.counter(prefix + ".parks").add(row.parks);
  }
  // Bitstream-cache snapshot rides along so one artifact carries every
  // field the bench workflow asserts on (its runtime.store.* counters
  // land in the same metrics registry).
  const StoreRunResult cached = run_store_workload(true, 4);
  json << "  ],\n  \"contention\": ";
  contention_json(json, contention_rows);
  json << ",\n  \"flow_cache\": ";
  flow_cache_json(json, flow_cache);
  json << ",\n  \"cache_hit_rate\": " << cached.hit_rate()
       << ",\n  \"metrics\": " << registry.snapshot_json() << "\n}\n";
  std::printf("exec-compare: store cache hit rate %.2f\n",
              cached.hit_rate());
  std::printf("exec-compare: wrote %s\n", out_path.c_str());
  if (!ok) std::printf("exec-compare: CHECKSUM MISMATCH\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--exec-compare")
    return run_exec_compare(argc > 2 ? argv[2] : "BENCH_exec.json");
  if (argc > 1 && std::string(argv[1]) == "--store-compare")
    return run_store_compare(argc > 2 ? argv[2] : "BENCH_store.json");
  if (argc > 1 && std::string(argv[1]) == "--contention")
    return run_contention(argc > 2 ? argv[2] : "BENCH_contention.json");
  presp::set_log_level(presp::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
