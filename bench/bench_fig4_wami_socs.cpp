// Reproduces paper Fig. 4: total execution time per frame and energy
// efficiency (J/frame) of the WAMI application on SoC_X / SoC_Y / SoC_Z,
// each running the multi-threaded control software with runtime partial
// reconfiguration on the full SoC simulator.
//
// Paper ratios: SoC_X has the best energy efficiency (1.65x vs Y, 2.77x
// vs Z) but the worst execution time (2.6x vs Y, 3.6x vs Z); SoC_Z is the
// fastest and least efficient. Reproduction targets are the *orderings*
// (see EXPERIMENTS.md for the magnitude discussion).
#include <cstdio>
#include <map>

#include "wami/app.hpp"
#include "bench_util.hpp"

using namespace presp;

int main() {
  bench::header("Fig. 4: WAMI SoC execution time and energy per frame",
                "PR-ESP (DATE'23) Fig. 4");

  std::map<char, wami::WamiAppResult> results;
  for (const char which : {'X', 'Y', 'Z'}) {
    wami::WamiAppOptions opt;
    opt.frames = 4;
    opt.workload = {128, 128};
    opt.lk_iterations = 2;
    wami::WamiApp app(which, opt);
    results.emplace(which, app.run());
  }

  TextTable table({"SoC", "reconf tiles", "ms/frame", "J/frame",
                   "reconf/frame", "ICAP MB", "verified"});
  const std::map<char, int> tiles{{'X', 2}, {'Y', 3}, {'Z', 4}};
  for (const char which : {'X', 'Y', 'Z'}) {
    const auto& r = results.at(which);
    table.add_row(
        {std::string("SoC_") + which, TextTable::integer(tiles.at(which)),
         TextTable::num(r.seconds_per_frame * 1e3, 2),
         TextTable::num(r.joules_per_frame, 4),
         TextTable::num(static_cast<double>(r.reconfigurations) / 4.0, 1),
         TextTable::num(static_cast<double>(r.icap_bytes) / 1e6, 1),
         r.all_verified ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& x = results.at('X');
  const auto& y = results.at('Y');
  const auto& z = results.at('Z');
  TextTable ratios({"ratio", "measured", "paper"});
  ratios.add_row({"time  X vs Y (X slower)",
                  TextTable::num(x.seconds_per_frame / y.seconds_per_frame, 2),
                  "2.6"});
  ratios.add_row({"time  X vs Z (X slower)",
                  TextTable::num(x.seconds_per_frame / z.seconds_per_frame, 2),
                  "3.6"});
  ratios.add_row({"energy Y vs X (X better)",
                  TextTable::num(y.joules_per_frame / x.joules_per_frame, 2),
                  "1.65"});
  ratios.add_row({"energy Z vs X (X better)",
                  TextTable::num(z.joules_per_frame / x.joules_per_frame, 2),
                  "2.77"});
  std::printf("%s\n", ratios.render().c_str());

  std::printf("Energy breakdown per SoC (J over the whole run):\n");
  TextTable brk({"SoC", "baseline", "configured", "active", "icap", "cpu"});
  for (const char which : {'X', 'Y', 'Z'}) {
    const auto& b = results.at(which).energy_breakdown;
    brk.add_row({std::string("SoC_") + which, TextTable::num(b.baseline, 3),
                 TextTable::num(b.configured, 3), TextTable::num(b.active, 3),
                 TextTable::num(b.icap, 3), TextTable::num(b.cpu, 3)});
  }
  std::printf("%s\n", brk.render().c_str());
  std::printf(
      "Orderings reproduced: X slowest but most energy-efficient; Z least\n"
      "efficient. Y/Z execution times are a near-tie here (the Fig. 3 DAG\n"
      "limits useful parallelism to ~2 concurrent kernels); see\n"
      "EXPERIMENTS.md for the full deviation discussion.\n");
  return 0;
}
