// Ablation: runtime-model fit quality against the paper's published
// Table III data points, and sensitivity of the strategy winners to the
// model's congestion and contention terms.
#include <cstdio>
#include <map>
#include <vector>

#include "core/flow.hpp"
#include "core/reference_designs.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"

using namespace presp;

namespace {

struct Cell {
  int soc;
  int tau;
  double paper_total;
};

const std::vector<Cell> kPaperCells = {
    {1, 1, 89},  {1, 2, 110}, {1, 3, 105}, {1, 4, 97},  {1, 5, 94},
    {1, 16, 93}, {2, 1, 181}, {2, 2, 173}, {2, 3, 166}, {2, 4, 152},
    {3, 1, 158}, {3, 2, 134}, {3, 3, 137}, {4, 1, 163}, {4, 2, 130},
    {4, 3, 105}, {4, 4, 100}, {4, 5, 94},
};

/// Cached per-SoC sizing data (the flow's floorplan is model-independent,
/// so it is computed once and reused across model variants and tau).
struct SocSizes {
  long long static_luts = 0;
  long long static_region_luts = 0;
  std::vector<long long> mods;
};

SocSizes soc_sizes(const netlist::ComponentLibrary& lib, int soc) {
  static std::map<int, SocSizes> cache;
  const auto it = cache.find(soc);
  if (it != cache.end()) return it->second;
  const auto device = fabric::Device::vc707();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);
  const auto config = core::characterization_soc(soc);
  const auto result = flow.run(config);
  const auto rtl = netlist::elaborate(config, lib);
  SocSizes sizes;
  sizes.static_luts = result.metrics.static_luts;
  sizes.static_region_luts = result.plan.static_capacity.luts;
  for (const auto& p : rtl.partitions())
    for (const auto& m : p.modules)
      sizes.mods.push_back(netlist::SocRtl::module_resources(lib, m).luts);
  cache[soc] = sizes;
  return sizes;
}

double predict(const core::RuntimeModel& model,
               const netlist::ComponentLibrary& lib, int soc, int tau) {
  const SocSizes sizes = soc_sizes(lib, soc);
  const core::Strategy strategy =
      tau == 1 ? core::Strategy::kSerial
               : (tau >= static_cast<int>(sizes.mods.size())
                      ? core::Strategy::kFullyParallel
                      : core::Strategy::kSemiParallel);
  return core::evaluate_schedule(model, sizes.static_luts,
                                 sizes.static_region_luts, sizes.mods,
                                 strategy, tau)
      .total;
}

int winner(const core::RuntimeModel& model,
           const netlist::ComponentLibrary& lib, int soc, int max_tau) {
  double best = 1e18;
  int best_tau = 0;
  for (int tau = 1; tau <= max_tau; ++tau) {
    const double t = predict(model, lib, soc, tau);
    if (t < best) {
      best = t;
      best_tau = tau;
    }
  }
  return best_tau;
}

}  // namespace

int main() {
  bench::header("Ablation: runtime-model fit and sensitivity",
                "model re-derivation for Tables III-V");

  const auto device = fabric::Device::vc707();
  const auto lib = core::characterization_library();

  // 1. Fit quality with the calibrated constants.
  {
    const core::RuntimeModel calibrated(device);
    std::vector<double> reference;
    std::vector<double> model;
    TextTable table({"SoC", "tau", "paper min", "model min", "error %"});
    for (const Cell& cell : kPaperCells) {
      const double predicted = predict(calibrated, lib, cell.soc, cell.tau);
      reference.push_back(cell.paper_total);
      model.push_back(predicted);
      table.add_row({"SOC_" + std::to_string(cell.soc),
                     TextTable::integer(cell.tau),
                     TextTable::num(cell.paper_total, 0),
                     TextTable::num(predicted, 0),
                     TextTable::num(100.0 * (predicted - cell.paper_total) /
                                        cell.paper_total,
                                    1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("MAPE over all published Table III cells: %.1f%%\n\n",
                100.0 * mape(reference, model));
  }

  // 2. Sensitivity: knock out one model term at a time and check whether
  // the per-class winners survive.
  struct Variant {
    const char* name;
    core::RuntimeModelConstants constants;
  };
  std::vector<Variant> variants;
  variants.push_back({"calibrated", {}});
  {
    core::RuntimeModelConstants c;
    c.cong = 0.0;
    variants.push_back({"no congestion term", c});
  }
  {
    core::RuntimeModelConstants c;
    c.contention = 0.0;
    variants.push_back({"no machine contention", c});
  }
  {
    core::RuntimeModelConstants c;
    c.ctx1 = 0.0;
    variants.push_back({"no context-load overhead", c});
  }

  const std::map<int, int> paper_winner{{1, 1}, {2, 4}, {3, 2}, {4, 5}};
  const std::map<int, int> max_tau{{1, 16}, {2, 4}, {3, 3}, {4, 5}};
  TextTable table({"model variant", "SOC_1", "SOC_2", "SOC_3", "SOC_4",
                   "winners preserved"});
  for (const Variant& variant : variants) {
    const core::RuntimeModel model(device, variant.constants);
    std::vector<std::string> row{variant.name};
    int preserved = 0;
    for (const int soc : {1, 2, 3, 4}) {
      const int w = winner(model, lib, soc, max_tau.at(soc));
      // Class 1.3 (SOC_3) is a documented near-tie; count tau in {2,3}.
      const bool ok = soc == 3 ? (w == 2 || w == 3)
                               : w == paper_winner.at(soc);
      preserved += ok ? 1 : 0;
      row.push_back("tau=" + std::to_string(w) + (ok ? "" : " !"));
    }
    row.push_back(std::to_string(preserved) + "/4");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The per-instance context-load overhead is the term parallelism\n"
      "must amortize: removing it flips SOC_1's winner from serial to\n"
      "tau=16, contradicting the paper's headline Class 1.1 result. The\n"
      "congestion/contention terms shape magnitudes (the MAPE above)\n"
      "rather than winners.\n");
  return 0;
}
